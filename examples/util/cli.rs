//! Shared CLI plumbing for the traced examples.
//!
//! Every example used to hand-roll the same `--trace <path>` parsing and
//! trace-dump epilogue; this module is the one copy. Examples include it
//! with `#[path = "util/cli.rs"] mod cli;` (the workspace lists examples
//! explicitly, so `util/` is never compiled as an example itself).
//!
//! Flags:
//!
//! * `--trace <path>` — enable span recording; on exit write a Chrome
//!   `trace_event` JSON to `<path>` and the `ExecutionReport` JSON to
//!   `<path>.report.json`, printing the report table.
//! * `--serve-metrics [addr]` — start the live telemetry endpoint
//!   (default `127.0.0.1:9300`) and keep the process alive re-running
//!   the workload, so `curl /metrics` sees fresh windowed percentiles
//!   and `/profile?seconds=N` catches the pool mid-flight.
//! * `--serve-seconds <n>` — how long `--serve-metrics` keeps serving
//!   before exiting (default 30; `0` means serve forever).
//! * `--stream [chunk-items]` — run the workload through the streaming
//!   pipeline tier instead of the batch blocks: items arrive in chunks
//!   of `chunk-items` (default 64) and flow through bounded channels
//!   with backpressure. Composes with `--trace` and `--serve-metrics`,
//!   so a live scrape during a streaming run sees `snap_stream_*`
//!   counters and windowed latency percentiles.

// Each example compiles its own copy of this module and none uses every
// helper; dead-code analysis is per-example.
#![allow(dead_code)]

use std::time::{Duration, Instant};

/// Default bind address for `--serve-metrics` without an explicit one.
pub const DEFAULT_METRICS_ADDR: &str = "127.0.0.1:9300";

/// Default chunk size for `--stream` without an explicit one.
pub const DEFAULT_STREAM_CHUNK: usize = 64;

/// Parsed observability flags shared by the examples.
pub struct TraceOpts {
    /// `--trace <path>`: Chrome trace output path.
    pub trace: Option<String>,
    /// `--serve-metrics [addr]`: bind address for the live endpoint.
    pub serve: Option<String>,
    /// `--serve-seconds <n>`: serving duration (0 = forever).
    pub serve_seconds: u64,
    /// `--stream [chunk-items]`: streaming-tier chunk size, when the
    /// example should run its workload through a `Pipeline`.
    pub stream: Option<usize>,
}

impl TraceOpts {
    /// Parse the process arguments and enable span recording when a
    /// trace was requested. Unknown flags are ignored (examples keep
    /// their own extra arguments).
    pub fn from_args() -> TraceOpts {
        let args: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let trace = value_of("--trace");
        let serve = args.iter().position(|a| a == "--serve-metrics").map(|i| {
            args.get(i + 1)
                .filter(|next| !next.starts_with('-'))
                .cloned()
                .unwrap_or_else(|| DEFAULT_METRICS_ADDR.to_string())
        });
        let serve_seconds = value_of("--serve-seconds")
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        let stream = args.iter().position(|a| a == "--stream").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_STREAM_CHUNK)
                .max(1)
        });
        if trace.is_some() {
            snap_core::trace::set_enabled(true);
        }
        TraceOpts {
            trace,
            serve,
            serve_seconds,
            stream,
        }
    }

    /// The serving epilogue: when `--serve-metrics` is set, bind the
    /// endpoint and keep re-running `workload` until `--serve-seconds`
    /// elapse, so live scrapes always see populated windows. Runs the
    /// workload at least once more even with `--serve-seconds 1`.
    pub fn serve_and_rerun(&self, mut workload: impl FnMut()) {
        let Some(addr) = &self.serve else {
            return;
        };
        let server = snap_core::trace::serve(addr.as_str()).expect("bind metrics endpoint");
        let addr = server.addr();
        println!("\nserving live telemetry for {}s:", self.serve_seconds);
        println!("  curl http://{addr}/metrics");
        println!("  curl http://{addr}/report.json");
        println!("  curl 'http://{addr}/profile?seconds=2'");
        let started = Instant::now();
        let budget = Duration::from_secs(self.serve_seconds);
        loop {
            workload();
            if self.serve_seconds != 0 && started.elapsed() >= budget {
                break;
            }
            // Breathe between reruns: keeps the serve window responsive
            // without pinning a core on sub-millisecond workloads.
            std::thread::sleep(Duration::from_millis(100));
        }
        server.shutdown();
    }

    /// The trace epilogue: when `--trace <path>` is set, print the
    /// report table and write the Chrome trace + report JSON.
    pub fn finish(&self) {
        let Some(path) = &self.trace else {
            return;
        };
        let report = snap_core::trace::report();
        println!("\n{}", report.to_table());
        let spans = snap_core::trace::collect_spans();
        std::fs::write(path, snap_core::trace::chrome_trace_json(&spans)).expect("write trace");
        let report_path = format!("{path}.report.json");
        std::fs::write(&report_path, report.to_json()).expect("write report");
        println!(
            "wrote {} spans to {path} (report: {report_path})",
            spans.len()
        );
    }
}
