//! The Women in Computing Day session (paper §5), as a runnable
//! curriculum.
//!
//! "The informal curriculum first focused on the original (sequential)
//! Snap! environment … approximately 20 minutes through the time period,
//! we then introduced parallelism via the parallelMap and
//! parallelForEach blocks. The students were then allowed to program on
//! their own" — one of them built a game where a basket catches water
//! balloons falling in parallel. This example walks those same steps,
//! ending with the balloon game and the survey table.
//!
//! ```sh
//! cargo run --example wcd_curriculum
//! ```

use snap_core::data::{simulate_cohort, tabulate};
use snap_core::prelude::*;

/// Step 1 — sequential programming: the first script a student builds.
fn step_sequential() {
    println!("== step 1: sequential Snap! (minutes 0-20) ==");
    let project = Project::new("first-script").with_sprite(SpriteDef::new("Cat").with_script(
        Script::on_green_flag(vec![
            say(text("hello, WCD!")),
            set_var("steps", num(0.0)),
            repeat(
                num(5.0),
                vec![move_steps(num(10.0)), change_var("steps", num(1.0))],
            ),
            say(join(vec![text("I moved "), var("steps"), text(" times")])),
        ]),
    ));
    let mut session = Session::load(project);
    session.run();
    for line in session.said() {
        println!("   Cat: {line}");
    }
}

/// Step 2 — the parallel blocks, exactly as introduced in the session.
fn step_parallel_blocks() {
    println!("\n== step 2: parallelMap and parallelForEach (minute 20) ==");
    let mut session =
        Session::load(Project::new("parallel-intro").with_sprite(SpriteDef::new("Cat")));
    let squares = session
        .eval(
            Some("Cat"),
            &parallel_map_over(
                ring_reporter(mul(empty_slot(), empty_slot())),
                numbers_from_to(num(1.0), num(10.0)),
            ),
        )
        .expect("parallelMap evaluates");
    println!("   parallelMap (()x()) over 1..10 -> {squares}");
}

/// Step 3 — free programming: the water-balloon game the paper calls
/// "one of the more creative examples of parallelism".
fn step_balloon_game() {
    println!("\n== step 3: the water-balloon game (free programming) ==");
    // Balloons fall in parallel; the basket catches any balloon in the
    // same column. Deterministic mini-round: 6 balloons, basket sweeps.
    let project = Project::new("balloons")
        .with_global(
            "balloons",
            Constant::List(
                (1..=6)
                    .map(|i| Constant::Number((i * 40 - 140) as f64))
                    .collect(),
            ),
        )
        .with_global("caught", Constant::Number(0.0))
        .with_global("basket_x", Constant::Number(-100.0))
        .with_sprite(
            SpriteDef::new("Basket").with_script(Script::on_green_flag(vec![
                // Sweep right, 20 units per timestep.
                repeat(
                    num(12.0),
                    vec![change_var("basket_x", num(20.0)), wait(num(1.0))],
                ),
            ])),
        )
        .with_sprite(
            SpriteDef::new("Balloon").with_script(Script::on_green_flag(vec![
                // All balloons fall concurrently; each takes x-position from
                // the list and lands after a few timesteps.
                parallel_for_each(
                    "x",
                    var("balloons"),
                    vec![
                        wait(num(3.0)), // falling
                        // caught if the basket is within 30 units at landing
                        if_then(
                            lt(abs(sub(var("x"), var("basket_x"))), num(30.0)),
                            vec![change_var("caught", num(1.0))],
                        ),
                    ],
                ),
                say(join(vec![text("caught "), var("caught"), text(" of 6")])),
            ])),
        );
    let mut session = Session::load(project);
    session.run();
    let said = session.said();
    println!("   Balloon: {}", said.last().unwrap());
    assert!(session.errors().is_empty());
}

/// Step 4 — the end-of-session survey (paper §5's table).
fn step_survey() {
    println!("\n== step 4: the survey (paper section 5) ==");
    let table = tabulate(&simulate_cohort(100, 2016));
    println!(
        "   career = CS: {:.0}%   other: {:.0}%   no answer: {:.0}%",
        table.career_cs_pct, table.career_other_pct, table.career_none_pct
    );
    println!("   CS benefits a non-CS career: {:.0}%", table.benefit_pct);
    println!(
        "   impression: +{:.0}% / -{:.0}% / ={:.0}%",
        table.more_favorable_pct, table.less_favorable_pct, table.same_pct
    );
}

fn main() {
    println!("Women in Computing Day, 50-minute session (paper section 5)\n");
    step_sequential();
    step_parallel_blocks();
    step_balloon_game();
    step_survey();
}
