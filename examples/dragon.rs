//! The dragon of Figures 2 and 3 — Snap!'s built-in concurrency.
//!
//! Three scripts run "in parallel" on one sprite under the cooperative
//! scheduler: a forever-flying loop plus two key-press handlers. The
//! example flies the dragon, steers it with simulated key presses, and
//! renders stage "screenshots".
//!
//! ```sh
//! cargo run --example dragon
//! ```

use snap_core::prelude::*;
use snap_core::vm::{render_stage, StageView};

fn main() {
    let project = Project::new("dragon").with_sprite(
        SpriteDef::new("Dragon")
            .at(-180.0, 0.0)
            // when green flag clicked: forever { move 12 steps }
            .with_script(Script::on_green_flag(vec![forever(vec![move_steps(num(
                12.0,
            ))])]))
            // when right arrow key pressed: turn right 15 degrees
            .with_script(Script::on_key(
                "right arrow",
                vec![Stmt::TurnRight(num(15.0))],
            ))
            // when left arrow key pressed: turn left 15 degrees
            .with_script(Script::on_key(
                "left arrow",
                vec![Stmt::TurnLeft(num(15.0))],
            )),
    );

    let mut session = Session::load(project);
    session.vm.green_flag();
    let view = StageView {
        columns: 48,
        rows: 12,
        ..StageView::default()
    };

    let snapshot = |vm: &mut Vm, label: &str| {
        println!("--- {label} ---");
        print!("{}", render_stage(&vm.world, vm.timestep(), &view));
        let dragon = &vm.world.sprites[1];
        println!(
            "dragon at ({:.0}, {:.0}) heading {:.0}\n",
            dragon.x, dragon.y, dragon.heading
        );
    };

    session.vm.run_frames(8);
    snapshot(&mut session.vm, "flying right (heading 90)");

    // The player leans on the left arrow: six presses = 90 degrees.
    for _ in 0..6 {
        session.vm.key_press("left arrow");
    }
    session.vm.run_frames(8);
    snapshot(
        &mut session.vm,
        "after six left-arrow presses (heading 0 = up)",
    );

    for _ in 0..6 {
        session.vm.key_press("left arrow");
    }
    session.vm.run_frames(10);
    snapshot(&mut session.vm, "six more: flying left (heading -90)");

    println!(
        "the forever script is still running ({} live processes) — press the red stop sign",
        session.vm.process_count()
    );
}
