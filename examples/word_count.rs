//! MapReduce word count (paper §3.4, Figs. 11–12).
//!
//! Runs the canonical word-count MapReduce as a block script (mapper
//! `[w, 1]`, summing reducer, input split from a string), then scales to
//! a generated corpus and compares one worker against many.
//!
//! ```sh
//! cargo run --release --example word_count
//! cargo run --release --example word_count -- --trace target/word_count_trace.json
//! ```
//!
//! With `--trace <path>`, span recording is enabled; the run prints its
//! `snap_trace::report()` table and writes a Chrome `trace_event` JSON
//! to `<path>` plus the report JSON to `<path>.report.json`.

use std::sync::Arc;
use std::time::Instant;

use snap_core::data::{generate_words, reference_counts};
use snap_core::prelude::*;

/// `--trace <path>` argument, if present.
fn trace_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let trace = trace_path();
    if trace.is_some() {
        snap_core::trace::set_enabled(true);
    }
    // --- Figure 11: word count as blocks ----------------------------
    let sentence = "the quick brown fox jumps over the lazy dog the end";
    let project = Project::new("word-count").with_sprite(SpriteDef::new("Counter").with_script(
        Script::on_green_flag(vec![say(map_reduce(
            ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
            ring_reporter_with(
                vec!["vals"],
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            ),
            split(text(sentence), text(" ")),
        ))]),
    ));
    let mut session = Session::load(project);
    session.run();
    println!("input : {sentence:?}");
    println!("output: {}", session.said()[0]);
    println!("        (sorted unique words with counts, as in Fig. 12)\n");

    // --- Scaling: a Zipf corpus, 1 worker vs many --------------------
    let n = 200_000;
    let words = generate_words(n, 42);
    let reference = reference_counts(&words);
    println!(
        "corpus: {n} Zipf-distributed words, {} unique",
        reference.len()
    );

    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let items: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let out = snap_core::parallel::map_reduce(
            mapper.clone(),
            reducer.clone(),
            items.clone(),
            workers,
        )
        .expect("word count runs");
        let elapsed = start.elapsed();
        let baseline_time = *baseline.get_or_insert(elapsed);
        println!(
            "  {workers} worker(s): {elapsed:>10.2?}  speedup {:.2}x  ({} keys)",
            baseline_time.as_secs_f64() / elapsed.as_secs_f64(),
            out.len()
        );
        // Validate against the reference counts.
        assert_eq!(out.len(), reference.len());
        for (pair, (word, count)) in out.iter().zip(&reference) {
            let pair = pair.as_list().expect("pair");
            assert_eq!(pair.item(1).unwrap().to_display_string(), *word);
            assert_eq!(pair.item(2).unwrap().to_number() as u64, *count);
        }
    }
    println!("all worker counts agree with the sequential reference");

    if let Some(path) = trace {
        let report = snap_core::trace::report();
        println!("\n{}", report.to_table());
        let spans = snap_core::trace::collect_spans();
        std::fs::write(&path, snap_core::trace::chrome_trace_json(&spans)).expect("write trace");
        let report_path = format!("{path}.report.json");
        std::fs::write(&report_path, report.to_json()).expect("write report");
        println!(
            "wrote {} spans to {path} (report: {report_path})",
            spans.len()
        );
    }
}
