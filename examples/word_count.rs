//! MapReduce word count (paper §3.4, Figs. 11–12).
//!
//! Runs the canonical word-count MapReduce as a block script (mapper
//! `[w, 1]`, summing reducer, input split from a string), then scales to
//! a generated corpus and compares one worker against many.
//!
//! ```sh
//! cargo run --release --example word_count
//! cargo run --release --example word_count -- --trace target/word_count_trace.json
//! cargo run --release --example word_count -- --serve-metrics 127.0.0.1:9300
//! cargo run --release --example word_count -- --stream 64 --serve-metrics
//! ```
//!
//! With `--trace <path>`, span recording is enabled; the run prints its
//! `snap_trace::report()` table and writes a Chrome `trace_event` JSON
//! to `<path>` plus the report JSON to `<path>.report.json`. With
//! `--serve-metrics`, the process keeps re-running the MapReduce while
//! serving live `/metrics`, `/report.json`, and `/profile` (see
//! `examples/util/cli.rs`). With `--stream [chunk]`, the corpus runs
//! through the streaming pipeline tier instead — one long-lived
//! map → windowed-reduce pipeline over bounded channels — and the
//! comparison printed is streaming vs the batch-restart loop; a live
//! scrape then shows `snap_stream_items_out` and the windowed
//! `snap_stream_latency_ns` percentiles moving.

use std::sync::Arc;
use std::time::Instant;

use snap_core::data::{generate_words, reference_counts};
use snap_core::prelude::*;

#[path = "util/cli.rs"]
mod cli;

fn main() {
    let opts = cli::TraceOpts::from_args();
    // --- Figure 11: word count as blocks ----------------------------
    let sentence = "the quick brown fox jumps over the lazy dog the end";
    let project = Project::new("word-count").with_sprite(SpriteDef::new("Counter").with_script(
        Script::on_green_flag(vec![say(map_reduce(
            ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
            ring_reporter_with(
                vec!["vals"],
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            ),
            split(text(sentence), text(" ")),
        ))]),
    ));
    let mut session = Session::load(project);
    session.run();
    println!("input : {sentence:?}");
    println!("output: {}", session.said()[0]);
    println!("        (sorted unique words with counts, as in Fig. 12)\n");

    // --- Scaling: a Zipf corpus, 1 worker vs many --------------------
    let n = 200_000;
    let words = generate_words(n, 42);
    let reference = reference_counts(&words);
    println!(
        "corpus: {n} Zipf-distributed words, {} unique",
        reference.len()
    );

    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let items: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();

    // --stream: the same corpus as continuous traffic through the
    // streaming tier — one pipeline, windowed reduces, bounded memory —
    // against the pre-streaming alternative of one mapReduce per chunk.
    if let Some(chunk) = opts.stream {
        use snap_core::parallel::{Pipeline, StreamConfig};
        println!("\nstreaming word count: chunks of {chunk} items");
        let pipeline = Pipeline::new(StreamConfig {
            block_items: chunk,
            ..Default::default()
        })
        .map(mapper.clone())
        .reduce_by_key(reducer.clone(), chunk);

        let start = Instant::now();
        let mut streamed_pairs = 0usize;
        let stats = pipeline
            .run_each(items.clone(), |_| streamed_pairs += 1)
            .expect("streaming word count runs");
        let streaming = start.elapsed();
        println!(
            "  streaming    : {streaming:>10.2?}  {:.0} items/s  ({} windows, {} blocks, \
             peak queue {} of {})",
            n as f64 / streaming.as_secs_f64(),
            stats.windows,
            stats.blocks,
            stats.peak_queue_depths.iter().max().copied().unwrap_or(0),
            stats.queue_capacity,
        );

        let start = Instant::now();
        let mut batch_pairs = 0usize;
        for c in items.chunks(chunk) {
            batch_pairs +=
                snap_core::parallel::map_reduce(mapper.clone(), reducer.clone(), c.to_vec(), 4)
                    .expect("word count runs")
                    .len();
        }
        let batch = start.elapsed();
        println!(
            "  batch-restart: {batch:>10.2?}  {:.0} items/s  (one mapReduce per chunk)",
            n as f64 / batch.as_secs_f64()
        );
        println!(
            "  streaming is {:.2}x the restart loop ({streamed_pairs} = {batch_pairs} pairs out)",
            batch.as_secs_f64() / streaming.as_secs_f64()
        );
        assert_eq!(streamed_pairs, batch_pairs);

        opts.serve_and_rerun(|| {
            let stats = pipeline
                .run_each(items.clone(), |_| {})
                .expect("streaming word count runs");
            assert!(stats.items_out > 0);
        });
        opts.finish();
        return;
    }

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let out = snap_core::parallel::map_reduce(
            mapper.clone(),
            reducer.clone(),
            items.clone(),
            workers,
        )
        .expect("word count runs");
        let elapsed = start.elapsed();
        let baseline_time = *baseline.get_or_insert(elapsed);
        println!(
            "  {workers} worker(s): {elapsed:>10.2?}  speedup {:.2}x  ({} keys)",
            baseline_time.as_secs_f64() / elapsed.as_secs_f64(),
            out.len()
        );
        // Validate against the reference counts.
        assert_eq!(out.len(), reference.len());
        for (pair, (word, count)) in out.iter().zip(&reference) {
            let pair = pair.as_list().expect("pair");
            assert_eq!(pair.item(1).unwrap().to_display_string(), *word);
            assert_eq!(pair.item(2).unwrap().to_number() as u64, *count);
        }
    }
    println!("all worker counts agree with the sequential reference");

    // --serve-metrics: keep the shuffle hot so a live scrape always has
    // fresh windowed percentiles for shuffle.merge_ns. The Zipf corpus's
    // combined pair stream stays under the parallel-shuffle threshold
    // (map-side combining collapses it to ~#unique keys), so the rerun
    // uses a high-cardinality corpus whose combined stream still crosses
    // it: 4 chunks × 700 keys ≥ PARALLEL_SHUFFLE_THRESHOLD.
    let hot_items: Vec<Value> = (0..3 * snap_core::parallel::PARALLEL_SHUFFLE_THRESHOLD)
        .map(|i| Value::text(format!("w{}", i % 700)))
        .collect();
    opts.serve_and_rerun(|| {
        let out =
            snap_core::parallel::map_reduce(mapper.clone(), reducer.clone(), hot_items.clone(), 4)
                .expect("word count runs");
        assert_eq!(out.len(), 700);
    });
    opts.finish();
}
