//! The supercomputer workflow (paper §6.3, Fig. 17) plus inter-node
//! scaling on the simulated cluster.
//!
//! Blocks → OpenMP code mapping → compile & link → generated `#SBATCH`
//! submission script → simulated batch queue → collect results; then a
//! strong-scaling sweep of `parallelMap` over simulated cluster nodes.
//!
//! ```sh
//! cargo run --release --example cluster_workflow
//! cargo run --release --example cluster_workflow -- --serve-metrics
//! ```
//!
//! With `--serve-metrics`, the fault-tolerant distributed map keeps
//! re-running while live `/metrics`, `/report.json`, and `/profile` are
//! served (see `examples/util/cli.rs`); `--trace <path>` writes a
//! Chrome trace on exit.

use snap_core::build::{BatchRequest, BatchScheduler, BuildPipeline, JobSpec, Policy};
use snap_core::codegen::openmp::{averaging_reducer, climate_mapper, emit_mapreduce_openmp};
use snap_core::data::{generate_noaa, NoaaConfig};
use snap_core::parallel::{strong_scaling_sweep, ClusterSpec};
use snap_core::prelude::*;
use std::sync::Arc;

#[path = "util/cli.rs"]
mod cli;

fn main() {
    let opts = cli::TraceOpts::from_args();
    // ---- Fig. 17: the full pipeline against a busy simulated cluster --
    println!("=== blocks -> OpenMP -> compile -> batch queue -> results ===");
    let dataset = generate_noaa(&NoaaConfig {
        stations: 8,
        years: 4,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    let program = emit_mapreduce_openmp(
        &climate_mapper(),
        &averaging_reducer(),
        &dataset.station_temp_pairs(),
    )
    .expect("climate rings are recognizable");

    let dir = std::env::temp_dir().join("psnap-cluster-example");
    let pipeline = BuildPipeline::new(&dir).expect("build dir");

    let mut cluster = BatchScheduler::new(16, Policy::Backfill);
    // Fill the machine with other people's jobs, like a real Monday.
    for i in 0..6 {
        cluster.submit(JobSpec {
            name: format!("someone-elses-job-{i}"),
            nodes: 8,
            walltime: 12,
            runtime: 8,
        });
    }
    cluster.tick();

    if pipeline.has_compiler() {
        let report = snap_core::build::run_on_cluster(
            &pipeline,
            &mut cluster,
            &program,
            &BatchRequest {
                name: "climate-mapreduce".into(),
                nodes: 4,
                threads_per_node: 8,
                walltime: 30,
            },
        )
        .expect("workflow runs");
        println!("generated submission script:");
        for line in report.script.lines() {
            println!("    {line}");
        }
        println!(
            "queued {} tick(s) behind the backlog; final state {:?}",
            report.queue_wait, report.state
        );
        for (key, value) in &report.results {
            println!("collected: {key} = {value:.3} C");
        }
        println!(
            "cluster utilization over the run: {:.0}%",
            cluster.utilization() * 100.0
        );
    } else {
        println!("(no C compiler on this machine; pipeline step skipped)");
    }

    // ---- §6.3 "inter-node parallelism": strong scaling ---------------
    println!("\n=== simulated inter-node strong scaling of parallelMap ===");
    let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
    let items: Vec<Value> = (0..4096).map(|n| Value::Number(n as f64)).collect();
    let base = ClusterSpec {
        nodes: 1,
        cores_per_node: 4,
        compute_cost: 500,
        net_cost_per_item: 1,
        startup_cost: 2_000,
        ..ClusterSpec::default()
    };
    println!("{:>6} {:>12} {:>9}", "nodes", "makespan", "speedup");
    for (nodes, makespan, speedup) in strong_scaling_sweep(
        ring.clone(),
        items.clone(),
        &base,
        &[1, 2, 4, 8, 16, 32, 64],
    )
    .expect("sweep runs")
    {
        println!("{nodes:>6} {makespan:>12} {speedup:>8.2}x");
    }
    println!("(compute-bound: scales until the serialized master link dominates)");

    // ---- fault tolerance: the same map on an unreliable cluster ------
    println!("\n=== the same map with nodes failing and straggling ===");
    let faulty = ClusterSpec {
        nodes: 16,
        node_failure_p: 0.25,
        straggler_p: 0.25,
        straggler_factor: 6.0,
        fault_seed: 2024,
        ..base
    };
    let clean = ClusterSpec { nodes: 16, ..base };
    let healthy = snap_core::parallel::distributed_map(ring.clone(), items.clone(), &clean)
        .expect("clean run");
    let recovered = snap_core::parallel::distributed_map(ring, items, &faulty).expect("faulty run");
    assert_eq!(
        healthy.results, recovered.results,
        "fault recovery must not change answers"
    );
    println!(
        "clean:     makespan {:>9}  (16/16 nodes healthy)",
        healthy.makespan
    );
    println!(
        "recovered: makespan {:>9}  ({} node(s) failed, {} item(s) reassigned, {} speculative run(s))",
        recovered.makespan,
        recovered.failed_nodes,
        recovered.reassigned_items,
        recovered.speculative_runs
    );
    println!("(identical results either way; the faults only cost modeled time)");

    let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
    opts.serve_and_rerun(|| {
        let items: Vec<Value> = (0..4096).map(|n| Value::Number(n as f64)).collect();
        let run = snap_core::parallel::distributed_map(ring.clone(), items, &faulty)
            .expect("faulty rerun");
        assert_eq!(run.results.len(), 4096);
    });
    opts.finish();
}
