//! Choose your own adventure — an event-driven story in blocks.
//!
//! A nod to the reproduction target's title: the story advances by
//! broadcasting scene messages (Snap!'s event model, paper §2), reads
//! the player's pre-scripted choices from a first-class list, and uses
//! `parallelForEach` to animate a swarm of firefly clones in parallel —
//! the same clone mechanism as the concession stand (§3.3) and the WCD
//! students' water-balloon game (§5).
//!
//! ```sh
//! cargo run --example adventure
//! ```

use snap_core::prelude::*;

/// Pop the next choice off the `path` list.
fn next_choice() -> Vec<Stmt> {
    vec![
        set_var("choice", item(num(1.0), var("path"))),
        Stmt::DeleteOfList {
            index: num(1.0),
            list: var("path"),
        },
    ]
}

fn narrator() -> SpriteDef {
    SpriteDef::new("Narrator")
        .with_script(Script::on_green_flag(vec![
            Stmt::ResetTimer,
            say(text("You wake at a crossroads in a pixel forest.")),
            broadcast_and_wait("scene:crossroads"),
            say(join(vec![
                text("THE END (after "),
                timer(),
                text(" timesteps)"),
            ])),
        ]))
        .with_script(Script::on_message(
            "scene:crossroads",
            [
                next_choice(),
                vec![
                    say(join(vec![text("You go "), var("choice"), text(".")])),
                    if_else(
                        eq(var("choice"), text("left")),
                        vec![broadcast_and_wait("scene:forest")],
                        vec![broadcast_and_wait("scene:cave")],
                    ),
                ],
            ]
            .concat(),
        ))
        .with_script(Script::on_message(
            "scene:forest",
            [
                vec![
                    say(text(
                        "A glade full of fireflies. They all light up at once:",
                    )),
                    // Parallel ambience: one clone per firefly, blinking
                    // concurrently — this is parallelForEach at work.
                    parallel_for_each(
                        "fly",
                        var("fireflies"),
                        vec![
                            wait(num(1.0)),
                            say(join(vec![text("  * "), var("fly"), text(" blinks")])),
                        ],
                    ),
                ],
                next_choice(),
                vec![if_else(
                    eq(var("choice"), text("follow")),
                    vec![say(text("The fireflies lead you home. You win!"))],
                    vec![say(text("You wander all night. You lose."))],
                )],
            ]
            .concat(),
        ))
        .with_script(Script::on_message(
            "scene:cave",
            [
                vec![say(text("A dragon sleeps on a heap of gold."))],
                next_choice(),
                vec![if_else(
                    eq(var("choice"), text("sneak")),
                    vec![say(text("You pocket a coin and tiptoe out. You win!"))],
                    vec![say(text(
                        "The dragon wakes. You are briefly warm. You lose.",
                    ))],
                )],
            ]
            .concat(),
        ))
}

fn play(choices: &[&str]) -> Vec<String> {
    let project = Project::new("adventure")
        .with_global(
            "path",
            Constant::List(choices.iter().map(|&c| Constant::Text(c.into())).collect()),
        )
        .with_global(
            "fireflies",
            Constant::List(vec!["Blinky".into(), "Glow".into(), "Spark".into()]),
        )
        .with_global("choice", Constant::Text(String::new()))
        .with_sprite(narrator());
    let mut session = Session::load(project);
    session.run();
    assert!(session.errors().is_empty(), "story scripts must not error");
    session.said().iter().map(|s| s.to_string()).collect()
}

fn main() {
    for (title, choices) in [
        ("Playthrough 1: left, follow", &["left", "follow"][..]),
        ("Playthrough 2: right, sneak", &["right", "sneak"][..]),
        ("Playthrough 3: right, fight", &["right", "fight"][..]),
    ] {
        println!("=== {title} ===");
        for line in play(choices) {
            println!("{line}");
        }
        println!();
    }
}
