//! Global climate modeling with MapReduce (paper §3.4, Fig. 13).
//!
//! "Utilizing weather station data from NOAA, which contain temperatures
//! in Fahrenheit, students can convert the temperatures to Celsius and
//! compute their average … and attempt to observe a mean change in the
//! temperature of the Earth over time." We have no NOAA files, so a
//! deterministic synthetic station dataset stands in (see `snap-data`).
//!
//! ```sh
//! cargo run --release --example climate
//! cargo run --release --example climate -- --trace target/climate_trace.json
//! cargo run --release --example climate -- --serve-metrics
//! ```
//!
//! With `--trace <path>`, span recording is enabled; the run prints its
//! `snap_trace::report()` table and writes a Chrome `trace_event` JSON
//! to `<path>` plus the report JSON to `<path>.report.json`. The °F→°C
//! `parallelMap` phase is all-numeric, so the traced report shows the
//! columnar batch tier engaging (`ring.batch_calls`, `ring.batch_elems`,
//! `par.columnar_chunks`). With `--serve-metrics`, the MapReduce keeps
//! re-running while live `/metrics`, `/report.json`, and `/profile` are
//! served (see `examples/util/cli.rs`). With `--stream [chunk]`, the
//! readings flow as continuous traffic through the streaming pipeline
//! tier: a columnar °F→°C stage, a pairing stage, and a windowed
//! averaging reduce — per-window means at bounded memory.

use std::sync::Arc;

use snap_core::data::{f_to_c, generate_noaa, NoaaConfig};
use snap_core::prelude::*;

#[path = "util/cli.rs"]
mod cli;

/// The Fig. 19 mapper: °F → `["avg", °C]`.
fn climate_mapper() -> Expr {
    ring_reporter_with(
        vec!["t"],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    )
}

/// The Fig. 20 reducer: average of the grouped values.
fn averaging_reducer() -> Expr {
    ring_reporter_with(
        vec!["vals"],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    )
}

fn main() {
    let opts = cli::TraceOpts::from_args();
    // A quick classroom-sized run, as blocks (Fig. 13): freezing and
    // boiling average to 50 °C.
    let mut session = Session::load(Project::new("climate").with_sprite(SpriteDef::new("S")));
    let demo = session
        .eval(
            Some("S"),
            &map_reduce(
                climate_mapper(),
                averaging_reducer(),
                number_list([32.0, 212.0]),
            ),
        )
        .expect("blocks evaluate");
    println!("mapReduce over [32 F, 212 F] -> {demo}  (0 C and 100 C average to 50 C)\n");

    // The full synthetic NOAA dataset: 50 stations x 40 years.
    let config = NoaaConfig {
        stations: 50,
        years: 40,
        readings_per_year: 52, // weekly readings keep the example quick
        ..NoaaConfig::default()
    };
    let dataset = generate_noaa(&config);
    println!(
        "synthetic NOAA dataset: {} stations, {} readings ({}–{})",
        dataset.stations.len(),
        dataset.readings.len(),
        config.start_year,
        config.start_year + config.years - 1
    );

    // The °F→°C conversion alone, as a parallelMap: a pure numeric ring
    // over an all-Number list, which the runtime routes through the
    // columnar batch tier (flat f64 chunks, eval_batch lane loops).
    let convert = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ));
    let celsius = snap_core::parallel::parallel_map(convert, dataset.temps_f_values(), 4)
        .expect("climate parallelMap runs");
    let mean_c: f64 = celsius.iter().map(Value::to_number).sum::<f64>() / celsius.len() as f64;
    println!(
        "parallelMap F->C over {} readings: mean {mean_c:.2} C\n",
        celsius.len()
    );

    // Whole-dataset average via the parallel MapReduce block.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ));
    let out = snap_core::parallel::map_reduce(
        mapper.clone(),
        reducer.clone(),
        dataset.temps_f_values(),
        4,
    )
    .expect("climate MapReduce runs");
    let avg_c = out[0].as_list().unwrap().item(2).unwrap().to_number();
    let expected_c = f_to_c(dataset.mean_f());
    println!("mean temperature: {avg_c:.2} C via mapReduce (reference {expected_c:.2} C)\n");

    // --stream: readings as continuous traffic. The first stage is the
    // pure numeric °F→°C ring, which the streaming tier carries as
    // columnar f64 blocks; the second pairs each °C with the "avg" key;
    // the reduce averages every window of `chunk` readings.
    if let Some(chunk) = opts.stream {
        use snap_core::parallel::{Pipeline, StreamConfig};
        let pair = Arc::new(Ring::reporter_with_params(
            vec!["c".into()],
            make_list(vec![text("avg"), var("c")]),
        ));
        let convert = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ));
        let pipeline = Pipeline::new(StreamConfig {
            block_items: chunk,
            ..Default::default()
        })
        .map(convert)
        .map(pair)
        .reduce_by_key(reducer.clone(), chunk);
        let (windows, stats) = pipeline
            .run_with_stats(dataset.temps_f_values())
            .expect("streaming climate runs");
        let first = windows[0].as_list().unwrap().item(2).unwrap().to_number();
        println!(
            "streaming mean per {chunk}-reading window: {} windows from {} readings \
             (first {first:.2} C, peak queue {} of {})",
            stats.windows,
            stats.items_in,
            stats.peak_queue_depths.iter().max().copied().unwrap_or(0),
            stats.queue_capacity,
        );
        opts.serve_and_rerun(|| {
            let stats = pipeline
                .run_each(dataset.temps_f_values(), |_| {})
                .expect("streaming climate runs");
            assert!(stats.items_out > 0);
        });
        opts.finish();
        return;
    }

    // Per-year means: the warming signal the students look for.
    println!("decadal means (C):");
    let yearly = dataset.yearly_means_f();
    for decade in yearly.chunks(10) {
        let first = decade.first().unwrap().0;
        let last = decade.last().unwrap().0;
        let mean_c: f64 = decade.iter().map(|(_, f)| f_to_c(*f)).sum::<f64>() / decade.len() as f64;
        println!("  {first}-{last}: {mean_c:.2} C");
    }
    let first_c = f_to_c(yearly.first().unwrap().1);
    let last_c = f_to_c(yearly.last().unwrap().1);
    println!(
        "\nwarming over {} years: {:+.2} C (configured trend {} F/decade)",
        config.years,
        last_c - first_c,
        config.warming_f_per_decade
    );

    opts.serve_and_rerun(|| {
        let out = snap_core::parallel::map_reduce(
            mapper.clone(),
            reducer.clone(),
            dataset.temps_f_values(),
            4,
        )
        .expect("climate MapReduce runs");
        assert_eq!(out.len(), 1);
    });
    opts.finish();
}
