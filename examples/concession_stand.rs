//! The concession stand (paper §3.3, Figs. 7–10).
//!
//! A Pitcher sprite serves three Cups; filling one glass takes three
//! timesteps. In sequential mode the pitcher serves the cups one at a
//! time (the paper observed 12 timesteps); in parallel mode
//! `parallelForEach` spawns three Pitcher clones that pour
//! simultaneously (the paper observed 3).
//!
//! ```sh
//! cargo run --example concession_stand
//! cargo run --example concession_stand -- --trace target/concession_trace.json
//! ```
//!
//! With `--trace <path>`, span recording is enabled and a Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` or Perfetto) is
//! written to `<path>`, plus the run's `ExecutionReport` JSON to
//! `<path>.report.json` — the 12-vs-3-timestep contrast on a timeline.

use snap_core::prelude::*;

#[path = "util/cli.rs"]
mod cli;

/// Build the concession-stand project in either mode.
fn concession(parallel: bool) -> Project {
    let fill = vec![
        // Walk to the cup and pour: three timesteps of pouring.
        repeat(num(3.0), vec![wait(num(1.0))]),
        say(join(vec![text("filled "), var("cup")])),
    ];
    let serve = if parallel {
        parallel_for_each("cup", var("cups"), fill)
    } else {
        parallel_for_each_sequential("cup", var("cups"), fill)
    };
    Project::new("concession-stand")
        .with_global(
            "cups",
            Constant::List(vec!["Cup1".into(), "Cup2".into(), "Cup3".into()]),
        )
        .with_sprite(
            SpriteDef::new("Pitcher").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                serve,
                say(join(vec![text("total "), timer()])),
            ])),
        )
}

fn run_mode(label: &str, parallel: bool) -> (Vec<(u64, String)>, u64) {
    let mut session = Session::load(concession(parallel));
    session.run();
    let fills: Vec<(u64, String)> = session
        .vm
        .world
        .say_log
        .iter()
        .filter(|e| e.text.starts_with("filled"))
        .map(|e| (e.timestep, e.text.clone()))
        .collect();
    let total: u64 = session
        .said()
        .last()
        .and_then(|t| t.strip_prefix("total "))
        .and_then(|t| t.parse().ok())
        .unwrap_or(0);
    println!("--- {label} ---");
    for (t, text) in &fills {
        println!("  timestep {t:>2}: {text}");
    }
    println!("  script finished at timestep {total}");
    (fills, total)
}

/// Render the stage mid-run, like the paper's Fig. 9 screenshots.
fn show_parallel_frames() {
    use snap_core::vm::{render_stage, StageView};
    let mut project = concession(true);
    // Put the cups on stage so the screenshots have something to show.
    for (i, cup) in ["Cup1", "Cup2", "Cup3"].iter().enumerate() {
        project = project.with_sprite(SpriteDef::new(*cup).at(-60.0 + 60.0 * i as f64, -100.0));
    }
    let mut session = Session::load(project);
    session.vm.green_flag();
    let view = StageView {
        columns: 40,
        rows: 10,
        ..StageView::default()
    };
    for shot in 1..=3u64 {
        session.vm.step_frame();
        println!("--- stage at timestep {shot} (cf. Fig. 9) ---");
        print!(
            "{}",
            render_stage(&session.vm.world, session.vm.timestep(), &view)
        );
    }
    session.vm.run_until_idle();
}

fn main() {
    let opts = cli::TraceOpts::from_args();
    println!("Concession stand: 3 cups, 3 timesteps per glass\n");

    let (seq_fills, seq_total) = run_mode("sequential mode (Fig. 10)", false);
    let (par_fills, par_total) = run_mode("parallel mode (Fig. 9)", true);

    let par_done = par_fills.iter().map(|(t, _)| *t).max().unwrap_or(0);
    println!("\nSummary");
    println!("  paper: sequential 12 timesteps (9 expected + interference), parallel 3");
    println!("  ours : sequential {seq_total} timesteps, parallel {par_done}");
    println!(
        "  speedup: {:.1}x (paper: 4.0x observed, 3.0x expected)",
        seq_total as f64 / par_done.max(1) as f64
    );
    let _ = (seq_fills, par_total);

    // The "expected 9" of the paper's footnote 5: with warp suppressing
    // the scheduler overhead of the outer loop, sequential pouring takes
    // exactly 3 glasses x 3 timesteps.
    let ideal = Project::new("ideal")
        .with_global(
            "cups",
            Constant::List(vec!["Cup1".into(), "Cup2".into(), "Cup3".into()]),
        )
        .with_sprite(
            SpriteDef::new("Pitcher").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                warp(vec![for_each(
                    "cup",
                    var("cups"),
                    vec![repeat(num(3.0), vec![wait(num(1.0))])],
                )]),
                say(timer()),
            ])),
        );
    let mut session = Session::load(ideal);
    session.run();
    println!(
        "  ideal sequential (warp, no scheduler overhead): {} timesteps",
        session.said()[0]
    );

    println!();
    show_parallel_frames();

    opts.serve_and_rerun(|| {
        let mut session = Session::load(concession(true));
        session.run();
    });
    opts.finish();
}
