//! Quickstart: the paper's map / parallelMap example (Figs. 4–6).
//!
//! Builds the `map (( ) × 10) over (list 3 7 8)` script exactly as a
//! Snap! user would drag it together, runs it sequentially and then with
//! the truly parallel `parallelMap` block, and shows both agree.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use snap_core::prelude::*;

fn main() {
    // --- Figure 4: the sequential map block -------------------------
    let sequential = Project::new("fig4-map").with_sprite(SpriteDef::new("Sprite").with_script(
        Script::on_green_flag(vec![say(map_over(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([3.0, 7.0, 8.0]),
        ))]),
    ));
    let mut session = Session::load(sequential);
    session.run();
    println!(
        "map (( ) x 10) over [3, 7, 8]          -> {}",
        session.said()[0]
    );

    // --- Figure 5: parallelMap with 4 Web-Worker-style threads ------
    let parallel =
        Project::new("fig5-parallelmap").with_sprite(SpriteDef::new("Sprite").with_script(
            Script::on_green_flag(vec![say(parallel_map_with_workers(
                ring_reporter(mul(empty_slot(), num(10.0))),
                number_list([3.0, 7.0, 8.0]),
                num(4.0),
            ))]),
        ));
    let mut session = Session::load(parallel);
    session.run();
    println!(
        "parallelMap, 4 workers                 -> {}",
        session.said()[0]
    );

    // --- Figure 6: the first ten inputs/outputs of a long list ------
    let mut session = Session::load(Project::new("fig6").with_sprite(SpriteDef::new("S")));
    let inputs = numbers_from_to(num(1.0), num(1000.0));
    let outputs = session
        .eval(
            Some("S"),
            &parallel_map_over(ring_reporter(mul(empty_slot(), num(10.0))), inputs),
        )
        .expect("parallelMap evaluates");
    let first_ten: Vec<String> = outputs
        .as_list()
        .expect("a list")
        .to_vec()
        .iter()
        .take(10)
        .map(Value::to_display_string)
        .collect();
    println!(
        "first ten of parallelMap over 1..1000  -> [{}]",
        first_ten.join(", ")
    );

    // Projects are plain data: save and reload like a Snap! XML file.
    let json = Project::new("saved")
        .with_sprite(SpriteDef::new("S"))
        .to_json();
    println!("projects serialize to JSON ({} bytes)", json.len());
}
