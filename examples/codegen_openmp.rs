//! Blocks → C / OpenMP, compiled and executed (paper §6).
//!
//! Reproduces the code-mapping pipeline end to end: Listing 5 (the map
//! example in C), Listings 3–4 (hello world with and without OpenMP),
//! and the MapReduce program of Listings 6–7 (`kvp.h`, generated map and
//! reduce functions, OpenMP driver) — generated, compiled with the
//! system C compiler, run, and checked against the in-VM result.
//!
//! With `--trace <path>` the run also records spans, prints the
//! execution-report table (including the `codegen.*` counters bumped by
//! the native harness), and writes the Chrome trace + report JSON.
//!
//! ```sh
//! cargo run --example codegen_openmp
//! cargo run --example codegen_openmp -- --trace /tmp/codegen.trace.json
//! ```

#[path = "util/cli.rs"]
mod cli;

use std::sync::Arc;

use snap_core::build::BuildPipeline;
use snap_core::codegen::emit_listing5;
use snap_core::codegen::harness::{oracle_map_tiers, Harness};
use snap_core::codegen::openmp::{
    averaging_reducer, climate_mapper, emit_map_openmp, emit_mapreduce_openmp,
    LISTING4_OPENMP_HELLO,
};
use snap_core::data::{f_to_c, generate_noaa, NoaaConfig};
use snap_core::prelude::*;
use snap_core::trace::metrics::well_known as wk;

fn main() {
    let opts = cli::TraceOpts::from_args();
    // --- Listing 5: the map example as C ----------------------------
    println!("=== Listing 5: map example, blocks -> C ===");
    println!("{}", emit_listing5());

    // --- Listing 4: OpenMP hello world -------------------------------
    println!("=== Listing 4: OpenMP hello world ===");
    println!("{LISTING4_OPENMP_HELLO}");

    // --- Listings 6-7: the climate MapReduce, generated + executed ---
    let config = NoaaConfig {
        stations: 10,
        years: 5,
        readings_per_year: 12,
        ..NoaaConfig::default()
    };
    let dataset = generate_noaa(&config);
    let program = emit_mapreduce_openmp(
        &climate_mapper(),
        &averaging_reducer(),
        &dataset.station_temp_pairs(),
    )
    .expect("the climate rings are recognizable");

    println!("=== Listing 6: generated mapred.c ===");
    println!("{}", program.mapred_c);

    let dir = std::env::temp_dir().join("psnap-codegen-example");
    let pipeline = BuildPipeline::new(&dir).expect("build dir");
    if !pipeline.has_compiler() {
        println!("(no C compiler found: skipping the compile-and-run step)");
        println!(
            "codegen.toolchain_missing = {}",
            wk::CODEGEN_TOOLCHAIN_MISSING.get()
        );
        opts.finish();
        return;
    }

    println!("=== compile + run (the paper's Fig. 17 workflow) ===");
    let results = pipeline
        .build_and_run_mapreduce(&program)
        .expect("generated program compiles and runs");
    let openmp_avg = results[0].1;

    // Reference: the same MapReduce inside the VM's parallel backend.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ));
    let in_vm = snap_core::parallel::map_reduce(mapper, reducer, dataset.temps_f_values(), 4)
        .expect("in-VM MapReduce");
    let vm_avg = in_vm[0].as_list().unwrap().item(2).unwrap().to_number();

    println!("dataset             : {} readings", dataset.readings.len());
    println!("OpenMP binary mean  : {openmp_avg:.3} C");
    println!("in-VM blocks mean   : {vm_avg:.3} C");
    println!("analytic reference  : {:.3} C", f_to_c(dataset.mean_f()));
    assert!(
        (openmp_avg - vm_avg).abs() < 0.1,
        "generated code and blocks must agree (float accumulation differs slightly)"
    );
    println!("generated OpenMP program agrees with the block semantics");

    // --- The native tier through the equivalence harness -------------
    // Same climate mapper, but per-element over the stdin protocol:
    // compile (content-addressed cache), run, compare bit-for-bit
    // against the tree-walk / bytecode / batch tiers.
    println!("=== native tier: harness compile + run + tier equivalence ===");
    match Harness::detect() {
        Ok(harness) => {
            let ring = Arc::new(Ring::reporter_with_params(
                vec!["t".into()],
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ));
            let source = emit_map_openmp(&ring).expect("climate ring translates");
            let temps: Vec<f64> = dataset.readings.iter().map(|r| r.temp_f).collect();
            let native = harness
                .run_map("example_climate_map", &source, &temps)
                .expect("native climate map compiles and runs");
            let tiers = oracle_map_tiers(&ring, &temps).expect("oracle tiers evaluate");
            assert_eq!(native.len(), tiers.treewalk.len());
            let exact = native
                .iter()
                .zip(&tiers.treewalk)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            println!(
                "toolchain           : {} ({}), OpenMP {}",
                harness.toolchain().cc,
                harness.toolchain().version,
                if harness.toolchain().openmp {
                    "yes"
                } else {
                    "no"
                }
            );
            println!(
                "native vs tree-walk : {} elements, bit-for-bit {}",
                native.len(),
                if exact { "EQUAL" } else { "DIFFERENT" }
            );
            assert!(exact, "native tier must match the tree-walk oracle exactly");
            println!("codegen.compiles    = {}", wk::CODEGEN_COMPILES.get());
            println!("codegen.runs        = {}", wk::CODEGEN_RUNS.get());
            println!("codegen.native_elems = {}", wk::CODEGEN_NATIVE_ELEMS.get());
            println!("codegen.cache_hits  = {}", wk::CODEGEN_CACHE_HITS.get());
            println!("codegen.cache_misses = {}", wk::CODEGEN_CACHE_MISSES.get());
        }
        Err(e) => {
            println!("(native tier skipped: {e})");
            println!(
                "codegen.toolchain_missing = {}",
                wk::CODEGEN_TOOLCHAIN_MISSING.get()
            );
        }
    }

    opts.finish();
}
