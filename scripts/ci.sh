#!/usr/bin/env bash
# The repo's CI gate, runnable locally: format, lint, tier-1 build+test,
# then the tracing pipeline — run a traced example, validate the emitted
# Chrome trace + ExecutionReport JSON. All generated reports go under
# target/, never into the tree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

mkdir -p target/ci
echo "==> traced example: concession_stand --trace"
cargo run --release --example concession_stand -- --trace target/ci/concession_trace.json \
  > target/ci/concession_stand.txt

echo "==> validate emitted trace + report JSON"
cargo run --release -p bench --bin trace_check -- \
  target/ci/concession_trace.json target/ci/concession_trace.json.report.json

echo "==> traced example: word_count --trace (combiner must engage)"
cargo run --release --example word_count -- --trace target/ci/word_count_trace.json \
  > target/ci/word_count.txt

echo "==> validate word_count trace + assert the map-side combiner ran"
cargo run --release -p bench --bin trace_check -- \
  target/ci/word_count_trace.json target/ci/word_count_trace.json.report.json \
  --require-counter shuffle.pairs_combined --require-counter ring.bytecode_compiles

echo "==> traced example: climate --trace (columnar batch tier must engage)"
cargo run --release --example climate -- --trace target/ci/climate_trace.json \
  > target/ci/climate.txt

echo "==> validate climate trace + assert the columnar batch tier ran"
cargo run --release -p bench --bin trace_check -- \
  target/ci/climate_trace.json target/ci/climate_trace.json.report.json \
  --require-counter ring.batch_calls --require-counter par.columnar_chunks

echo "==> traced example: word_count --stream (streaming tier must engage)"
cargo run --release --example word_count -- --stream 64 \
  --trace target/ci/word_count_stream_trace.json \
  > target/ci/word_count_stream.txt

echo "==> validate streaming trace + assert items flowed through the pipeline"
cargo run --release -p bench --bin trace_check -- \
  target/ci/word_count_stream_trace.json \
  target/ci/word_count_stream_trace.json.report.json \
  --require-counter stream.items_out --require-counter stream.blocks

echo "==> experiment report (target/ci/report_output.txt)"
cargo run --release -p bench --bin report > target/ci/report_output.txt
tail -n 5 target/ci/report_output.txt

echo "==> live telemetry: word_count --serve-metrics, scrape /metrics + /profile"
cargo run --release --example word_count -- --serve-metrics 127.0.0.1:9309 --serve-seconds 20 \
  > target/ci/word_count_serve.txt &
SERVE_PID=$!
cargo run --release -p bench --bin trace_check -- \
  --scrape 127.0.0.1:9309 /metrics target/ci/metrics.prom --retry 15 \
  --expect-positive 'snap_shuffle_merge_ns_window{quantile="0.99",window="60s"}' \
  --expect-positive 'snap_pool_jobs_executed ' \
  --expect snap_vm_frame_ns_window
cargo run --release -p bench --bin trace_check -- \
  --scrape 127.0.0.1:9309 '/profile?seconds=2' target/ci/word_count.folded --retry 3 \
  --expect 'snap-worker'
wait "$SERVE_PID"

echo "==> live streaming telemetry: word_count --stream --serve-metrics, scrape p99 latency"
cargo run --release --example word_count -- --stream 64 \
  --serve-metrics 127.0.0.1:9310 --serve-seconds 20 \
  > target/ci/word_count_stream_serve.txt &
STREAM_PID=$!
cargo run --release -p bench --bin trace_check -- \
  --scrape 127.0.0.1:9310 /metrics target/ci/stream_metrics.prom --retry 15 \
  --expect-positive 'snap_stream_latency_ns_window{quantile="0.99",window="60s"}' \
  --expect-positive 'snap_stream_items_out '
wait "$STREAM_PID"

echo "==> bench smoke run + regression gate (unified BENCH_BASELINE)"
scripts/bench.sh target/ci/BENCH_BASELINE.json
cargo run --release -p bench --bin trace_check -- \
  --bench-json target/ci/BENCH_BASELINE.json --baseline BENCH_BASELINE.json

echo "==> telemetry overhead gate (continuous tier must cost <3%)"
cargo run --release -p bench --bin trace_check -- \
  --overhead-gate target/ci/BENCH_BASELINE.json

echo "==> codegen: compile-only smoke over every emitted template"
cargo test --release -p snap-codegen --test compile_smoke -- --nocapture

echo "==> codegen: differential proptest, random rings native vs oracle tiers"
cargo test --release -p snap-codegen --test codegen_diff -- --nocapture

echo "==> codegen: persistent-worker differential + chaos (frames, crash ladder, staleness)"
cargo test --release -p snap-codegen --test native_worker_diff -- --nocapture
cargo test --release -p snap-codegen --test native_worker_chaos -- --nocapture
cargo test --release -p snap-workers --test native_ring_map -- --nocapture

echo "==> codegen_check: compile + run + tier equivalence on every scenario"
mkdir -p target/ci/codegen
cargo run --release -p bench --bin codegen_check -- \
  --require-toolchain \
  --out target/ci/codegen \
  --trace target/ci/codegen/codegen_check.trace.json

echo "==> validate codegen trace + assert native runs happened"
cargo run --release -p bench --bin trace_check -- \
  target/ci/codegen/codegen_check.trace.json \
  target/ci/codegen/codegen_check.trace.json.report.json \
  --require-counter codegen.runs \
  --require-counter codegen.native_elems

echo "==> codegen_check --persistent: every scenario through the warm-worker path"
mkdir -p target/ci/codegen-persistent
cargo run --release -p bench --bin codegen_check -- \
  --require-toolchain \
  --persistent \
  --out target/ci/codegen-persistent \
  --trace target/ci/codegen-persistent/codegen_check.trace.json

echo "==> validate persistent trace + assert warm-worker frames happened"
cargo run --release -p bench --bin trace_check -- \
  target/ci/codegen-persistent/codegen_check.trace.json \
  target/ci/codegen-persistent/codegen_check.trace.json.report.json \
  --require-counter codegen.worker_spawns \
  --require-counter codegen.worker_frames

echo "==> chaos: fault-injection stress under a fixed seed"
mkdir -p target/ci/chaos
SNAP_FAULT_SEED="${SNAP_FAULT_SEED:-20240806}" RUST_BACKTRACE=1 \
  cargo test --release --test integration_faults -- --ignored --nocapture

echo "CI gate passed."
