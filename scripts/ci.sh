#!/usr/bin/env bash
# The repo's CI gate, runnable locally: format, lint, tier-1 build+test.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI gate passed."
