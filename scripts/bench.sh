#!/usr/bin/env bash
# Perf-baseline runner: executes the scheduler benches (pool_reuse,
# ablate_sched) plus the ring-evaluation benches (ring_eval,
# word_count_combine, batch_eval) and the telemetry-overhead pair
# (trace_overhead), the streaming-tier pair (stream_throughput,
# stream_latency), and the native-tier comparisons (native_vs_batch,
# native_amortized), and writes a machine-readable JSON of their median
# per-iteration times, so future PRs can compare against this PR's
# numbers without re-reading bench logs.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_BASELINE.json)
#
# Each entry carries the bench label, the median time in nanoseconds,
# and the worker count the bench ran with (parsed from the label when
# the label is the worker count, else the benches' WORKERS constant, 4).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_BASELINE.json}"
DATE="$(git log -1 --format=%cI 2>/dev/null || date -Iseconds)"
CPUS="$(nproc 2>/dev/null || echo 1)"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

for bench in pool_reuse ablate_sched ring_eval word_count_combine batch_eval trace_overhead \
             stream_throughput stream_latency native_vs_batch native_amortized; do
  echo "==> cargo bench -p bench --bench $bench" >&2
  cargo bench -p bench --bench "$bench" 2>/dev/null | tee /dev/stderr | grep "time:" >>"$RAW"
done

awk -v date="$DATE" -v cpus="$CPUS" '
  function to_ns(v, u) {
    if (u ~ /^ns/) return v
    if (u ~ /^µs/) return v * 1e3
    if (u ~ /^ms/) return v * 1e6
    return v * 1e9
  }
  BEGIN {
    printf("{\n  \"date\": \"%s\",\n  \"host_cpus\": %s,\n  \"benches\": [", date, cpus)
    sep = ""
  }
  /time:/ {
    # Stub criterion line: <label> time: [<lo> <unit> <med> <unit> <hi> <unit>]
    name = $1
    lo = substr($3, 2)
    med = $5
    workers = (name ~ /\/[0-9]+$/) ? name : (name ~ /nested_latency/ ? "8" : "4")
    sub(/^.*\//, "", workers)
    if (workers !~ /^[0-9]+$/) workers = "4"
    printf("%s\n    {\"name\": \"%s\", \"mean_ns\": %.1f, \"workers\": %s}", \
           sep, name, to_ns(med, $6), workers)
    sep = ","
  }
  END { printf("\n  ]\n}\n") }
' "$RAW" >"$OUT"

echo "wrote $OUT" >&2
