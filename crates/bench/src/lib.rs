//! Shared workloads for the evaluation harness.
//!
//! Everything the `report` binary and the Criterion benches measure is
//! built here, so the two always agree on what an experiment means.
//! See `DESIGN.md`'s experiment index for the paper mapping.

use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Constant, Project, Ring, Script, SpriteDef, Stmt, Value};
use snap_vm::Vm;
use snap_workers::{ring_map, RingMapOptions};

/// The paper's `(( ) × 10)` ring (Figs. 4–6).
pub fn times_ten_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

/// A ring whose evaluation cost is tunable: sums `1..cost` scaled by the
/// input, entirely inside the pure evaluator (compute-bound work).
pub fn expensive_ring(cost: usize) -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        combine_using(
            map_over(
                ring_reporter(mul(empty_slot(), var("x"))),
                numbers_from_to(num(1.0), num(cost as f64)),
            ),
            ring_reporter(add(empty_slot(), empty_slot())),
        ),
    ))
}

/// The word-count mapper `[w, 1]` (Fig. 11).
pub fn word_count_mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

/// The summing reducer (Fig. 11).
pub fn summing_reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ))
}

/// The climate mapper `["avg", °C]` (Fig. 19).
pub fn climate_mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    ))
}

/// The averaging reducer (Fig. 20).
pub fn averaging_reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ))
}

/// Number values `1..=n`.
pub fn number_items(n: usize) -> Vec<Value> {
    (1..=n).map(|i| Value::Number(i as f64)).collect()
}

/// `ring_map` with a worker count and simulated per-item latency.
pub fn latency_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
    latency: Duration,
) -> Vec<Value> {
    ring_map(
        ring,
        items,
        RingMapOptions {
            workers,
            latency: Some(latency),
            ..Default::default()
        },
    )
    .expect("latency map evaluates")
}

/// Build the concession-stand project (paper §3.3). `parallel` selects
/// the `parallelForEach` mode.
pub fn concession_project(parallel: bool, cups: usize) -> Project {
    let fill = vec![repeat(num(3.0), vec![wait(num(1.0))])];
    let serve = if parallel {
        parallel_for_each("cup", var("cups"), fill)
    } else {
        parallel_for_each_sequential("cup", var("cups"), fill)
    };
    let cup_names: Vec<Constant> = (1..=cups)
        .map(|i| Constant::Text(format!("Cup{i}")))
        .collect();
    Project::new("concession")
        .with_global("cups", Constant::List(cup_names))
        .with_sprite(
            SpriteDef::new("Pitcher").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                serve,
                say(timer()),
            ])),
        )
}

/// Run the concession stand; returns the timesteps the script reports
/// (the stage-timer value the paper's screenshots show).
pub fn run_concession(parallel: bool, cups: usize) -> u64 {
    let mut vm = Vm::new(concession_project(parallel, cups));
    snap_parallel::install(&mut vm);
    vm.green_flag();
    vm.run_until_idle();
    vm.world
        .said()
        .last()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0)
}

/// Like [`run_concession`] but returns the timestep at which the last
/// glass finished pouring (the paper's parallel "3").
pub fn run_concession_last_fill(parallel: bool, cups: usize) -> u64 {
    let fill = vec![
        repeat(num(3.0), vec![wait(num(1.0))]),
        say(join(vec![text("filled "), var("cup")])),
    ];
    let serve = if parallel {
        parallel_for_each("cup", var("cups"), fill)
    } else {
        parallel_for_each_sequential("cup", var("cups"), fill)
    };
    let cup_names: Vec<Constant> = (1..=cups)
        .map(|i| Constant::Text(format!("Cup{i}")))
        .collect();
    let project = Project::new("concession")
        .with_global("cups", Constant::List(cup_names))
        .with_sprite(
            SpriteDef::new("Pitcher")
                .with_script(Script::on_green_flag(vec![Stmt::ResetTimer, serve])),
        );
    let mut vm = Vm::new(project);
    snap_parallel::install(&mut vm);
    vm.green_flag();
    vm.run_until_idle();
    vm.world
        .say_log
        .iter()
        .filter(|e| e.text.starts_with("filled"))
        .map(|e| e.timestep)
        .max()
        .unwrap_or(0)
}

/// A compute-heavy VM script (for the time-slice ablation): `iters`
/// iterations of arithmetic in a plain (unwarped) repeat loop, so the
/// scheduler's slice length is what's being measured.
pub fn compute_script_project(iters: u64) -> Project {
    Project::new("compute").with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(
        vec![
            set_var("acc", num(0.0)),
            repeat(
                num(iters as f64),
                vec![set_var("acc", add(var("acc"), num(1.0)))],
            ),
            say(var("acc")),
        ],
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expensive_ring_cost_scales() {
        let cheap = expensive_ring(10);
        let f = snap_ast::PureFn::compile(cheap).unwrap();
        // sum(1..10)*x with x=2 → 55*2 = 110
        assert_eq!(f.call1(Value::Number(2.0)).unwrap(), Value::Number(110.0));
    }

    #[test]
    fn concession_matches_paper_numbers() {
        assert_eq!(run_concession(false, 3), 12);
        assert_eq!(run_concession_last_fill(true, 3), 3);
    }

    #[test]
    fn compute_script_reports_iterations() {
        let mut vm = Vm::new(compute_script_project(100));
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["100"]);
    }
}
