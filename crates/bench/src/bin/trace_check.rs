//! Validate an emitted Chrome `trace_event` JSON file (and optionally
//! an `ExecutionReport` JSON) — the CI gate for the tracing pipeline.
//!
//! ```sh
//! cargo run -p bench --bin trace_check -- target/trace.json [target/trace.json.report.json]
//! cargo run -p bench --bin trace_check -- target/trace.json target/trace.json.report.json \
//!     --require-counter shuffle.pairs_combined
//! cargo run -p bench --bin trace_check -- --bench-json target/ci/BENCH_BASELINE.json
//! cargo run -p bench --bin trace_check -- --bench-json target/ci/BENCH_BASELINE.json \
//!     --baseline BENCH_BASELINE.json
//! ```
//!
//! Report validation checks the schema (counters/gauges/spans/
//! executed_per_worker) and that every counter in
//! [`REQUIRED_REPORT_COUNTERS`] — including the PR-5 ring-bytecode and
//! combiner counters — is present. `--require-counter <name>`
//! additionally asserts the named counter is **positive** in every
//! report file checked (CI uses it to prove the map-side combiner
//! actually ran on the traced example).
//!
//! `--bench-json` instead validates a `scripts/bench.sh` baseline file
//! (date, host_cpus, and a non-empty benches array of name/mean_ns/
//! workers entries). With `--baseline`, the fresh run is additionally
//! compared against the committed baseline: the gated benches (see
//! [`GATED_BENCHES`]; from `a1_job_churn/1` through
//! `a10_native_amortized/persistent_deep_120000`) fail the check when more than 25% slower than
//! baseline, and the full comparison table is appended to
//! `$GITHUB_STEP_SUMMARY` when that variable is set. Exits non-zero if
//! a file is missing, fails to parse, lacks its required structure,
//! regresses past the gate, or (for traces) contains malformed events.
//!
//! Two more modes serve the continuous-telemetry pipeline:
//!
//! * `--overhead-gate <BENCH.json>` — reads the `a7_trace_overhead`
//!   pair from a fresh bench run and fails when `telemetry_on` costs
//!   more than [`OVERHEAD_GATE_RATIO`]× `telemetry_off` — the <3%
//!   always-on telemetry budget, self-audited.
//! * `--scrape <host:port> <path> <outfile> [--retry N] [--expect
//!   <substr> ...] [--expect-positive <line-prefix> ...]` —
//!   dependency-free HTTP GET against a live `snap_trace::serve`
//!   endpoint (CI has no curl guarantee). Writes the response body to
//!   `<outfile>` and fails unless the status is 200, every `--expect`
//!   substring occurs in the body, and every `--expect-positive` prefix
//!   matches a sample line whose value is > 0 (proving the metric is
//!   live, not just exported). `--retry` re-attempts (1s apart) while
//!   the server warms up or a metric has yet to go live.

use std::io::{Read, Write};
use std::process::ExitCode;

use serde_json::Value;

fn parse_file(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e:?}"))
}

fn check_trace(path: &str) -> Result<(), String> {
    let doc = parse_file(path)?;
    let events = match doc.as_object().and_then(|o| o.get("traceEvents")) {
        Some(Value::Array(events)) => events,
        _ => return Err(format!("{path}: no traceEvents array")),
    };
    for (i, event) in events.iter().enumerate() {
        let object = event
            .as_object()
            .ok_or_else(|| format!("{path}: event {i} is not an object"))?;
        for field in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if object.get(field).is_none() {
                return Err(format!("{path}: event {i} missing {field:?}"));
            }
        }
    }
    let mut names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.as_object()?.get("name")?.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "{path}: OK — {} events, {} distinct spans: {}",
        events.len(),
        names.len(),
        names.join(", ")
    );
    Ok(())
}

/// Counters every `ExecutionReport` JSON must carry — the observability
/// contract each subsystem PR extends. PR 5 added the ring-bytecode
/// tiers and the map-side combiner; PR 6 added the columnar batch tier;
/// PR 7 added the continuous-telemetry self-audit counters; PR 8 added
/// the streaming-pipeline counters.
const REQUIRED_REPORT_COUNTERS: &[&str] = &[
    "stream.items_in",
    "stream.items_out",
    "stream.blocks",
    "pool.jobs_executed",
    "compile_cache.hits",
    "compile_cache.misses",
    "ring.bytecode_compiles",
    "ring.fastpath_calls",
    "ring.bytecode_calls",
    "ring.treewalk_calls",
    "ring.batch_calls",
    "ring.batch_elems",
    "ring.batch_fallbacks",
    "par.columnar_chunks",
    "shuffle.pairs",
    "shuffle.combine_runs",
    "shuffle.pairs_combined",
    "trace.spans_dropped",
    "trace.overhead_ns",
    "trace.profile_samples",
    "codegen.compiles",
    "codegen.runs",
    "codegen.native_elems",
    "codegen.toolchain_missing",
    "codegen.cache_hits",
    "codegen.cache_misses",
    "codegen.worker_spawns",
    "codegen.worker_frames",
    "codegen.worker_restarts",
    "codegen.worker_fallbacks",
    "codegen.worker_reaped",
];

fn check_report(path: &str, require_positive: &[String]) -> Result<(), String> {
    let doc = parse_file(path)?;
    let object = doc
        .as_object()
        .ok_or_else(|| format!("{path}: report is not an object"))?;
    for field in ["counters", "gauges", "spans", "executed_per_worker"] {
        if object.get(field).is_none() {
            return Err(format!("{path}: report missing {field:?}"));
        }
    }
    let counters = object
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: counters is not an object"))?;
    for name in REQUIRED_REPORT_COUNTERS {
        if counters.get(name).is_none() {
            return Err(format!("{path}: report missing counter {name:?}"));
        }
    }
    for name in require_positive {
        let value = match counters.get(name.as_str()) {
            Some(Value::Number(n)) => n.as_f64(),
            _ => return Err(format!("{path}: required counter {name:?} not found")),
        };
        if value <= 0.0 {
            return Err(format!("{path}: counter {name:?} is {value}, expected > 0"));
        }
        println!("{path}: counter {name} = {value} (> 0 as required)");
    }
    println!("{path}: OK — {} counters", counters.len());
    Ok(())
}

fn check_bench_json(path: &str) -> Result<(), String> {
    let doc = parse_file(path)?;
    let object = doc
        .as_object()
        .ok_or_else(|| format!("{path}: baseline is not an object"))?;
    for field in ["date", "host_cpus", "benches"] {
        if object.get(field).is_none() {
            return Err(format!("{path}: baseline missing {field:?}"));
        }
    }
    let benches = match object.get("benches") {
        Some(Value::Array(benches)) if !benches.is_empty() => benches,
        _ => return Err(format!("{path}: benches is not a non-empty array")),
    };
    for (i, bench) in benches.iter().enumerate() {
        let entry = bench
            .as_object()
            .ok_or_else(|| format!("{path}: bench {i} is not an object"))?;
        for field in ["name", "mean_ns", "workers"] {
            if entry.get(field).is_none() {
                return Err(format!("{path}: bench {i} missing {field:?}"));
            }
        }
        match entry.get("mean_ns") {
            Some(Value::Number(ns)) if ns.as_f64() > 0.0 => {}
            _ => return Err(format!("{path}: bench {i} mean_ns is not positive")),
        }
    }
    println!("{path}: OK — {} bench baselines", benches.len());
    Ok(())
}

/// Benches whose regressions fail CI; everything else is informational.
/// All run single-job/low-worker shapes that are stable on small CI
/// hosts, unlike the saturation benches that swing with core count.
/// The `a5` pair gates the ring-bytecode fast path and the map-side
/// combiner: both are per-item/per-pair CPU work, stable on one core.
/// The `a6` pair gates the columnar batch tier: the raw `eval_batch`
/// lane loops and the end-to-end columnar `parallelMap` pipeline. The
/// `a8` pair gates the streaming tier: whole-corpus streaming word
/// count and the short-pipeline end-to-end latency.
const GATED_BENCHES: &[&str] = &[
    "a1_job_churn/1",
    "a1_nested_latency/outer2_inner8",
    "a5_ring_eval/bytecode_fastpath",
    "a5_word_count_combine/combiner_on",
    "a6_batch_eval/eval_batch",
    "a6_columnar_map/columnar_on",
    "a8_stream_throughput/streaming",
    "a8_stream_latency/numeric_2stage",
    "a9_native_vs_batch/batch_tier",
    "a10_native_amortized/persistent_deep_120000",
];

/// Regression tolerance for gated benches: fail when `current` is more
/// than 25% slower than the committed baseline.
const GATE_RATIO: f64 = 1.25;

fn bench_means(path: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_file(path)?;
    let benches = match doc.as_object().and_then(|o| o.get("benches")) {
        Some(Value::Array(benches)) => benches,
        _ => return Err(format!("{path}: no benches array")),
    };
    let mut means = Vec::with_capacity(benches.len());
    for bench in benches {
        let entry = bench
            .as_object()
            .ok_or_else(|| format!("{path}: bench entry is not an object"))?;
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: bench entry missing name"))?;
        let mean = match entry.get("mean_ns") {
            Some(Value::Number(ns)) => ns.as_f64(),
            _ => return Err(format!("{path}: bench {name:?} missing mean_ns")),
        };
        means.push((name.to_string(), mean));
    }
    Ok(means)
}

/// Compare a fresh bench run against the committed baseline. Prints a
/// markdown comparison table (also appended to `$GITHUB_STEP_SUMMARY`
/// when set) and fails if any gated bench regressed past [`GATE_RATIO`].
fn compare_bench_json(current_path: &str, baseline_path: &str) -> Result<(), String> {
    let current = bench_means(current_path)?;
    let baseline = bench_means(baseline_path)?;
    let mut table = String::from(
        "## Bench regression gate\n\n\
         | bench | baseline ns | current ns | ratio | gate |\n\
         |---|---:|---:|---:|---|\n",
    );
    let mut regressions = Vec::new();
    for (name, base_ns) in &baseline {
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            if GATED_BENCHES.contains(&name.as_str()) {
                regressions.push(format!("{name}: missing from {current_path}"));
            }
            continue;
        };
        let ratio = cur_ns / base_ns;
        let gated = GATED_BENCHES.contains(&name.as_str());
        let verdict = match (gated, ratio > GATE_RATIO) {
            (true, true) => "FAIL",
            (true, false) => "pass",
            (false, _) => "info",
        };
        if gated && ratio > GATE_RATIO {
            regressions.push(format!(
                "{name}: {cur_ns:.0}ns vs baseline {base_ns:.0}ns ({ratio:.2}x > {GATE_RATIO}x)"
            ));
        }
        table.push_str(&format!(
            "| {name} | {base_ns:.0} | {cur_ns:.0} | {ratio:.2}x | {verdict} |\n"
        ));
    }
    println!("{table}");
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary_path.is_empty() {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&summary_path)
            {
                let _ = writeln!(file, "{table}");
            }
        }
    }
    if regressions.is_empty() {
        println!(
            "{current_path}: OK — no gated regression vs {baseline_path} ({} gated benches)",
            GATED_BENCHES.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{current_path}: gated bench regression vs {baseline_path}: {}",
            regressions.join("; ")
        ))
    }
}

/// Telemetry-on may cost at most 3% over telemetry-off on the churn
/// workload — the always-on tier's self-audited overhead budget.
const OVERHEAD_GATE_RATIO: f64 = 1.03;

/// Assert the `a7_trace_overhead` pair in a fresh bench run is within
/// [`OVERHEAD_GATE_RATIO`].
fn check_overhead_gate(path: &str) -> Result<(), String> {
    let means = bench_means(path)?;
    let mean_of = |name: &str| {
        means
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .ok_or_else(|| format!("{path}: missing bench {name:?}"))
    };
    let off = mean_of("a7_trace_overhead/telemetry_off")?;
    let on = mean_of("a7_trace_overhead/telemetry_on")?;
    if off <= 0.0 {
        return Err(format!("{path}: telemetry_off mean is not positive"));
    }
    let ratio = on / off;
    if ratio > OVERHEAD_GATE_RATIO {
        return Err(format!(
            "{path}: continuous telemetry overhead {on:.0}ns vs {off:.0}ns \
             ({ratio:.3}x > {OVERHEAD_GATE_RATIO}x budget)"
        ));
    }
    println!(
        "{path}: OK — telemetry overhead {ratio:.3}x (on {on:.0}ns / off {off:.0}ns, \
         budget {OVERHEAD_GATE_RATIO}x)"
    );
    Ok(())
}

/// One dependency-free HTTP/1.1 GET. Returns the response body after
/// verifying a 200 status line.
fn http_get(addr: &str, target: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| format!("{addr}: {e}"))?;
    let request = format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("{addr}: write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: read: {e}"))?;
    let status = response.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{target}: status {status:?}, expected 200"));
    }
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!(
            "{addr}{target}: malformed response (no header end)"
        )),
    }
}

/// Check one scraped body against the `--expect` substrings and the
/// `--expect-positive` sample-line prefixes (line value must be > 0).
fn check_body(
    addr: &str,
    target: &str,
    outfile: &str,
    body: &str,
    expect: &[String],
    expect_positive: &[String],
) -> Result<(), String> {
    for needle in expect {
        if !body.contains(needle.as_str()) {
            return Err(format!(
                "{addr}{target}: body ({} bytes, saved to {outfile}) \
                 does not contain {needle:?}",
                body.len()
            ));
        }
    }
    for prefix in expect_positive {
        let value = body
            .lines()
            .find(|line| line.starts_with(prefix.as_str()))
            .and_then(|line| line.rsplit_once(' '))
            .and_then(|(_, v)| v.parse::<f64>().ok());
        match value {
            Some(v) if v > 0.0 => {}
            Some(v) => {
                return Err(format!(
                    "{addr}{target}: sample {prefix:?} is {v}, expected > 0 \
                     (saved to {outfile})"
                ));
            }
            None => {
                return Err(format!(
                    "{addr}{target}: no parseable sample line starts with {prefix:?} \
                     (saved to {outfile})"
                ));
            }
        }
    }
    Ok(())
}

/// `--scrape` mode: GET `<path>` from a live endpoint, write the body
/// to `<outfile>`, and assert every expectation. Retries cover both a
/// server that is still warming up (connection refused) and a metric
/// that has not gone live yet (unmet expectation), so CI can scrape a
/// freshly-launched example without a sleep.
fn scrape(
    addr: &str,
    target: &str,
    outfile: &str,
    retries: u32,
    expect: &[String],
    expect_positive: &[String],
) -> Result<(), String> {
    let mut last_err = String::new();
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_secs(1));
        }
        match http_get(addr, target).and_then(|body| {
            std::fs::write(outfile, &body).map_err(|e| format!("{outfile}: {e}"))?;
            check_body(addr, target, outfile, &body, expect, expect_positive).map(|()| body)
        }) {
            Ok(body) => {
                println!(
                    "{addr}{target}: OK — {} bytes to {outfile} ({} expectation(s) met)",
                    body.len(),
                    expect.len() + expect_positive.len()
                );
                return Ok(());
            }
            Err(e) => last_err = e,
        }
    }
    Err(format!("after {} attempt(s): {last_err}", retries + 1))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: trace_check <chrome-trace.json> [report.json ...] \
             [--require-counter <name> ...] \
             | --bench-json <BENCH.json> [--baseline <BENCH.json>] \
             | --overhead-gate <BENCH.json> \
             | --scrape <host:port> <path> <outfile> [--retry N] [--expect <substr> ...] \
             [--expect-positive <line-prefix> ...]"
        );
        return ExitCode::FAILURE;
    }
    if args[0] == "--overhead-gate" {
        let Some(path) = args.get(1) else {
            eprintln!("trace_check FAILED: --overhead-gate requires a bench JSON path");
            return ExitCode::FAILURE;
        };
        return match check_overhead_gate(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("trace_check FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args[0] == "--scrape" {
        let (Some(addr), Some(target), Some(outfile)) = (args.get(1), args.get(2), args.get(3))
        else {
            eprintln!("trace_check FAILED: --scrape requires <host:port> <path> <outfile>");
            return ExitCode::FAILURE;
        };
        let mut retries = 0u32;
        let mut expect: Vec<String> = Vec::new();
        let mut expect_positive: Vec<String> = Vec::new();
        let mut rest = args[4..].iter();
        while let Some(arg) = rest.next() {
            match arg.as_str() {
                "--retry" => match rest.next().and_then(|v| v.parse().ok()) {
                    Some(n) => retries = n,
                    None => {
                        eprintln!("trace_check FAILED: --retry requires a count");
                        return ExitCode::FAILURE;
                    }
                },
                "--expect" => match rest.next() {
                    Some(needle) => expect.push(needle.clone()),
                    None => {
                        eprintln!("trace_check FAILED: --expect requires a substring");
                        return ExitCode::FAILURE;
                    }
                },
                "--expect-positive" => match rest.next() {
                    Some(prefix) => expect_positive.push(prefix.clone()),
                    None => {
                        eprintln!("trace_check FAILED: --expect-positive requires a line prefix");
                        return ExitCode::FAILURE;
                    }
                },
                other => {
                    eprintln!("trace_check FAILED: unknown --scrape argument {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return match scrape(addr, target, outfile, retries, &expect, &expect_positive) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("trace_check FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args[0] == "--bench-json" {
        let mut paths: Vec<&str> = Vec::new();
        let mut baseline: Option<&str> = None;
        let mut rest = args[1..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--baseline" {
                match rest.next() {
                    Some(path) => baseline = Some(path),
                    None => {
                        eprintln!("trace_check FAILED: --baseline requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                paths.push(arg);
            }
        }
        for path in &paths {
            if let Err(message) = check_bench_json(path) {
                eprintln!("trace_check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(baseline) = baseline {
            if let Err(message) = check_bench_json(baseline) {
                eprintln!("trace_check FAILED: {message}");
                return ExitCode::FAILURE;
            }
            for path in &paths {
                if let Err(message) = compare_bench_json(path, baseline) {
                    eprintln!("trace_check FAILED: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let mut paths: Vec<&str> = Vec::new();
    let mut require_positive: Vec<String> = Vec::new();
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        if arg == "--require-counter" {
            match rest.next() {
                Some(name) => require_positive.push(name.clone()),
                None => {
                    eprintln!("trace_check FAILED: --require-counter requires a name");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg);
        }
    }
    for (i, path) in paths.iter().enumerate() {
        let result = if i == 0 {
            check_trace(path)
        } else {
            check_report(path, &require_positive)
        };
        if let Err(message) = result {
            eprintln!("trace_check FAILED: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
