//! Validate an emitted Chrome `trace_event` JSON file (and optionally
//! an `ExecutionReport` JSON) — the CI gate for the tracing pipeline.
//!
//! ```sh
//! cargo run -p bench --bin trace_check -- target/trace.json [target/trace.json.report.json]
//! cargo run -p bench --bin trace_check -- --bench-json target/ci/BENCH_3.json
//! ```
//!
//! `--bench-json` instead validates a `scripts/bench.sh` baseline file
//! (date, host_cpus, and a non-empty benches array of name/mean_ns/
//! workers entries). Exits non-zero if a file is missing, fails to
//! parse, lacks its required structure, or (for traces) contains
//! malformed events.

use std::process::ExitCode;

use serde_json::Value;

fn parse_file(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e:?}"))
}

fn check_trace(path: &str) -> Result<(), String> {
    let doc = parse_file(path)?;
    let events = match doc.as_object().and_then(|o| o.get("traceEvents")) {
        Some(Value::Array(events)) => events,
        _ => return Err(format!("{path}: no traceEvents array")),
    };
    for (i, event) in events.iter().enumerate() {
        let object = event
            .as_object()
            .ok_or_else(|| format!("{path}: event {i} is not an object"))?;
        for field in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if object.get(field).is_none() {
                return Err(format!("{path}: event {i} missing {field:?}"));
            }
        }
    }
    let mut names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.as_object()?.get("name")?.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "{path}: OK — {} events, {} distinct spans: {}",
        events.len(),
        names.len(),
        names.join(", ")
    );
    Ok(())
}

fn check_report(path: &str) -> Result<(), String> {
    let doc = parse_file(path)?;
    let object = doc
        .as_object()
        .ok_or_else(|| format!("{path}: report is not an object"))?;
    for field in ["counters", "gauges", "spans", "executed_per_worker"] {
        if object.get(field).is_none() {
            return Err(format!("{path}: report missing {field:?}"));
        }
    }
    let counters = object
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: counters is not an object"))?;
    println!("{path}: OK — {} counters", counters.len());
    Ok(())
}

fn check_bench_json(path: &str) -> Result<(), String> {
    let doc = parse_file(path)?;
    let object = doc
        .as_object()
        .ok_or_else(|| format!("{path}: baseline is not an object"))?;
    for field in ["date", "host_cpus", "benches"] {
        if object.get(field).is_none() {
            return Err(format!("{path}: baseline missing {field:?}"));
        }
    }
    let benches = match object.get("benches") {
        Some(Value::Array(benches)) if !benches.is_empty() => benches,
        _ => return Err(format!("{path}: benches is not a non-empty array")),
    };
    for (i, bench) in benches.iter().enumerate() {
        let entry = bench
            .as_object()
            .ok_or_else(|| format!("{path}: bench {i} is not an object"))?;
        for field in ["name", "mean_ns", "workers"] {
            if entry.get(field).is_none() {
                return Err(format!("{path}: bench {i} missing {field:?}"));
            }
        }
        match entry.get("mean_ns") {
            Some(Value::Number(ns)) if ns.as_f64() > 0.0 => {}
            _ => return Err(format!("{path}: bench {i} mean_ns is not positive")),
        }
    }
    println!("{path}: OK — {} bench baselines", benches.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: trace_check <chrome-trace.json> [report.json ...] | --bench-json <BENCH.json>"
        );
        return ExitCode::FAILURE;
    }
    if args[0] == "--bench-json" {
        for path in &args[1..] {
            if let Err(message) = check_bench_json(path) {
                eprintln!("trace_check FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    for (i, path) in args.iter().enumerate() {
        let result = if i == 0 {
            check_trace(path)
        } else {
            check_report(path)
        };
        if let Err(message) = result {
            eprintln!("trace_check FAILED: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
