//! `codegen_check` — compile, run, and differentially verify every
//! emitted C/OpenMP scenario (the PR 9 CI gate for the native tier).
//!
//! ```text
//! codegen_check [--require-toolchain] [--persistent] [--out <dir>] [--trace <path>]
//! ```
//!
//! For every scenario in [`snap_codegen::harness::scenarios`] —
//! Listings 3–5 as runnable artifacts, the Fig. 5 / climate map rings,
//! and the climate/word_count MapReduce pairs — the check:
//!
//! 1. emits the C sources (written under `--out` for CI artifacts),
//! 2. compiles them with the probed toolchain (`-Wall -Werror`,
//!    content-addressed binary cache under `target/codegen-cache/`),
//! 3. runs the binary on the same `snap-data` inputs the VM uses, and
//! 4. asserts tier equivalence: native ≡ tree-walk ≡ bytecode ≡ batch
//!    (maps, bit-for-bit with the any-NaN rule; also against the pooled
//!    columnar `ring_map` pipeline) and native ≡ VM `mapReduce` within
//!    the documented reduction tolerance.
//!
//! `--persistent` swaps step 3 for the **warm-worker** path: each map
//! scenario's binary is spawned once in `--serve` mode and streamed
//! multiple successive binary frames through the process-wide
//! `NativePool` (MapReduce scenarios stream whole jobs the same way),
//! and the big pooled comparison runs `ring_map` under
//! `NativePolicy::Auto` so the chunk router itself is on the hook. The
//! equivalence assertions are unchanged — the persistent tier earns no
//! extra tolerance.
//!
//! Exit codes: `0` all green (or toolchain missing without
//! `--require-toolchain` — an auto-skip with a visible
//! `codegen.toolchain_missing` note so tier-1 stays green on bare
//! hosts); `1` any compile/run/equivalence failure, with a diff report
//! written next to the sources.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use snap_ast::{Ring, Value};
use snap_codegen::harness::{self, compare_pairs, compare_values, Harness, Scenario, ScenarioKind};
use snap_codegen::openmp::{emit_map_openmp, emit_mapreduce_openmp_protocol};
use snap_codegen::worker::{native_pool, register_native_map, NativeProgram, WorkerKind};
use snap_data::corpus::generate_words;
use snap_data::noaa::{generate as generate_noaa, NoaaConfig};
use snap_workers::ring_fn::{
    ring_map, ColumnarPolicy, NativePolicy, RingMapOptions, NATIVE_MIN_ITEMS,
};

fn usage() -> String {
    "usage: codegen_check [--require-toolchain] [--persistent] [--out <dir>] [--trace <path>]"
        .to_owned()
}

struct Opts {
    require_toolchain: bool,
    persistent: bool,
    out: PathBuf,
    trace: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        require_toolchain: false,
        persistent: false,
        out: PathBuf::from("target/ci/codegen"),
        trace: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-toolchain" => opts.require_toolchain = true,
            "--persistent" => opts.persistent = true,
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(args.get(i).ok_or_else(usage)?);
            }
            "--trace" => {
                i += 1;
                opts.trace = Some(args.get(i).ok_or_else(usage)?.clone());
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    Ok(opts)
}

/// The numeric inputs map scenarios run on: the NOAA Fahrenheit
/// readings the climate example uses, prefixed with a deliberate batch
/// of IEEE edge cases.
fn map_inputs() -> Vec<f64> {
    let mut inputs = vec![
        0.0,
        -0.0,
        32.0,
        212.0,
        -40.0,
        98.6,
        0.5,
        -3.75,
        1e300,
        -1e300,
        1e-300,
        5e-324,
        f64::MAX,
        f64::EPSILON,
        1.0 / 3.0,
    ];
    let dataset = generate_noaa(&NoaaConfig {
        stations: 12,
        years: 3,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    inputs.extend(dataset.readings.iter().map(|r| r.temp_f));
    inputs
}

fn mapreduce_pairs(name: &str) -> Vec<(String, f64)> {
    match name {
        "word_count_mapreduce" => generate_words(2000, 42)
            .into_iter()
            .map(|w| (w, 1.0))
            .collect(),
        _ => {
            let dataset = generate_noaa(&NoaaConfig {
                stations: 16,
                years: 4,
                readings_per_year: 12,
                ..NoaaConfig::default()
            });
            dataset.station_temp_pairs()
        }
    }
}

fn write_sources(out: &Path, name: &str, sources: &[(&str, &str)]) {
    let dir = out.join(name);
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    for (file, text) in sources {
        let _ = fs::write(dir.join(file), text);
    }
}

fn write_diff_report(out: &Path, name: &str, detail: &str) {
    let dir = out.join(name);
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("diff_report.txt"), detail);
}

/// The pooled columnar pipeline's view of a map scenario, as plain f64.
fn pooled_map(
    ring: &Arc<Ring>,
    inputs: &[f64],
    columnar: ColumnarPolicy,
    native: NativePolicy,
) -> Result<Vec<f64>, String> {
    let items: Vec<Value> = inputs.iter().map(|&x| Value::Number(x)).collect();
    let options = RingMapOptions {
        workers: 4,
        columnar,
        native,
        ..RingMapOptions::default()
    };
    let out = ring_map(Arc::clone(ring), items, options)
        .map_err(|e| format!("pooled ring_map failed: {e:?}"))?;
    Ok(out.iter().map(Value::to_number).collect())
}

/// The persistent path for a map scenario: one warm worker, the input
/// set streamed as three successive frames (so protocol resync is
/// exercised, not just a single exchange), results re-concatenated.
fn persistent_map(program: &NativeProgram, inputs: &[f64]) -> Result<Vec<f64>, String> {
    let third = inputs.len().div_ceil(3).max(1);
    let mut out = Vec::with_capacity(inputs.len());
    for frame in inputs.chunks(third) {
        out.extend(
            native_pool()
                .map_frame(program, frame)
                .map_err(|e| format!("persistent map frame failed: {e}"))?,
        );
    }
    Ok(out)
}

/// `ring_map` under `NativePolicy::Auto` on an input list big enough
/// that the chunk router must actually frame out to the warm worker
/// (`inputs` tiled past `NATIVE_MIN_ITEMS`), compared against the same
/// list with the native tier disabled.
fn persistent_pooled_equivalence(ring: &Arc<Ring>, inputs: &[f64]) -> Result<usize, String> {
    let mut tiled = Vec::with_capacity(2 * NATIVE_MIN_ITEMS + inputs.len());
    while tiled.len() < 2 * NATIVE_MIN_ITEMS {
        tiled.extend_from_slice(inputs);
    }
    let through_worker = pooled_map(ring, &tiled, ColumnarPolicy::Auto, NativePolicy::Auto)?;
    let in_process = pooled_map(ring, &tiled, ColumnarPolicy::Auto, NativePolicy::Disabled)?;
    compare_values(
        "pooled native-auto vs native-disabled",
        &through_worker,
        &in_process,
    )?;
    Ok(tiled.len())
}

/// VM-side MapReduce via the paper's parallel block, normalized to
/// `(key, value)` pairs.
fn vm_mapreduce(
    mapper: &Ring,
    reducer: &Ring,
    name: &str,
    pairs: &[(String, f64)],
) -> Result<Vec<(String, f64)>, String> {
    // The VM block maps over the same per-record values the C `map`
    // sees: words for word count, temperatures for the climate rings.
    let items: Vec<Value> = match name {
        "word_count_mapreduce" => pairs.iter().map(|(k, _)| Value::text(k.clone())).collect(),
        _ => pairs.iter().map(|(_, v)| Value::Number(*v)).collect(),
    };
    let grouped = snap_parallel::blocks::map_reduce(
        Arc::new(mapper.clone()),
        Arc::new(reducer.clone()),
        items,
        4,
    )
    .map_err(|e| format!("VM mapReduce failed: {e:?}"))?;
    let mut out = Vec::with_capacity(grouped.len());
    for pair in &grouped {
        let list = pair
            .as_list()
            .ok_or_else(|| "VM mapReduce returned a non-pair".to_owned())?;
        let key = match list.item(1) {
            Some(Value::Text(s)) => s,
            Some(Value::Number(n)) => Value::format_number(n),
            other => return Err(format!("VM mapReduce key {other:?}")),
        };
        let val = list
            .item(2)
            .ok_or_else(|| "VM mapReduce pair missing value".to_owned())?
            .to_number();
        out.push((key, val));
    }
    Ok(out)
}

fn run_scenario(
    h: &Harness,
    scenario: &Scenario,
    out: &Path,
    persistent: bool,
) -> Result<String, String> {
    let name = scenario.name;
    match &scenario.kind {
        ScenarioKind::Run { source, openmp } => {
            write_sources(out, name, &[("main.c", source)]);
            let program = h
                .compile(name, &[("main.c", source)], *openmp)
                .map_err(|e| e.to_string())?;
            let stdout = program.run("").map_err(|e| e.to_string())?;
            Ok(format!("ran, {} bytes of output", stdout.len()))
        }
        ScenarioKind::Map { ring } => {
            let source = emit_map_openmp(ring).map_err(|e| e.to_string())?;
            write_sources(out, name, &[("map_program.c", &source)]);
            let inputs = map_inputs();
            let native = if persistent {
                let program = register_native_map(ring).map_err(|e| e.to_string())?;
                persistent_map(&program, &inputs)?
            } else {
                h.run_map(name, &source, &inputs)
                    .map_err(|e| e.to_string())?
            };
            let tiers = harness::oracle_map_tiers(ring, &inputs).map_err(|e| e.to_string())?;
            compare_values("native vs tree-walk", &native, &tiers.treewalk)?;
            compare_values("native vs bytecode", &native, &tiers.bytecode)?;
            let batch = tiers
                .batch
                .ok_or_else(|| "map ring unexpectedly not batchable".to_owned())?;
            compare_values("native vs batch", &native, &batch)?;
            let columnar = pooled_map(ring, &inputs, ColumnarPolicy::Auto, NativePolicy::Disabled)?;
            compare_values("native vs pooled columnar", &native, &columnar)?;
            let scalar_pool = pooled_map(
                ring,
                &inputs,
                ColumnarPolicy::Disabled,
                NativePolicy::Disabled,
            )?;
            compare_values("native vs pooled scalar", &native, &scalar_pool)?;
            if persistent {
                let tiled = persistent_pooled_equivalence(ring, &inputs)?;
                return Ok(format!(
                    "{} elements over 3 frames bit-for-bit across 4 tiers \
                     (+{tiled}-element chunk-routed ring_map)",
                    inputs.len()
                ));
            }
            Ok(format!(
                "{} elements bit-for-bit across 4 tiers (+2 pooled pipelines)",
                inputs.len()
            ))
        }
        ScenarioKind::MapReduce {
            mapper,
            reducer,
            rel_tol,
        } => {
            let program =
                emit_mapreduce_openmp_protocol(mapper, reducer).map_err(|e| e.to_string())?;
            write_sources(
                out,
                name,
                &[
                    ("kvp.h", &program.kvp_h),
                    ("mapred.c", &program.mapred_c),
                    ("driver.c", &program.driver_c),
                ],
            );
            let pairs = mapreduce_pairs(name);
            let native = if persistent {
                let compiled = h
                    .compile(
                        name,
                        &[
                            ("kvp.h", &program.kvp_h),
                            ("mapred.c", &program.mapred_c),
                            ("driver.c", &program.driver_c),
                        ],
                        true,
                    )
                    .map_err(|e| e.to_string())?;
                let worker_program = NativeProgram {
                    name: name.to_owned(),
                    binary: compiled.binary,
                    kind: WorkerKind::MapReduce,
                };
                // Two identical jobs through one warm worker: the second
                // frame proves no state survives between jobs.
                let first = native_pool()
                    .mapreduce_frame(&worker_program, &pairs)
                    .map_err(|e| format!("persistent mapreduce frame failed: {e}"))?;
                let second = native_pool()
                    .mapreduce_frame(&worker_program, &pairs)
                    .map_err(|e| format!("persistent mapreduce reframe failed: {e}"))?;
                compare_pairs("frame 2 vs frame 1", &second, &first, 0.0)?;
                first
            } else {
                h.run_mapreduce(name, &program, &pairs)
                    .map_err(|e| e.to_string())?
            };
            let reference =
                harness::reference_mapreduce(mapper, reducer, &pairs).map_err(|e| e.to_string())?;
            compare_pairs("native vs reference", &native, &reference, *rel_tol)?;
            let vm = vm_mapreduce(mapper, reducer, name, &pairs)?;
            compare_pairs("native vs VM mapReduce", &native, &vm, *rel_tol)?;
            Ok(format!(
                "{} records -> {} groups, native == reference == VM (rel tol {rel_tol:e})",
                pairs.len(),
                native.len()
            ))
        }
    }
}

fn finish_trace(trace: &Option<String>) {
    let Some(path) = trace else { return };
    let report = snap_trace::report();
    println!("\n{}", report.to_table());
    let spans = snap_trace::collect_spans();
    fs::write(path, snap_trace::chrome_trace_json(&spans)).expect("write trace");
    let report_path = format!("{path}.report.json");
    fs::write(&report_path, report.to_json()).expect("write report");
    println!(
        "wrote {} spans to {path} (report: {report_path})",
        spans.len()
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("codegen_check FAILED: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.trace.is_some() {
        snap_trace::set_enabled(true);
    }

    let harness = match Harness::detect() {
        Ok(h) => h,
        Err(e) => {
            if opts.require_toolchain {
                eprintln!("codegen_check FAILED: {e} (--require-toolchain)");
                return ExitCode::FAILURE;
            }
            println!("codegen_check SKIPPED: {e}");
            println!(
                "codegen.toolchain_missing = {}",
                snap_trace::well_known::CODEGEN_TOOLCHAIN_MISSING.get()
            );
            finish_trace(&opts.trace);
            return ExitCode::SUCCESS;
        }
    };
    let tc = harness.toolchain();
    println!(
        "toolchain: {} ({}), OpenMP {}",
        tc.cc,
        tc.version,
        if tc.openmp {
            "yes"
        } else {
            "no (single-thread fallback)"
        }
    );

    if opts.persistent {
        println!("mode: persistent (warm --serve workers, binary frames)");
    }

    let mut failures = 0u32;
    for scenario in harness::scenarios() {
        match run_scenario(&harness, &scenario, &opts.out, opts.persistent) {
            Ok(detail) => println!("PASS {:<24} {detail}", scenario.name),
            Err(detail) => {
                failures += 1;
                eprintln!("FAIL {:<24} {detail}", scenario.name);
                write_diff_report(&opts.out, scenario.name, &detail);
            }
        }
    }

    use snap_trace::well_known as wk;
    println!(
        "\ncodegen.compiles = {}, codegen.runs = {}, codegen.native_elems = {}",
        wk::CODEGEN_COMPILES.get(),
        wk::CODEGEN_RUNS.get(),
        wk::CODEGEN_NATIVE_ELEMS.get()
    );
    println!(
        "codegen.cache_hits = {}, codegen.cache_misses = {}",
        wk::CODEGEN_CACHE_HITS.get(),
        wk::CODEGEN_CACHE_MISSES.get()
    );
    println!(
        "codegen.worker_spawns = {}, codegen.worker_frames = {}, \
         codegen.worker_restarts = {}, codegen.worker_fallbacks = {}, \
         codegen.worker_reaped = {}",
        wk::CODEGEN_WORKER_SPAWNS.get(),
        wk::CODEGEN_WORKER_FRAMES.get(),
        wk::CODEGEN_WORKER_RESTARTS.get(),
        wk::CODEGEN_WORKER_FALLBACKS.get(),
        wk::CODEGEN_WORKER_REAPED.get()
    );
    finish_trace(&opts.trace);

    if failures > 0 {
        eprintln!(
            "codegen_check FAILED: {failures} scenario(s) failed; sources and diff reports under {}",
            opts.out.display()
        );
        return ExitCode::FAILURE;
    }
    println!("codegen_check passed: every scenario compiled, ran, and agreed");
    ExitCode::SUCCESS
}
