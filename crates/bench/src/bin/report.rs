//! The experiment report: regenerates every quantitative result in the
//! paper and prints paper-vs-measured tables.
//!
//! ```sh
//! cargo run --release -p bench --bin report            # all experiments
//! cargo run --release -p bench --bin report -- e3 e9   # a subset
//! ```

use std::time::{Duration, Instant};

use bench::*;
use snap_ast::builder::*;
use snap_ast::{Project, Script, SpriteDef, Value};
use snap_codegen::openmp;
use snap_data::{
    generate_noaa, generate_word_values, generate_words, reference_counts, simulate_cohort,
    tabulate, NoaaConfig, PAPER_TABLE,
};
use snap_vm::Vm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    println!("psnap experiment report — every figure/listing of the paper");
    println!("host: {} CPU(s) available\n", num_cpus());

    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    if want("e13") {
        e13();
    }
    if want("e14") {
        e14();
    }
}

fn e14() {
    header(
        "E14",
        "observability: snap-trace execution report for a traced run",
    );
    snap_trace::set_enabled(true);
    let ring = std::sync::Arc::new(snap_ast::Ring::reporter(mul(empty_slot(), num(10.0))));
    let items = number_items(10_000);
    let out = snap_parallel::parallel_map(ring, items, 4).expect("traced parallel map");
    assert_eq!(out.len(), 10_000);
    // Exercise the parallel shuffle too: word count over a corpus large
    // enough to cross the threshold.
    let mapper = std::sync::Arc::new(snap_ast::Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = std::sync::Arc::new(snap_ast::Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let words: Vec<Value> = generate_word_values(5_000, 7);
    snap_parallel::map_reduce(mapper, reducer, words, 4).expect("traced map_reduce");
    snap_trace::set_enabled(false);
    let report = snap_trace::report();
    for line in report.to_table().lines() {
        println!("  {line}");
    }
    println!();
}

fn e11() {
    header(
        "E11",
        "inter-node scaling (simulated cluster; paper sec. 6.3 future work)",
    );
    let items = number_items(4096);
    let base = snap_parallel::ClusterSpec {
        nodes: 1,
        cores_per_node: 4,
        compute_cost: 500,
        net_cost_per_item: 1,
        startup_cost: 2_000,
        ..snap_parallel::ClusterSpec::default()
    };
    println!("  compute-heavy items (compute 500, net 1, startup 2000 / node):");
    let rows = snap_parallel::strong_scaling_sweep(
        times_ten_ring(),
        items.clone(),
        &base,
        &[1, 2, 4, 8, 16, 32],
    )
    .unwrap();
    for (nodes, makespan, speedup) in rows {
        println!("    {nodes:>3} nodes: makespan {makespan:>8}  speedup {speedup:5.2}x");
    }
    println!("  network-bound items (compute 5, net 100):");
    let netty = snap_parallel::ClusterSpec {
        compute_cost: 5,
        net_cost_per_item: 100,
        ..base
    };
    let rows =
        snap_parallel::strong_scaling_sweep(times_ten_ring(), items, &netty, &[1, 2, 4, 8, 16, 32])
            .unwrap();
    for (nodes, makespan, speedup) in rows {
        println!("    {nodes:>3} nodes: makespan {makespan:>8}  speedup {speedup:5.2}x");
    }
    println!("  shape: compute-bound scales, network-bound saturates — the");
    println!("  crossover the cost model exposes.");
    println!();
}

fn e12() {
    header(
        "E12",
        "full Fig. 17 workflow: blocks -> OpenMP -> compile -> batch queue -> results",
    );
    let dir = std::env::temp_dir().join("psnap-report-wf");
    let Ok(pipeline) = snap_build::BuildPipeline::new(&dir) else {
        println!("  (cannot create build dir)");
        return;
    };
    if !pipeline.has_compiler() {
        println!("  (no C compiler; skipped)");
        return;
    }
    let dataset = generate_noaa(&NoaaConfig {
        stations: 5,
        years: 3,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    let program = openmp::emit_mapreduce_openmp(
        &openmp::climate_mapper(),
        &openmp::averaging_reducer(),
        &dataset.station_temp_pairs(),
    )
    .unwrap();
    let mut cluster = snap_build::BatchScheduler::new(8, snap_build::Policy::Backfill);
    // Some background load so the queue is visible.
    cluster.submit(snap_build::JobSpec {
        name: "background".into(),
        nodes: 8,
        walltime: 10,
        runtime: 10,
    });
    cluster.tick();
    match snap_build::run_on_cluster(
        &pipeline,
        &mut cluster,
        &program,
        &snap_build::BatchRequest::default(),
    ) {
        Ok(report) => {
            println!(
                "  submission script generated ({} lines, #SBATCH outline)",
                report.script.lines().count()
            );
            println!(
                "  queued {} tick(s) behind background load, state {:?}",
                report.queue_wait, report.state
            );
            if let Some((key, value)) = report.results.first() {
                println!("  collected result: {key} = {value:.3} C");
            }
        }
        Err(e) => println!("  workflow failed: {e}"),
    }
    println!();
}

/// E13 — the comparison the paper's self-assessment says it lacked time
/// for: "a comparison … between parallel Snap! and a text-based parallel
/// programming language with respect to performance and
/// programmability". One block script, three executions: the psnap VM,
/// the generated C (gcc -O2), and the generated Python.
fn e13() {
    header(
        "E13",
        "blocks vs text-based languages (the paper's unfinished comparison)",
    );
    let n = 200_000u64;
    // set total to 0; for i = 1 to n { change total by i }; say total
    let script = vec![
        set_var("total", num(0.0)),
        for_loop(
            "i",
            num(1.0),
            num(n as f64),
            vec![change_var("total", var("i"))],
        ),
        say(var("total")),
    ];
    let expected = (n * (n + 1) / 2).to_string();

    // (a) the psnap VM (warp: pure compute, no scheduler yields).
    let vm_script = vec![warp(script.clone())];
    let start = Instant::now();
    let mut vm =
        Vm::new(Project::new("e13").with_sprite(
            SpriteDef::new("S").with_script(snap_ast::Script::on_green_flag(vm_script)),
        ));
    vm.green_flag();
    vm.run_until_idle();
    let vm_time = start.elapsed();
    let vm_ok = vm.world.said() == vec![expected.as_str()];

    println!("  psnap VM (interpreted blocks): {vm_time:>10.2?}  correct: {vm_ok}");

    // (b) generated C, compiled -O2.
    let dir = std::env::temp_dir().join("psnap-e13");
    if let Ok(pipeline) = snap_build::BuildPipeline::new(&dir) {
        if pipeline.has_compiler() {
            match snap_codegen::emit_c_program(&script) {
                Ok(c_source) => {
                    pipeline.write_source("e13.c", &c_source).unwrap();
                    match pipeline.compile(&["e13.c"], "e13", false) {
                        Ok(binary) => {
                            let start = Instant::now();
                            let out = pipeline.run(&binary, &[]).unwrap_or_default();
                            let c_time = start.elapsed();
                            // C prints via %g (possibly scientific):
                            // compare numerically.
                            let c_ok =
                                out.trim().parse::<f64>().ok() == expected.parse::<f64>().ok();
                            println!(
                                "  generated C (gcc -O2)        : {c_time:>10.2?}  correct: {c_ok}  (incl. process startup)"
                            );
                            println!(
                                "  abstraction cost: blocks are {:.0}x slower than the C the same blocks generate",
                                vm_time.as_secs_f64() / c_time.as_secs_f64().max(1e-9)
                            );
                        }
                        Err(e) => println!("  C compile failed: {e}"),
                    }
                }
                Err(e) => println!("  C generation failed: {e}"),
            }
        }
    }

    // (c) generated Python.
    if let Ok(py_source) = snap_codegen::emit_python_program(&script) {
        let start = Instant::now();
        let out = std::process::Command::new("python3")
            .arg("-c")
            .arg(&py_source)
            .output();
        let py_time = start.elapsed();
        match out {
            Ok(out) if out.status.success() => {
                let printed = String::from_utf8_lossy(&out.stdout);
                let py_ok = printed.trim().parse::<f64>().ok() == expected.parse::<f64>().ok();
                println!(
                    "  generated Python (python3)   : {py_time:>10.2?}  correct: {py_ok}  (incl. interpreter startup)"
                );
            }
            _ => println!("  (python3 unavailable; skipped)"),
        }
    }
    println!(
        "  programmability: the block script is {} blocks; the generated C is {} lines.",
        snap_ast::Stmt::block_count(&script),
        snap_codegen::emit_c_program(&script)
            .map(|s| s.lines().count())
            .unwrap_or(0)
    );
    println!();
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn header(id: &str, title: &str) {
    println!("==== {id}: {title} ====");
}

fn eval_on_fresh_vm(expr: &snap_ast::Expr) -> Value {
    let mut vm = Vm::new(Project::new("r").with_sprite(SpriteDef::new("S")));
    snap_parallel::install(&mut vm);
    vm.eval_expr(Some("S"), expr).expect("expression evaluates")
}

fn e1() {
    header("E1", "sequential map block (Fig. 4/6)");
    let out = eval_on_fresh_vm(&map_over(
        ring_reporter(mul(empty_slot(), num(10.0))),
        number_list([3.0, 7.0, 8.0]),
    ));
    println!("  paper : map (()×10) over [3,7,8] -> [30, 70, 80]");
    println!("  ours  : {out}");
    println!();
}

fn e2() {
    header("E2", "parallelMap block (Fig. 5/6)");
    let out = eval_on_fresh_vm(&parallel_map_with_workers(
        ring_reporter(mul(empty_slot(), num(10.0))),
        number_list([3.0, 7.0, 8.0]),
        num(4.0),
    ));
    println!("  paper : parallelMap, 4 workers -> [30, 70, 80]");
    println!("  ours  : {out}");
    // Fig. 6's long list: first ten in/out pairs.
    let long = eval_on_fresh_vm(&parallel_map_over(
        ring_reporter(mul(empty_slot(), num(10.0))),
        numbers_from_to(num(1.0), num(100000.0)),
    ));
    let first: Vec<String> = long
        .as_list()
        .unwrap()
        .to_vec()
        .iter()
        .take(10)
        .map(Value::to_display_string)
        .collect();
    println!("  first ten of 100k -> [{}]", first.join(", "));
    println!();
}

fn e3() {
    header("E3", "concession stand (Figs. 7-10)");
    let seq = run_concession(false, 3);
    let par = run_concession_last_fill(true, 3);
    let ideal = {
        // warp removes the scheduler overhead: footnote 5's "expected 9".
        let project = Project::new("ideal")
            .with_global(
                "cups",
                snap_ast::Constant::List(vec!["a".into(), "b".into(), "c".into()]),
            )
            .with_sprite(SpriteDef::new("P").with_script(Script::on_green_flag(vec![
                snap_ast::Stmt::ResetTimer,
                warp(vec![for_each(
                    "cup",
                    var("cups"),
                    vec![repeat(num(3.0), vec![wait(num(1.0))])],
                )]),
                say(timer()),
            ])));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        vm.world.said()[0].parse::<u64>().unwrap()
    };
    println!("  mode                   paper   ours");
    println!("  sequential (observed)     12     {seq}");
    println!("  sequential (expected)      9     {ideal}   (warp = no scheduler overhead)");
    println!("  parallel                   3     {par}");
    println!(
        "  speedup                  4.0x   {:.1}x",
        seq as f64 / par.max(1) as f64
    );
    println!();
}

fn e4() {
    header("E4", "MapReduce word count (Figs. 11-12)");
    let sentence = "the quick brown fox jumps over the lazy dog the end";
    let out = eval_on_fresh_vm(&map_reduce(
        ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
        ring_reporter_with(
            vec!["vals"],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ),
        split(text(sentence), text(" ")),
    ));
    println!("  input : {sentence:?}");
    println!("  output: {out}");
    // Scale check against the reference counter.
    let n = 50_000;
    let words = generate_words(n, 42);
    let reference = reference_counts(&words);
    let result = snap_parallel::map_reduce(
        word_count_mapper(),
        summing_reducer(),
        generate_word_values(n, 42),
        4,
    )
    .unwrap();
    let agree = result.len() == reference.len()
        && result.iter().zip(&reference).all(|(pair, (w, c))| {
            let pair = pair.as_list().unwrap();
            pair.item(1).unwrap().to_display_string() == *w
                && pair.item(2).unwrap().to_number() as u64 == *c
        });
    println!(
        "  {n}-word Zipf corpus: {} unique words, agrees with reference: {agree}",
        reference.len()
    );
    println!();
}

fn e5() {
    header("E5", "climate MapReduce (Fig. 13, 18-20)");
    let config = NoaaConfig {
        stations: 50,
        years: 40,
        readings_per_year: 52,
        ..NoaaConfig::default()
    };
    let dataset = generate_noaa(&config);
    let out = snap_parallel::map_reduce(
        climate_mapper(),
        averaging_reducer(),
        dataset.temps_f_values(),
        4,
    )
    .unwrap();
    let avg = out[0].as_list().unwrap().item(2).unwrap().to_number();
    let reference = snap_data::f_to_c(dataset.mean_f());
    println!(
        "  synthetic NOAA dataset: {} stations x {} years = {} readings",
        config.stations,
        config.years,
        dataset.readings.len()
    );
    println!("  mapReduce mean: {avg:.3} C   analytic reference: {reference:.3} C");
    let yearly = dataset.yearly_means_f();
    let first = snap_data::f_to_c(yearly.first().unwrap().1);
    let last = snap_data::f_to_c(yearly.last().unwrap().1);
    println!(
        "  warming signal recovered: {:+.2} C over {} years (configured {} F/decade)",
        last - first,
        config.years,
        config.warming_f_per_decade
    );
    println!();
}

fn e6() {
    header("E6", "hello world, C vs OpenMP (Listings 3-4)");
    println!("  listing 3 (sequential) and listing 4 (OpenMP) regenerated;");
    let delta = openmp::LISTING4_OPENMP_HELLO.lines().count() as i64
        - openmp::LISTING3_SEQUENTIAL_HELLO.lines().count() as i64;
    println!("  difference: {delta} lines (pragma + include + braces) — the paper's point");
    run_generated(openmp::OPENMP_HELLO_RUNNABLE);
    println!();
}

fn run_generated(source: &str) {
    let dir = std::env::temp_dir().join("psnap-report");
    let pipeline = match snap_build::BuildPipeline::new(&dir) {
        Ok(p) => p,
        Err(_) => return,
    };
    if !pipeline.has_compiler() {
        println!("  (no C compiler; compile-and-run skipped)");
        return;
    }
    pipeline.write_source("prog.c", source).unwrap();
    match pipeline.compile(&["prog.c"], "prog", true) {
        Ok(binary) => match pipeline.run(&binary, &[]) {
            Ok(out) => println!(
                "  compiled & ran: {} thread greetings",
                out.matches("hello(").count()
            ),
            Err(e) => println!("  run failed: {e}"),
        },
        Err(e) => println!("  compile failed: {e}"),
    }
}

fn e7() {
    header("E7", "map example -> C (Fig. 15-16, Listing 5)");
    let code = snap_codegen::emit_listing5();
    println!("  generated {} lines; key fragments:", code.lines().count());
    for fragment in [
        "int a[] = {3, 7, 8};",
        "node_t *b = (node_t *) malloc(sizeof(node_t));",
        "int i; for (i = 1; i <= len; i++){",
        "append((a[i - 1] * 10), b);",
    ] {
        println!(
            "    {} {}",
            if code.contains(fragment) {
                "OK "
            } else {
                "MISS"
            },
            fragment
        );
    }
    println!();
}

fn e8() {
    header("E8", "MapReduce -> OpenMP (Listings 6-7 + kvp.h)");
    let dataset = generate_noaa(&NoaaConfig {
        stations: 10,
        years: 5,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    let program = openmp::emit_mapreduce_openmp(
        &openmp::climate_mapper(),
        &openmp::averaging_reducer(),
        &dataset.station_temp_pairs(),
    )
    .unwrap();
    println!(
        "  generated kvp.h ({} lines), mapred.c ({}), driver.c ({})",
        program.kvp_h.lines().count(),
        program.mapred_c.lines().count(),
        program.driver_c.lines().count()
    );
    let dir = std::env::temp_dir().join("psnap-report-mr");
    if let Ok(pipeline) = snap_build::BuildPipeline::new(&dir) {
        if pipeline.has_compiler() {
            match pipeline.build_and_run_mapreduce(&program) {
                Ok(results) => {
                    let vm_side = snap_parallel::map_reduce(
                        climate_mapper(),
                        averaging_reducer(),
                        dataset.temps_f_values(),
                        4,
                    )
                    .unwrap();
                    let vm_avg = vm_side[0].as_list().unwrap().item(2).unwrap().to_number();
                    println!(
                        "  OpenMP binary: {} = {:.3} C | in-VM blocks: {:.3} C | agree: {}",
                        results[0].0,
                        results[0].1,
                        vm_avg,
                        (results[0].1 - vm_avg).abs() < 0.1
                    );
                }
                Err(e) => println!("  build failed: {e}"),
            }
        } else {
            println!("  (no C compiler; compile-and-run skipped)");
        }
    }
    println!();
}

fn e9() {
    header("E9", "WCD survey (Section 5)");
    let table = tabulate(&simulate_cohort(100, 2016));
    println!("  question                         paper   ours");
    println!(
        "  career: computer science           29%    {:.0}%",
        table.career_cs_pct
    );
    println!(
        "  career: something else             54%    {:.0}%",
        table.career_other_pct
    );
    println!(
        "  career: no answer                  17%    {:.0}%",
        table.career_none_pct
    );
    println!(
        "  CS benefits non-CS career          57%    {:.0}%",
        table.benefit_pct
    );
    println!(
        "  impression: more favorable         86%    {:.0}%",
        table.more_favorable_pct
    );
    println!(
        "  impression: less favorable          9%    {:.0}%",
        table.less_favorable_pct
    );
    println!(
        "  impression: same / no opinion       6%    {:.0}%   (paper's 86+9+6 = 101, rounding)",
        table.same_pct
    );
    let _ = PAPER_TABLE;
    println!();
}

fn e10() {
    header(
        "E10",
        "worker scaling & crossover (ablation of Fig. 5's worker input)",
    );
    println!("  latency-bound items (2 ms simulated service time, 48 items):");
    let items = number_items(48);
    let ring = times_ten_ring();
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let _ = latency_map(
            ring.clone(),
            items.clone(),
            workers,
            Duration::from_millis(2),
        );
        let elapsed = start.elapsed();
        let baseline = *base.get_or_insert(elapsed);
        println!(
            "    {workers} worker(s): {elapsed:>10.2?}  speedup {:.2}x",
            baseline.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!("  compute-bound items (expensive ring, wall time; on a single-CPU");
    println!("  host the speedup is ~1x — see EXPERIMENTS.md on this gate):");
    let ring = expensive_ring(200);
    let items = number_items(512);
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let out = snap_parallel::parallel_map(ring.clone(), items.clone(), workers).unwrap();
        let elapsed = start.elapsed();
        let baseline = *base.get_or_insert(elapsed);
        println!(
            "    {workers} worker(s): {elapsed:>10.2?}  speedup {:.2}x  ({} results)",
            baseline.as_secs_f64() / elapsed.as_secs_f64(),
            out.len()
        );
    }
    // Crossover: tiny items where worker overhead dominates.
    println!("  overhead crossover (per-call worker spawn vs item count, x10 ring):");
    for n in [1usize, 10, 100, 10_000] {
        let items = number_items(n);
        let t_seq = {
            let s = Instant::now();
            let _ = snap_parallel::parallel_map(times_ten_ring(), items.clone(), 1).unwrap();
            s.elapsed()
        };
        let t_par = {
            let s = Instant::now();
            let _ = snap_parallel::parallel_map(times_ten_ring(), items, 4).unwrap();
            s.elapsed()
        };
        println!(
            "    n={n:<6} 1 worker {t_seq:>10.2?}   4 workers {t_par:>10.2?}   winner: {}",
            if t_par < t_seq {
                "parallel"
            } else {
                "sequential (overhead)"
            }
        );
    }
    println!();
}
