//! A3: scheduler time-slice ablation — throughput of a compute script
//! under different slice lengths (interactive fairness vs speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::compute_script_project;
use snap_vm::{Vm, VmConfig};

fn bench_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_time_slice");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for slice_ops in [1u32, 8, 64, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(slice_ops),
            &slice_ops,
            |b, &slice_ops| {
                b.iter(|| {
                    let mut vm = Vm::with_config(
                        compute_script_project(2_000),
                        VmConfig {
                            slice_ops,
                            ..VmConfig::default()
                        },
                    );
                    vm.green_flag();
                    black_box(vm.run_until_idle())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_slice);
criterion_main!(benches);
