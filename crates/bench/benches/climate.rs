//! E5 (Fig. 13): the climate MapReduce over the synthetic NOAA data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{averaging_reducer, climate_mapper};
use snap_data::{generate_noaa, NoaaConfig};

fn bench_climate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_climate");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for (stations, years) in [(10usize, 5u32), (50, 20)] {
        let dataset = generate_noaa(&NoaaConfig {
            stations,
            years,
            readings_per_year: 12,
            ..NoaaConfig::default()
        });
        let items = dataset.temps_f_values();
        let label = format!("{}x{}", stations, years);
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), &label),
                &items,
                |b, items| {
                    b.iter(|| {
                        black_box(
                            snap_parallel::map_reduce(
                                climate_mapper(),
                                averaging_reducer(),
                                items.clone(),
                                workers,
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_climate);
criterion_main!(benches);
