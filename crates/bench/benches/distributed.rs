//! E11: inter-node scaling on the simulated cluster (cost model; real
//! result computation). Criterion measures the *execution* cost of the
//! simulation itself; the modeled makespans are printed by `report e11`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{number_items, times_ten_ring};
use snap_parallel::{distributed_map, ClusterSpec};

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_distributed_sim");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    let items = number_items(10_000);
    for nodes in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                black_box(
                    distributed_map(
                        times_ten_ring(),
                        items.clone(),
                        &ClusterSpec {
                            nodes,
                            ..ClusterSpec::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
