//! E10: worker-count scaling and the sequential/parallel crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bench::{latency_map, number_items, times_ten_ring};

fn bench_latency_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_latency_scaling");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    let items = number_items(16);
    for workers in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(latency_map(
                        times_ten_ring(),
                        items.clone(),
                        workers,
                        Duration::from_millis(1),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_crossover(c: &mut Criterion) {
    // Tiny cheap items: worker spawn/copy overhead should make the
    // sequential path win below a crossover size.
    let mut group = c.benchmark_group("e10_crossover");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for n in [1usize, 10, 100, 1_000] {
        let items = number_items(n);
        group.bench_with_input(BenchmarkId::new("seq", n), &items, |b, items| {
            b.iter(|| {
                black_box(snap_parallel::parallel_map(times_ten_ring(), items.clone(), 1).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("par4", n), &items, |b, items| {
            b.iter(|| {
                black_box(snap_parallel::parallel_map(times_ten_ring(), items.clone(), 4).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latency_scaling, bench_crossover);
criterion_main!(benches);
