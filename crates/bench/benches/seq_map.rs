//! E1 (Fig. 4/6): the sequential `map` block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{number_items, times_ten_ring};
use snap_ast::PureFn;

fn bench_seq_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_seq_map");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let f = PureFn::compile(times_ten_ring()).unwrap();
    for n in [10usize, 100, 1_000, 10_000] {
        let items = number_items(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| {
                let out: Vec<_> = items
                    .iter()
                    .map(|v| f.call1(black_box(v.clone())).unwrap())
                    .collect();
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_map);
criterion_main!(benches);
