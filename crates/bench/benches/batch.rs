//! A4: batch-scheduler policy ablation — FIFO vs EASY backfill on a
//! mixed workload (wide long jobs + narrow short jobs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snap_build::{BatchScheduler, JobSpec, Policy};

fn run_workload(policy: Policy) -> (f64, u64) {
    let mut s = BatchScheduler::new(16, policy);
    // A stream of jobs: every 4th is wide (12 nodes), the rest narrow.
    for i in 0..64u64 {
        let wide = i % 4 == 0;
        s.submit(JobSpec {
            name: format!("job{i}"),
            nodes: if wide { 12 } else { 2 },
            walltime: if wide { 20 } else { 5 },
            runtime: if wide { 15 } else { 3 },
        });
    }
    let ticks = s.run_to_completion(1_000_000);
    (s.mean_wait(), ticks)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_batch_policy");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for (name, policy) in [("fifo", Policy::Fifo), ("backfill", Policy::Backfill)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| black_box(run_workload(policy)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
