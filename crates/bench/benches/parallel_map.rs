//! E2 (Fig. 5/6): the `parallelMap` block across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bench::{latency_map, number_items, times_ten_ring};

fn bench_parallel_map_compute(c: &mut Criterion) {
    // Compute-bound: honest wall time (≈ flat on a single-core host).
    let mut group = c.benchmark_group("e2_parallel_map_compute");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    let items = number_items(10_000);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(
                        snap_parallel::parallel_map(times_ten_ring(), items.clone(), workers)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_map_latency(c: &mut Criterion) {
    // Latency-bound: worker scaling shows even with one CPU (the shape
    // the paper's Fig. 5 worker input is about).
    let mut group = c.benchmark_group("e2_parallel_map_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    let items = number_items(24);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(latency_map(
                        times_ten_ring(),
                        items.clone(),
                        workers,
                        Duration::from_millis(1),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_map_compute,
    bench_parallel_map_latency
);
criterion_main!(benches);
