//! A10: persistent native workers against spawn-per-call and the
//! in-process batch tier, two ring depths × two dataset sizes.
//!
//! Three ways to run the same flat `f64` chunk through a ring:
//!
//! * `persistent_*` — one warm `--serve` worker per compiled program
//!   ([`native_pool`]): the timed loop is a single binary frame
//!   (header + raw `f64` lanes both ways) against a process that was
//!   spawned once. This is the tier `NativePolicy::Auto` routes to.
//! * `spawn_*` — the same compiled binary, but a fresh process per
//!   invocation ([`NativeWorker::spawn`] + one frame + drop): what the
//!   native tier costs without the pool. The persistent/spawn gap is
//!   the amortized spawn overhead.
//! * `batch_*` — the in-process columnar interpreter
//!   (`PureFn::eval_batch`) on the identical input slice: the tier the
//!   worker has to beat to earn its place in the ladder.
//!
//! The crossover this records: a deep ring (14 chained float ops) is
//! compute-bound enough that the compiled loop wins even after paying
//! pipe I/O — `persistent_deep_120000` is the gated number — while the
//! shallow climate ring stays cheaper in-process at every size (frame
//! I/O dwarfs two float ops). Spawn-per-call loses everywhere by
//! design; its distance from `persistent_*` is the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::pure::compile_cached;
use snap_ast::{Expr, Ring};
use snap_codegen::worker::{native_pool, register_native_map, NativeWorker};

const SIZES: [usize; 2] = [12_000, 120_000];

/// The shallow climate mapper: `(x × 1.8) + 32` — two float ops.
fn shallow_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        add(mul(var("x"), num(1.8)), num(32.0)),
    ))
}

/// A deep dependent chain of 14 float ops (mul/add/sub/div cycle):
/// enough arithmetic per element that compiled code pulls ahead of the
/// interpreter's dispatch-per-instruction lane loops.
fn deep_chain(depth: usize) -> Expr {
    let mut e = var("x");
    for i in 0..depth {
        e = match i % 4 {
            0 => mul(e, num(1.0001)),
            1 => add(e, num(0.25)),
            2 => sub(e, num(0.125)),
            _ => div(e, num(1.0002)),
        };
    }
    e
}

fn deep_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(vec!["x".into()], deep_chain(14)))
}

fn bench_native_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("a10_native_amortized");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    for (label, ring) in [("shallow", shallow_ring()), ("deep", deep_ring())] {
        let f = compile_cached(&ring).expect("ring compiles to bytecode");
        // Compile once outside every timed loop (content-addressed
        // cache); a missing C toolchain skips the native rows only.
        let program = register_native_map(&ring)
            .map_err(|e| eprintln!("a10_native_amortized: skipping native {label} rows: {e}"))
            .ok();

        for n in SIZES {
            let inputs: Vec<f64> = (0..n).map(|i| i as f64 * 0.001 + 1.0).collect();
            group.throughput(Throughput::Elements(n as u64));

            let batch_inputs = inputs.clone();
            let batch_f = f.clone();
            group.bench_function(
                BenchmarkId::from_parameter(format!("batch_{label}_{n}")),
                move |b| {
                    let mut out = Vec::new();
                    b.iter(|| {
                        out.clear();
                        batch_f.eval_batch(black_box(&batch_inputs), &mut out);
                        black_box(out.len())
                    })
                },
            );

            let Some(program) = program.clone() else {
                continue;
            };

            // Warm the pool so the first timed frame hits a live worker.
            native_pool()
                .map_frame(&program, &inputs[..64.min(n)])
                .expect("warm worker answers");
            let frame_inputs = inputs.clone();
            let frame_program = program.clone();
            group.bench_function(
                BenchmarkId::from_parameter(format!("persistent_{label}_{n}")),
                move |b| {
                    b.iter(|| {
                        let out = native_pool()
                            .map_frame(&frame_program, black_box(&frame_inputs))
                            .expect("persistent frame");
                        black_box(out.len())
                    })
                },
            );

            let spawn_inputs = inputs;
            group.bench_function(
                BenchmarkId::from_parameter(format!("spawn_{label}_{n}")),
                move |b| {
                    b.iter(|| {
                        let mut worker =
                            NativeWorker::spawn(&program).expect("spawn-per-call worker");
                        let out = worker
                            .map_frame(black_box(&spawn_inputs))
                            .expect("spawned frame");
                        black_box(out.len())
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_native_amortized);
criterion_main!(benches);
