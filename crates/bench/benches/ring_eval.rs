//! A5: per-item ring evaluation — the acceptance bench for the ring
//! bytecode compiler. Every prior bench measured *scheduling*; this one
//! measures the work each worker performs per item.
//!
//! The same pure numeric ring (a small polynomial like the paper's
//! image-kernel and climate inner loops) is evaluated over a 1 000-item
//! batch three ways:
//!
//! * `bytecode_fastpath` — `PureFn::call` on a numeric ring: the
//!   unboxed `f64` register program from `snap_ast::bytecode`;
//! * `treewalk_oracle` — `PureFn::call_treewalk` on the *same* compiled
//!   ring: the reference tree-walking evaluator the fast path must beat
//!   by ≥ 2× (the PR's acceptance bar);
//! * `boxed_bytecode` — `PureFn::call` on a list-producing ring (the
//!   word-count mapper), which lowers to boxed `Value` bytecode; its
//!   oracle `boxed_treewalk` rides along for the same comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::pure::CompiledStrategy;
use snap_ast::{PureFn, Ring, Value};

const ITEMS: usize = 1_000;

/// `(( ) × 2 + ( ) mod 7) ÷ 3` — a numeric ring with enough operator
/// nodes that per-node dispatch cost dominates, like the paper's
/// image-kernel and climate map bodies.
fn numeric_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter(div(
        add(mul(empty_slot(), num(2.0)), modulo(empty_slot(), num(7.0))),
        num(3.0),
    )))
}

/// The word-count mapper `[w, 1]` — lowers to boxed bytecode (the
/// result is a list, so the numeric pass declines).
fn list_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

fn number_inputs() -> Vec<Value> {
    (0..ITEMS).map(|n| Value::Number(n as f64)).collect()
}

fn bench_ring_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_ring_eval");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(30);
    group.throughput(Throughput::Elements(ITEMS as u64));

    let numeric = PureFn::compile(numeric_ring()).expect("numeric ring compiles");
    assert_eq!(
        numeric.strategy(),
        CompiledStrategy::Numeric,
        "bench ring must take the numeric fast path"
    );
    let items = number_inputs();

    {
        let f = numeric.clone();
        let items = items.clone();
        group.bench_function("bytecode_fastpath", move |b| {
            b.iter(|| {
                for item in &items {
                    black_box(f.call(std::slice::from_ref(black_box(item))).unwrap());
                }
            })
        });
    }
    {
        let f = numeric.clone();
        let items = items.clone();
        group.bench_function("treewalk_oracle", move |b| {
            b.iter(|| {
                for item in &items {
                    black_box(
                        f.call_treewalk(std::slice::from_ref(black_box(item)))
                            .unwrap(),
                    );
                }
            })
        });
    }

    let boxed = PureFn::compile(list_ring()).expect("list ring compiles");
    assert_eq!(boxed.strategy(), CompiledStrategy::Bytecode);
    let words: Vec<Value> = (0..ITEMS)
        .map(|n| Value::text(format!("w{}", n % 97)))
        .collect();
    {
        let f = boxed.clone();
        let words = words.clone();
        group.bench_function("boxed_bytecode", move |b| {
            b.iter(|| {
                for word in &words {
                    black_box(f.call(std::slice::from_ref(black_box(word))).unwrap());
                }
            })
        });
    }
    {
        let f = boxed;
        group.bench_function("boxed_treewalk", move |b| {
            b.iter(|| {
                for word in &words {
                    black_box(
                        f.call_treewalk(std::slice::from_ref(black_box(word)))
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_eval);
criterion_main!(benches);
