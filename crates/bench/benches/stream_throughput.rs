//! A8: streaming pipeline throughput vs the batch-restart loop.
//!
//! The same chunked word-count traffic runs two ways: as one streaming
//! [`Pipeline`] (map → windowed reduce-by-key, window = chunk) over the
//! whole corpus, and as the pre-streaming alternative — a fresh
//! `mapReduce` call per chunk. Each batch call re-pays pipeline startup
//! (two pool scatters, defensive input clones, result reassembly), so
//! the streaming tier's advantage is overhead elimination: on the CI
//! host the target is ≥2× items/sec at bounded memory (the stream's
//! peak RSS is set by channel capacity × block size, not corpus size).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_data::generate_words;
use snap_parallel::{map_reduce, Pipeline, StreamConfig};

const WORDS: usize = 20_000;
/// Items per arriving chunk: small enough that per-call startup
/// dominates the batch-restart loop, as it does for live traffic.
const CHUNK: usize = 16;
const WORKERS: usize = 4;

fn mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

fn reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ))
}

fn bench_stream_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("a8_stream_throughput");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(WORDS as u64));

    let items: Vec<Value> = generate_words(WORDS, 42)
        .into_iter()
        .map(Value::from)
        .collect();

    // One long-lived pipeline over the whole corpus; each CHUNK-pair
    // window reduces as its pairs arrive.
    {
        let items = items.clone();
        group.bench_function("streaming", move |b| {
            let pipeline = Pipeline::new(StreamConfig {
                block_items: CHUNK,
                ..Default::default()
            })
            .map(mapper())
            .reduce_by_key(reducer(), CHUNK);
            b.iter(|| {
                let mut out = 0usize;
                let stats = pipeline
                    .run_each(black_box(items.clone()), |v| {
                        black_box(&v);
                        out += 1;
                    })
                    .unwrap();
                assert_eq!(stats.items_in, WORDS as u64);
                black_box(out)
            })
        });
    }

    // The restart loop: a full mapReduce per arriving chunk.
    {
        let items = items.clone();
        group.bench_function("batch_restart", move |b| {
            b.iter(|| {
                let mut out = 0usize;
                for chunk in items.chunks(CHUNK) {
                    out += map_reduce(mapper(), reducer(), black_box(chunk.to_vec()), WORKERS)
                        .unwrap()
                        .len();
                }
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
