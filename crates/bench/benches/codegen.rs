//! E6–E8: code-mapping throughput — template filling and whole-program
//! emission (generation only; compilation is exercised in tests).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snap_codegen::openmp::{averaging_reducer, climate_mapper, emit_mapreduce_openmp};
use snap_codegen::{emit_listing5, Template};

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(30);
    group.bench_function("template_fill", |b| {
        let t = Template::new("for (int <#1> = 0; <#1> < <#2>; <#1>++) { <#3> }");
        let fills = vec!["i".to_string(), "100".to_string(), "body();".to_string()];
        b.iter(|| black_box(t.fill(&fills)))
    });
    group.bench_function("emit_listing5", |b| b.iter(|| black_box(emit_listing5())));
    let dataset: Vec<(String, f64)> = (0..1000)
        .map(|i| (format!("ST{:03}", i % 10), 50.0 + (i % 40) as f64))
        .collect();
    group.bench_function("emit_openmp_mapreduce_1k_rows", |b| {
        b.iter(|| {
            black_box(
                emit_mapreduce_openmp(&climate_mapper(), &averaging_reducer(), &dataset).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
