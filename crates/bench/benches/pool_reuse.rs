//! Pool-reuse ablation: the acceptance bench for the persistent pooled
//! executor. Runs the same 1 000-item `parallelMap` of a cheap ring
//! (`(( ) × 10)`) under both execution modes:
//!
//! * `pooled` — the shared process-wide `WorkerPool` (threads created
//!   once, reused for every call);
//! * `spawn_per_call` — the paper-faithful Parallel.js behaviour, four
//!   fresh OS threads per map, joined before returning.
//!
//! On a cheap ring the per-item work is tiny, so the per-call thread
//! spawn/join tax dominates `spawn_per_call`; the pooled mode pays only
//! the channel send + wait-group handshake.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::{empty_slot, mul, num};
use snap_ast::{Ring, Value};
use snap_workers::{ring_map, ExecMode, RingMapOptions};

const ITEMS: usize = 1_000;
const WORKERS: usize = 4;

fn cheap_ring() -> Arc<Ring> {
    // (( ) × 10) — the cheapest useful reporter ring.
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

fn inputs() -> Vec<Value> {
    (0..ITEMS).map(|n| Value::from(n as f64)).collect()
}

fn bench_pool_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_reuse");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    group.throughput(Throughput::Elements(ITEMS as u64));

    let ring = cheap_ring();
    let items = inputs();

    for (name, exec) in [
        ("pooled", ExecMode::Pooled),
        ("spawn_per_call", ExecMode::SpawnPerCall),
    ] {
        let ring = ring.clone();
        let items = items.clone();
        group.bench_function(name, move |b| {
            b.iter(|| {
                let options = RingMapOptions {
                    workers: WORKERS,
                    exec,
                    ..RingMapOptions::default()
                };
                black_box(ring_map(ring.clone(), black_box(items.clone()), options).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_reuse);
criterion_main!(benches);
