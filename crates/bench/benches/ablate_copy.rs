//! A2: structured-clone isolation ablation — what the Web-Worker copy
//! semantics cost versus shared storage, by payload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_workers::{ring_map, Isolation, RingMapOptions};

fn nested_items(count: usize, payload: usize) -> Vec<Value> {
    (0..count)
        .map(|_| Value::list((0..payload).map(|i| Value::Number(i as f64)).collect()))
        .collect()
}

fn bench_isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_copy_vs_share");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    // The ring sums its input list: reads the whole payload.
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["xs".into()],
        combine_using(var("xs"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    for payload in [10usize, 100, 1_000] {
        let items = nested_items(64, payload);
        for (name, isolation) in [("copy", Isolation::Copy), ("share", Isolation::Share)] {
            group.bench_with_input(BenchmarkId::new(name, payload), &items, |b, items| {
                b.iter(|| {
                    black_box(
                        ring_map(
                            ring.clone(),
                            items.clone(),
                            RingMapOptions {
                                workers: 4,
                                isolation,
                                ..Default::default()
                            },
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_isolation);
criterion_main!(benches);
