//! A9: the native (compiled C/OpenMP) tier against the columnar batch
//! tier on the climate map (°F → °C over synthetic NOAA readings).
//!
//! * `native_openmp` — run the cached codegen binary over the dataset
//!   via the stdin/stdout line protocol. The compile happens once
//!   outside the timed loop (content-addressed cache), so the measured
//!   cost is process spawn + protocol encode/decode + the native loop:
//!   the real end-to-end price of escaping the VM per invocation.
//! * `batch_tier` — the same ring through the pooled columnar
//!   `ring_map` pipeline (`ColumnarPolicy::Auto`, flat `f64` lanes).
//!
//! On small inputs the batch tier wins (no exec/process overhead);
//! the native tier amortizes only on much larger datasets. Recording
//! both under `a9_native_vs_batch` makes that crossover a tracked
//! number instead of a claim.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_codegen::harness::Harness;
use snap_codegen::openmp::emit_map_openmp;
use snap_data::{generate_noaa, NoaaConfig};
use snap_workers::{ring_map, ColumnarPolicy, RingMapOptions};

const WORKERS: usize = 4;

/// The climate mapper ring: `(5 × (t − 32)) / 9`.
fn climate_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ))
}

fn inputs() -> Vec<f64> {
    let dataset = generate_noaa(&NoaaConfig {
        stations: 25,
        years: 4,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    dataset.readings.iter().map(|r| r.temp_f).collect()
}

fn bench_native_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("a9_native_vs_batch");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);

    let ring = climate_ring();
    let flat = inputs();
    group.throughput(Throughput::Elements(flat.len() as u64));

    // Native: compile once (cached), then time run-per-invocation.
    if let Ok(harness) = Harness::detect() {
        let source = emit_map_openmp(&ring).expect("climate ring translates");
        // Prime the compile cache so the timed loop measures runs only.
        harness
            .run_map("bench_climate_map", &source, &flat[..1])
            .expect("native climate map compiles and runs");
        let flat_native = flat.clone();
        group.bench_function("native_openmp", move |b| {
            b.iter(|| {
                let out = harness
                    .run_map("bench_climate_map", &source, black_box(&flat_native))
                    .expect("native run");
                black_box(out.len())
            })
        });
    } else {
        eprintln!("a9_native_vs_batch: no C toolchain, skipping native_openmp");
    }

    let boxed: Vec<Value> = flat.iter().map(|&x| Value::Number(x)).collect();
    group.bench_function("batch_tier", move |b| {
        b.iter(|| {
            let out = ring_map(
                Arc::clone(&ring),
                black_box(boxed.clone()),
                RingMapOptions {
                    workers: WORKERS,
                    columnar: ColumnarPolicy::Auto,
                    ..RingMapOptions::default()
                },
            )
            .expect("batch tier run");
            black_box(out.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_native_vs_batch);
criterion_main!(benches);
