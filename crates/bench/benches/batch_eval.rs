//! A6: the columnar batch tier — eval_batch against the per-element
//! fast path, and the columnar map pipeline against per-element calls.
//!
//! * `a6_batch_eval` isolates the evaluator: the a5 numeric ring
//!   (`(( ) × 2 + ( ) mod 7) ÷ 3`) over the same 1 000-element batch,
//!   once via `eval_batch` (instruction-outer lane loops, no per-element
//!   dispatch) and once via per-element `PureFn::call` — the PR 5
//!   baseline it must beat by ≥ 5×.
//! * `a6_columnar_map` measures the whole pipeline on the climate
//!   workload: a numeric `parallelMap` over synthetic NOAA readings with
//!   the columnar tier on (`ColumnarPolicy::Auto`, flat `f64` chunks)
//!   versus off (`Disabled`, boxed per-element calls).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::pure::CompiledStrategy;
use snap_ast::{PureFn, Ring, Value};
use snap_data::{generate_noaa, NoaaConfig};
use snap_parallel::parallel_map_with_options;
use snap_workers::{ColumnarPolicy, RingMapOptions};

const ITEMS: usize = 1_000;

/// The a5 bench ring, unchanged, so `a6_batch_eval/per_element_fastpath`
/// is directly comparable to `a5_ring_eval/bytecode_fastpath`.
fn numeric_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter(div(
        add(mul(empty_slot(), num(2.0)), modulo(empty_slot(), num(7.0))),
        num(3.0),
    )))
}

fn bench_batch_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("a6_batch_eval");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(30);
    group.throughput(Throughput::Elements(ITEMS as u64));

    let f = PureFn::compile(numeric_ring()).expect("numeric ring compiles");
    assert_eq!(f.strategy(), CompiledStrategy::Numeric);
    assert!(f.is_batchable(), "bench ring must be batchable");
    let flat: Vec<f64> = (0..ITEMS).map(|n| n as f64).collect();
    let boxed: Vec<Value> = flat.iter().map(|&x| Value::Number(x)).collect();

    {
        let f = f.clone();
        let flat = flat.clone();
        group.bench_function("eval_batch", move |b| {
            let mut out = Vec::with_capacity(ITEMS);
            b.iter(|| {
                out.clear();
                assert!(f.eval_batch(black_box(&flat), &mut out));
                black_box(out.last().copied())
            })
        });
    }
    {
        group.bench_function("per_element_fastpath", move |b| {
            b.iter(|| {
                for item in &boxed {
                    black_box(f.call(std::slice::from_ref(black_box(item))).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_columnar_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("a6_columnar_map");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);

    // The climate workload: °F → °C over synthetic NOAA readings
    // (10 stations × 10 years × 52 weekly readings = 5 200 items).
    let temps = generate_noaa(&NoaaConfig {
        stations: 10,
        years: 10,
        readings_per_year: 52,
        ..NoaaConfig::default()
    })
    .temps_f_values();
    group.throughput(Throughput::Elements(temps.len() as u64));
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ));
    let options = |columnar| RingMapOptions {
        workers: 4,
        columnar,
        ..Default::default()
    };

    {
        let ring = ring.clone();
        let temps = temps.clone();
        group.bench_function("columnar_on", move |b| {
            b.iter(|| {
                black_box(
                    parallel_map_with_options(
                        ring.clone(),
                        temps.clone(),
                        options(ColumnarPolicy::Auto),
                    )
                    .unwrap(),
                )
            })
        });
    }
    {
        group.bench_function("columnar_off", move |b| {
            b.iter(|| {
                black_box(
                    parallel_map_with_options(
                        ring.clone(),
                        temps.clone(),
                        options(ColumnarPolicy::Disabled),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_eval, bench_columnar_map);
criterion_main!(benches);
