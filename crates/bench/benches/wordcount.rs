//! E4 (Figs. 11–12): MapReduce word count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{summing_reducer, word_count_mapper};
use snap_data::generate_word_values;

fn bench_wordcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_wordcount");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let items = generate_word_values(n, 42);
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), n),
                &items,
                |b, items| {
                    b.iter(|| {
                        black_box(
                            snap_parallel::map_reduce(
                                word_count_mapper(),
                                summing_reducer(),
                                items.clone(),
                                workers,
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wordcount);
criterion_main!(benches);
