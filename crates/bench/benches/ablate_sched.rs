//! A1: work-distribution ablation — dynamic claiming vs static blocks
//! on a skewed workload, and per-call spawn vs persistent pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use snap_workers::{map_slice, map_slice_with, ExecMode, Strategy};

/// Skewed per-item cost: every 8th item is 20× more expensive.
fn skewed_cost(i: &u64) -> u64 {
    let reps = if i.is_multiple_of(8) { 20_000 } else { 1_000 };
    (0..reps).fold(*i, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
}

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_strategy_skewed");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    let items: Vec<u64> = (0..512).collect();
    for (name, strategy) in [("dynamic", Strategy::Dynamic), ("static", Strategy::Static)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, &strategy| b.iter(|| black_box(map_slice(&items, 4, strategy, skewed_cost))),
        );
    }
    group.finish();
}

fn bench_spawn_vs_pool(c: &mut Criterion) {
    // Parallel.js spawns workers per call (faithful); the pool amortizes
    // thread creation. This quantifies the gap on short jobs.
    let mut group = c.benchmark_group("a1_spawn_vs_pool");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    let items: Vec<u64> = (0..64).collect();
    for (name, exec) in [
        ("per_call_spawn", ExecMode::SpawnPerCall),
        ("persistent_pool", ExecMode::Pooled),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(map_slice_with(&items, 4, Strategy::Dynamic, exec, |&n| {
                    n * 2
                }))
            })
        });
    }
    group.finish();
}

fn bench_job_churn(c: &mut Criterion) {
    // Small-chunk, high job-count workload: a burst of 16 consecutive
    // tiny pooled maps per iteration, so per-job dequeue cost dominates.
    // This is the path the work-stealing scheduler targets — under the
    // old single shared queue every dequeue of every worker serialized
    // on one receiver mutex. The 1-worker case guards the uncontended
    // baseline against regression.
    let mut group = c.benchmark_group("a1_job_churn");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    let items: Vec<u64> = (0..64).collect();
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    for _ in 0..16 {
                        black_box(map_slice_with(
                            &items,
                            workers,
                            Strategy::Dynamic,
                            ExecMode::Pooled,
                            |&n| n.wrapping_mul(3),
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_nested_latency(c: &mut Criterion) {
    // Nested parallelism over latency-bound items: an outer pooled map
    // whose per-item body is itself a pooled map over items that each
    // wait on simulated I/O. Under the single-queue scheduler a
    // re-entrant pooled call ran inline — serially — on the pool
    // thread, so the inner waits accumulated one after another.
    // Work-stealing pushes the nested jobs onto the worker's local
    // deque where parked peers steal them, overlapping the waits.
    // Latency-bound on purpose: overlap is measurable even on the
    // 1-CPU reproduction host (see README "Host note").
    let mut group = c.benchmark_group("a1_nested_latency");
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    let outer: Vec<u64> = (0..2).collect();
    group.bench_function("outer2_inner8", |b| {
        b.iter(|| {
            black_box(map_slice_with(
                &outer,
                8,
                Strategy::Dynamic,
                ExecMode::Pooled,
                |&o| {
                    let inner: Vec<u64> = (0..8).map(|i| o * 8 + i).collect();
                    map_slice_with(&inner, 8, Strategy::Dynamic, ExecMode::Pooled, |&n| {
                        std::thread::sleep(Duration::from_micros(200));
                        n.wrapping_mul(3)
                    })
                    .iter()
                    .sum::<u64>()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategy,
    bench_spawn_vs_pool,
    bench_job_churn,
    bench_nested_latency
);
criterion_main!(benches);
