//! A1: work-distribution ablation — dynamic claiming vs static blocks
//! on a skewed workload, and per-call spawn vs persistent pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use snap_workers::{map_slice, map_slice_with, ExecMode, Strategy};

/// Skewed per-item cost: every 8th item is 20× more expensive.
fn skewed_cost(i: &u64) -> u64 {
    let reps = if i.is_multiple_of(8) { 20_000 } else { 1_000 };
    (0..reps).fold(*i, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
}

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_strategy_skewed");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    let items: Vec<u64> = (0..512).collect();
    for (name, strategy) in [("dynamic", Strategy::Dynamic), ("static", Strategy::Static)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, &strategy| b.iter(|| black_box(map_slice(&items, 4, strategy, skewed_cost))),
        );
    }
    group.finish();
}

fn bench_spawn_vs_pool(c: &mut Criterion) {
    // Parallel.js spawns workers per call (faithful); the pool amortizes
    // thread creation. This quantifies the gap on short jobs.
    let mut group = c.benchmark_group("a1_spawn_vs_pool");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    let items: Vec<u64> = (0..64).collect();
    for (name, exec) in [
        ("per_call_spawn", ExecMode::SpawnPerCall),
        ("persistent_pool", ExecMode::Pooled),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(map_slice_with(&items, 4, Strategy::Dynamic, exec, |&n| {
                    n * 2
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategy, bench_spawn_vs_pool);
criterion_main!(benches);
