//! E3 (Figs. 7–10): the concession stand in both modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::run_concession;

fn bench_concession(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_concession");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for cups in [3usize, 10, 30] {
        group.bench_with_input(BenchmarkId::new("sequential", cups), &cups, |b, &cups| {
            b.iter(|| black_box(run_concession(false, cups)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", cups), &cups, |b, &cups| {
            b.iter(|| black_box(run_concession(true, cups)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concession);
criterion_main!(benches);
