//! A5: map-side combining on the word-count corpus (paper §3.4).
//!
//! The same 20 000-word Zipf-distributed `mapReduce` runs with the
//! combiner engaged (`CombinePolicy::Auto` recognises the summing
//! reducer) and forced off (`Disabled` — every mapper pair reaches the
//! shuffle). With ~105 distinct words and 4 worker chunks, combining
//! shrinks shuffle volume from 20 000 pairs to at most 4 × 105 — the
//! `shuffle.pairs_combined` counter records the elimination, and the
//! differential suites prove the output identical either way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_data::generate_words;
use snap_parallel::{map_reduce_with_combine, CombinePolicy};
use snap_workers::RingMapOptions;

const WORDS: usize = 20_000;
const WORKERS: usize = 4;

fn mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

fn reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ))
}

fn bench_word_count_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_word_count_combine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(15);
    group.throughput(Throughput::Elements(WORDS as u64));

    let items: Vec<Value> = generate_words(WORDS, 42)
        .into_iter()
        .map(Value::from)
        .collect();

    for (name, policy) in [
        ("combiner_on", CombinePolicy::Auto),
        ("combiner_off", CombinePolicy::Disabled),
    ] {
        let items = items.clone();
        group.bench_function(name, move |b| {
            b.iter(|| {
                let options = RingMapOptions {
                    workers: WORKERS,
                    ..RingMapOptions::default()
                };
                black_box(
                    map_reduce_with_combine(
                        mapper(),
                        reducer(),
                        black_box(items.clone()),
                        options,
                        policy,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_word_count_combine);
criterion_main!(benches);
