//! A7: continuous-telemetry overhead self-audit.
//!
//! The observability contract is that the always-on tier — counters,
//! windowed histograms, and the 99 Hz sampling profiler — costs under 3%
//! on the scheduler's most overhead-sensitive workload. The workload is
//! the `a1_job_churn` shape: bursts of tiny pooled maps where per-job
//! dequeue cost dominates, so any telemetry tax is maximally visible.
//!
//! * `telemetry_off` — the workload as every untraced run executes it:
//!   span recording off, no profiler. (The relaxed-atomic counters and
//!   windows are compile-time features and always on; they are part of
//!   the baseline in both arms.)
//! * `telemetry_on` — the same workload with the continuous tier fully
//!   engaged: a 99 Hz sampling profiler snapshotting every worker's
//!   span stack for the whole measurement. Span recording stays off —
//!   per-span event buffering is the opt-in `--trace` tier, not the
//!   continuous one, and is priced separately by its event path.
//!
//! `trace_check --overhead-gate` asserts `telemetry_on / telemetry_off
//! <= 1.03` from this group's criterion output; `scripts/ci.sh` runs it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use snap_workers::{map_slice_with, ExecMode, Strategy};

/// One iteration of the churn workload: 16 consecutive tiny pooled maps
/// (the `a1_job_churn/4` shape).
fn churn(items: &[u64]) {
    for _ in 0..16 {
        black_box(map_slice_with(
            items,
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            |&n| n.wrapping_mul(3),
        ));
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("a7_trace_overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    let items: Vec<u64> = (0..64).collect();

    snap_trace::set_enabled(false);
    group.bench_function("telemetry_off", |b| b.iter(|| churn(&items)));

    group.bench_function("telemetry_on", |b| {
        let profiler = snap_trace::profile::start(99);
        b.iter(|| churn(&items));
        let profile = profiler.stop();
        black_box(profile.samples);
    });

    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
