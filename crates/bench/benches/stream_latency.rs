//! A8: end-to-end streaming latency on a short numeric pipeline.
//!
//! A two-stage batchable numeric pipeline (°F→°C then ×10) over a
//! columnar-friendly stream: the measured time is the full source →
//! stage → stage → ordered-sink traversal including channel hops, so
//! regressions in channel wakeups, credit accounting, or the reorder
//! buffer show here before they show in throughput. Every run also
//! feeds the `stream.latency_ns` histogram, which is what `/metrics`
//! serves as windowed p50/p95/p99 during live runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{Pipeline, StreamConfig};

const ITEMS: usize = 2_048;
const BLOCK: usize = 64;

fn f_to_c() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ))
}

fn times_ten() -> Arc<Ring> {
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

fn bench_stream_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("a8_stream_latency");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(15);
    group.throughput(Throughput::Elements(ITEMS as u64));

    let items: Vec<Value> = (0..ITEMS).map(|n| Value::Number(n as f64)).collect();

    group.bench_function("numeric_2stage", move |b| {
        let pipeline = Pipeline::new(StreamConfig {
            block_items: BLOCK,
            ..Default::default()
        })
        .map(f_to_c())
        .map(times_ten());
        b.iter(|| {
            let (out, stats) = pipeline.run_with_stats(black_box(items.clone())).unwrap();
            assert_eq!(stats.items_out, ITEMS as u64);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_latency);
criterion_main!(benches);
