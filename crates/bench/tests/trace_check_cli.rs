//! Negative-path suite for the `trace_check` CI gate: every validator
//! must fail loudly (non-zero exit + a `trace_check FAILED` diagnostic)
//! on the inputs it exists to catch. A gate that exits zero on garbage
//! is worse than no gate, so each failure mode is pinned here.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Run the built `trace_check` binary with the given arguments.
fn trace_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_check"))
        .args(args)
        .output()
        .expect("trace_check runs")
}

/// Write `contents` to a unique temp file and return its path.
fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("trace_check_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn assert_fails(output: &Output, expected_in_stderr: &str) {
    assert!(
        !output.status.success(),
        "expected non-zero exit; stdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("trace_check FAILED"),
        "stderr must carry the FAILED marker: {stderr}"
    );
    assert!(
        stderr.contains(expected_in_stderr),
        "stderr missing {expected_in_stderr:?}: {stderr}"
    );
}

/// A minimal report JSON carrying every required counter, which the
/// per-test cases then corrupt.
fn full_report_json() -> String {
    let counters = [
        "pool.jobs_executed",
        "compile_cache.hits",
        "compile_cache.misses",
        "ring.bytecode_compiles",
        "ring.fastpath_calls",
        "ring.bytecode_calls",
        "ring.treewalk_calls",
        "ring.batch_calls",
        "ring.batch_elems",
        "ring.batch_fallbacks",
        "par.columnar_chunks",
        "shuffle.pairs",
        "shuffle.combine_runs",
        "shuffle.pairs_combined",
        "trace.spans_dropped",
        "trace.overhead_ns",
        "trace.profile_samples",
        "stream.items_in",
        "stream.items_out",
        "stream.blocks",
        "codegen.compiles",
        "codegen.runs",
        "codegen.native_elems",
        "codegen.toolchain_missing",
        "codegen.cache_hits",
        "codegen.cache_misses",
        "codegen.worker_spawns",
        "codegen.worker_frames",
        "codegen.worker_restarts",
        "codegen.worker_fallbacks",
        "codegen.worker_reaped",
    ];
    let body: Vec<String> = counters.iter().map(|c| format!("\"{c}\": 1")).collect();
    format!(
        "{{\"counters\": {{{}}}, \"gauges\": {{}}, \"spans\": [], \"executed_per_worker\": []}}",
        body.join(", ")
    )
}

const VALID_TRACE: &str = r#"{"traceEvents":[{"name":"ring_map","cat":"snap","ph":"X","pid":1,"tid":1,"ts":1.5,"dur":2.0,"args":{"span_id":7}}],"displayTimeUnit":"ms"}"#;

#[test]
fn missing_file_fails() {
    let out = trace_check(&["/nonexistent/trace.json"]);
    assert_fails(&out, "/nonexistent/trace.json");
}

#[test]
fn malformed_json_fails() {
    let path = temp_file("malformed.json", "{\"traceEvents\": [ nope ]");
    let out = trace_check(&[path.to_str().unwrap()]);
    assert_fails(&out, "bad JSON");
}

#[test]
fn trace_event_missing_required_field_fails() {
    // Second event lacks "dur" — every event must carry the full set.
    let path = temp_file(
        "missing_dur.json",
        r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":1,"ts":1.0,"dur":2.0},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":3.0}
        ]}"#,
    );
    let out = trace_check(&[path.to_str().unwrap()]);
    assert_fails(&out, "missing \"dur\"");
}

#[test]
fn report_missing_required_counter_fails() {
    let trace = temp_file("ok_trace_a.json", VALID_TRACE);
    // Drop trace.spans_dropped from the otherwise-complete counter set.
    let gutted = full_report_json().replace("\"trace.spans_dropped\": 1, ", "");
    let report = temp_file("gutted_report.json", &gutted);
    let out = trace_check(&[trace.to_str().unwrap(), report.to_str().unwrap()]);
    assert_fails(&out, "trace.spans_dropped");
}

#[test]
fn require_counter_rejects_zero() {
    let trace = temp_file("ok_trace_b.json", VALID_TRACE);
    let zeroed = full_report_json().replace(
        "\"shuffle.pairs_combined\": 1",
        "\"shuffle.pairs_combined\": 0",
    );
    let report = temp_file("zeroed_report.json", &zeroed);
    let out = trace_check(&[
        trace.to_str().unwrap(),
        report.to_str().unwrap(),
        "--require-counter",
        "shuffle.pairs_combined",
    ]);
    assert_fails(&out, "shuffle.pairs_combined");
}

#[test]
fn complete_trace_and_report_pass() {
    let trace = temp_file("ok_trace_c.json", VALID_TRACE);
    let report = temp_file("ok_report.json", &full_report_json());
    let out = trace_check(&[trace.to_str().unwrap(), report.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "valid inputs must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn bench_json(churn_ns: f64) -> String {
    format!(
        r#"{{"date": "2026-08-08", "host_cpus": 4, "benches": [
            {{"name": "a1_job_churn/1", "mean_ns": {churn_ns}, "workers": 1}},
            {{"name": "a1_nested_latency/outer2_inner8", "mean_ns": 1000.0, "workers": 8}},
            {{"name": "a5_ring_eval/bytecode_fastpath", "mean_ns": 1000.0, "workers": 4}},
            {{"name": "a5_word_count_combine/combiner_on", "mean_ns": 1000.0, "workers": 4}},
            {{"name": "a6_batch_eval/eval_batch", "mean_ns": 1000.0, "workers": 4}},
            {{"name": "a6_columnar_map/columnar_on", "mean_ns": 1000.0, "workers": 4}}
        ]}}"#
    )
}

#[test]
fn gated_bench_regression_fails() {
    let baseline = temp_file("baseline.json", &bench_json(1000.0));
    // 30% slower than baseline on a gated bench: past the 1.25x gate.
    let current = temp_file("regressed.json", &bench_json(1300.0));
    let out = trace_check(&[
        "--bench-json",
        current.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_fails(&out, "a1_job_churn/1");
}

#[test]
fn gated_bench_within_tolerance_passes() {
    let baseline = temp_file("baseline_ok.json", &bench_json(1000.0));
    let current = temp_file("current_ok.json", &bench_json(1100.0));
    let out = trace_check(&[
        "--bench-json",
        current.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "10% drift is within the 25% gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn overhead_json(on_ns: f64, off_ns: f64) -> String {
    format!(
        r#"{{"date": "2026-08-08", "host_cpus": 4, "benches": [
            {{"name": "a7_trace_overhead/telemetry_off", "mean_ns": {off_ns}, "workers": 4}},
            {{"name": "a7_trace_overhead/telemetry_on", "mean_ns": {on_ns}, "workers": 4}}
        ]}}"#
    )
}

#[test]
fn overhead_gate_rejects_blown_budget() {
    // 10% overhead: well past the 3% budget.
    let path = temp_file("overhead_bad.json", &overhead_json(1100.0, 1000.0));
    let out = trace_check(&["--overhead-gate", path.to_str().unwrap()]);
    assert_fails(&out, "overhead");
}

#[test]
fn overhead_gate_accepts_budget() {
    let path = temp_file("overhead_ok.json", &overhead_json(1020.0, 1000.0));
    let out = trace_check(&["--overhead-gate", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "2% overhead is within the 3% budget: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn overhead_gate_requires_the_pair() {
    let path = temp_file(
        "overhead_missing.json",
        r#"{"date": "2026-08-08", "host_cpus": 4, "benches": [
            {"name": "a7_trace_overhead/telemetry_off", "mean_ns": 1000.0, "workers": 4}
        ]}"#,
    );
    let out = trace_check(&["--overhead-gate", path.to_str().unwrap()]);
    assert_fails(&out, "telemetry_on");
}

#[test]
fn scrape_fails_when_nothing_listens() {
    let outfile = std::env::temp_dir().join(format!("scrape_none_{}.txt", std::process::id()));
    // Port 9 (discard) on localhost is never an HTTP server.
    let out = trace_check(&[
        "--scrape",
        "127.0.0.1:9",
        "/metrics",
        outfile.to_str().unwrap(),
    ]);
    assert_fails(&out, "attempt");
}

#[test]
fn scrape_reads_a_live_endpoint_and_checks_expectations() {
    snap_trace::well_known::POOL_JOBS_EXECUTED.incr();
    let server = snap_trace::serve("127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let outfile = std::env::temp_dir().join(format!("scrape_live_{}.prom", std::process::id()));
    let out = trace_check(&[
        "--scrape",
        &addr,
        "/metrics",
        outfile.to_str().unwrap(),
        "--retry",
        "3",
        "--expect",
        "snap_pool_jobs_executed",
    ]);
    assert!(
        out.status.success(),
        "live scrape must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&outfile).expect("scrape wrote the body");
    assert!(body.contains("snap_pool_jobs_executed"));
    // A wrong expectation against the same live endpoint must fail.
    let out = trace_check(&[
        "--scrape",
        &addr,
        "/metrics",
        outfile.to_str().unwrap(),
        "--expect",
        "this_metric_does_not_exist",
    ]);
    assert_fails(&out, "this_metric_does_not_exist");
    // --expect-positive: the incremented counter's sample line is > 0...
    let out = trace_check(&[
        "--scrape",
        &addr,
        "/metrics",
        outfile.to_str().unwrap(),
        "--expect-positive",
        "snap_pool_jobs_executed ",
    ]);
    assert!(
        out.status.success(),
        "live counter must satisfy --expect-positive: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...while a prefix matching no sample line must fail.
    let out = trace_check(&[
        "--scrape",
        &addr,
        "/metrics",
        outfile.to_str().unwrap(),
        "--expect-positive",
        "snap_no_such_sample ",
    ]);
    assert_fails(&out, "snap_no_such_sample");
}
