//! The full scientific workflow of Fig. 17:
//! blocks → code mapping → compile & link → schedule → collect results.
//!
//! §6.3 sketches what Snap! needs to become an HPC front-end: automated
//! compilation ("the Makefile"), *"an outline of the batch submission
//! script, if not its entirety"*, job submission, queue monitoring, and
//! result collection. This module implements that loop end to end:
//! local execution through [`crate::BuildPipeline`], and cluster
//! execution against the [`crate::BatchScheduler`] simulator (the
//! documented stand-in for a real supercomputer).

use std::fmt::Write as _;

use snap_codegen::OpenMpProgram;

use crate::batch::{BatchScheduler, JobId, JobSpec, JobState};
use crate::pipeline::{BuildError, BuildPipeline};

/// Resource request for a cluster run.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Job name (shows up in the queue).
    pub name: String,
    /// Nodes to request.
    pub nodes: usize,
    /// OpenMP threads per node.
    pub threads_per_node: usize,
    /// Walltime limit, scheduler ticks.
    pub walltime: u64,
}

impl Default for BatchRequest {
    fn default() -> Self {
        BatchRequest {
            name: "psnap-mapreduce".to_owned(),
            nodes: 1,
            threads_per_node: 4,
            walltime: 60,
        }
    }
}

/// Generate the batch submission script the paper says Snap! should
/// outline (§6.3). Slurm-flavoured, since that is what the paper's
/// university clusters run.
pub fn batch_script(request: &BatchRequest, binary: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "#!/bin/bash");
    let _ = writeln!(s, "#SBATCH --job-name={}", request.name);
    let _ = writeln!(s, "#SBATCH --nodes={}", request.nodes);
    let _ = writeln!(s, "#SBATCH --ntasks-per-node=1");
    let _ = writeln!(s, "#SBATCH --cpus-per-task={}", request.threads_per_node);
    let _ = writeln!(s, "#SBATCH --time={}", format_walltime(request.walltime));
    let _ = writeln!(s, "#SBATCH --output={}.%j.out", request.name);
    let _ = writeln!(s);
    let _ = writeln!(s, "export OMP_NUM_THREADS={}", request.threads_per_node);
    let _ = writeln!(s, "srun ./{binary}");
    s
}

fn format_walltime(ticks: u64) -> String {
    // One scheduler tick ≙ one minute in the generated script.
    let hours = ticks / 60;
    let minutes = ticks % 60;
    format!("{hours:02}:{minutes:02}:00")
}

/// What happened to a workflow run.
#[derive(Debug)]
pub struct WorkflowReport {
    /// The generated submission script.
    pub script: String,
    /// The simulated job's id.
    pub job_id: JobId,
    /// Ticks spent waiting in the queue.
    pub queue_wait: u64,
    /// Final job state.
    pub state: JobState,
    /// Parsed `key value` results (empty unless completed).
    pub results: Vec<(String, f64)>,
}

/// Drive a generated MapReduce program through the whole Fig. 17 loop:
/// write sources, compile, generate the submission script, submit to the
/// (simulated) cluster, tick the queue until the job finishes, then run
/// the real binary locally to collect its output — the local run stands
/// in for the compute the simulated job performed.
pub fn run_on_cluster(
    pipeline: &BuildPipeline,
    scheduler: &mut BatchScheduler,
    program: &OpenMpProgram,
    request: &BatchRequest,
) -> Result<WorkflowReport, BuildError> {
    // 1. Code mapping output → build directory, compile + link.
    pipeline.write_source("kvp.h", &program.kvp_h)?;
    pipeline.write_source("mapred.c", &program.mapred_c)?;
    pipeline.write_source("driver.c", &program.driver_c)?;
    let binary = pipeline.compile(&["mapred.c", "driver.c"], "mapreduce", true)?;

    // 2. Batch submission script.
    let script = batch_script(request, "mapreduce");
    pipeline.write_source("submit.sh", &script)?;

    // 3. Submit and monitor until the queue drains this job.
    //    Estimated runtime: proportional to nodes' share of the walltime
    //    (the simulator only needs *a* runtime; correctness of results
    //    comes from the real binary below).
    let job_id = scheduler
        .submit(JobSpec {
            name: request.name.clone(),
            nodes: request.nodes,
            walltime: request.walltime,
            runtime: (request.walltime / 2).max(1),
        })
        .ok_or_else(|| BuildError::RunFailed {
            code: None,
            stderr: "job rejected: requested more nodes than the cluster has".into(),
        })?;
    let mut guard = 0u64;
    while scheduler
        .job(job_id)
        .map(|j| matches!(j.state, JobState::Pending | JobState::Running))
        .unwrap_or(false)
    {
        scheduler.tick();
        guard += 1;
        if guard > 1_000_000 {
            break;
        }
    }
    let job = scheduler.job(job_id).expect("submitted job exists");
    let state = job.state;
    let queue_wait = job.wait_time().unwrap_or(0);

    // 4. Collect results (the local execution stands in for the
    //    cluster's).
    let results = if state == JobState::Completed {
        crate::pipeline::parse_kv_output(&pipeline.run(&binary, &[])?)
    } else {
        Vec::new()
    };

    Ok(WorkflowReport {
        script,
        job_id,
        queue_wait,
        state,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Policy;
    use snap_codegen::openmp::{averaging_reducer, climate_mapper, emit_mapreduce_openmp};

    #[test]
    fn batch_script_has_the_slurm_outline() {
        let script = batch_script(
            &BatchRequest {
                name: "climate".into(),
                nodes: 2,
                threads_per_node: 8,
                walltime: 90,
            },
            "mapreduce",
        );
        for fragment in [
            "#!/bin/bash",
            "#SBATCH --job-name=climate",
            "#SBATCH --nodes=2",
            "#SBATCH --cpus-per-task=8",
            "#SBATCH --time=01:30:00",
            "export OMP_NUM_THREADS=8",
            "srun ./mapreduce",
        ] {
            assert!(script.contains(fragment), "missing {fragment}\n{script}");
        }
    }

    #[test]
    fn walltime_formatting() {
        assert_eq!(format_walltime(0), "00:00:00");
        assert_eq!(format_walltime(59), "00:59:00");
        assert_eq!(format_walltime(61), "01:01:00");
    }

    #[test]
    fn full_workflow_completes_and_collects_results() {
        let dir = std::env::temp_dir().join(format!("psnap-wf-{}", std::process::id()));
        let pipeline = BuildPipeline::new(dir).unwrap();
        if !pipeline.has_compiler() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let program = emit_mapreduce_openmp(
            &climate_mapper(),
            &averaging_reducer(),
            &[("s".into(), 32.0), ("s".into(), 212.0)],
        )
        .unwrap();
        let mut cluster = BatchScheduler::new(4, Policy::Backfill);
        let report =
            run_on_cluster(&pipeline, &mut cluster, &program, &BatchRequest::default()).unwrap();
        assert_eq!(report.state, JobState::Completed);
        assert_eq!(report.results.len(), 1);
        assert!((report.results[0].1 - 50.0).abs() < 1e-3);
        assert!(report.script.contains("#SBATCH"));
    }

    #[test]
    fn oversubscribed_requests_are_rejected() {
        let dir = std::env::temp_dir().join(format!("psnap-wf2-{}", std::process::id()));
        let pipeline = BuildPipeline::new(dir).unwrap();
        if !pipeline.has_compiler() {
            return;
        }
        let program = emit_mapreduce_openmp(
            &climate_mapper(),
            &averaging_reducer(),
            &[("s".into(), 50.0)],
        )
        .unwrap();
        let mut cluster = BatchScheduler::new(2, Policy::Fifo);
        let err = run_on_cluster(
            &pipeline,
            &mut cluster,
            &program,
            &BatchRequest {
                nodes: 16,
                ..BatchRequest::default()
            },
        );
        assert!(err.is_err());
    }
}
