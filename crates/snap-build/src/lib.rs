//! # snap-build — from blocks to batch jobs
//!
//! The paper's §6.3 workflow automation, built out: a Makefile-shaped
//! [`BuildPipeline`] (write generated sources → compile with the system
//! C compiler → run → collect output) and a [`BatchScheduler`] simulator
//! standing in for a supercomputer's queueing system (submit, wait,
//! run, collect — with FIFO and EASY-backfill policies and walltime
//! enforcement).

#![warn(missing_docs)]

pub mod batch;
pub mod pipeline;
pub mod workflow;

pub use batch::{BatchScheduler, Job, JobId, JobSpec, JobState, Policy};
pub use pipeline::{detect_cc, parse_kv_output, BuildError, BuildPipeline};
pub use workflow::{batch_script, run_on_cluster, BatchRequest, WorkflowReport};
