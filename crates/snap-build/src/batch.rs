//! A batch-scheduler simulator.
//!
//! §6.3: "Supercomputers … execute large, long-running jobs and use
//! sophisticated batch scheduling systems. The Snap! environment can be
//! extended to … submit the job, monitor waiting in the queue until
//! execution, then collect the results." We have no supercomputer, so
//! this is the substitution: a discrete-time cluster model with FIFO and
//! EASY-backfill policies, walltime enforcement, and the
//! submit → queue → run → collect lifecycle the paper sketches.

use std::collections::HashMap;

/// Job identifier.
pub type JobId = u64;

/// Queueing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Strict first-in-first-out: the head job blocks everything behind it.
    Fifo,
    /// EASY backfill: later jobs may start early if they fit in the idle
    /// nodes *and* cannot delay the head job's guaranteed start time.
    #[default]
    Backfill,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Executing on its nodes.
    Running,
    /// Finished within its walltime.
    Completed,
    /// Killed at its walltime limit.
    TimedOut,
    /// Removed before starting.
    Cancelled,
}

/// What the user submits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (e.g. the generated binary).
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Declared walltime limit (ticks).
    pub walltime: u64,
    /// Actual runtime (ticks) — what the job *would* take; the scheduler
    /// does not see this, only the walltime.
    pub runtime: u64,
}

/// A job and its bookkeeping.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Submission tick.
    pub submitted_at: u64,
    /// Start tick (once running).
    pub started_at: Option<u64>,
    /// End tick (once finished).
    pub ended_at: Option<u64>,
}

impl Job {
    /// Queue wait (ticks), once started.
    pub fn wait_time(&self) -> Option<u64> {
        self.started_at.map(|s| s - self.submitted_at)
    }
}

/// The simulated cluster.
pub struct BatchScheduler {
    total_nodes: usize,
    policy: Policy,
    clock: u64,
    next_id: JobId,
    jobs: HashMap<JobId, Job>,
    queue: Vec<JobId>,
    running: Vec<JobId>,
    busy_node_ticks: u64,
}

impl BatchScheduler {
    /// A cluster with `total_nodes` nodes under `policy`.
    pub fn new(total_nodes: usize, policy: Policy) -> BatchScheduler {
        BatchScheduler {
            total_nodes: total_nodes.max(1),
            policy,
            clock: 0,
            next_id: 1,
            jobs: HashMap::new(),
            queue: Vec::new(),
            running: Vec::new(),
            busy_node_ticks: 0,
        }
    }

    /// Current simulation tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Submit a job; returns its id. Jobs requesting more nodes than the
    /// cluster has are rejected (None).
    pub fn submit(&mut self, spec: JobSpec) -> Option<JobId> {
        if spec.nodes == 0 || spec.nodes > self.total_nodes {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: JobState::Pending,
                submitted_at: self.clock,
                started_at: None,
                ended_at: None,
            },
        );
        self.queue.push(id);
        Some(id)
    }

    /// Cancel a pending job.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.queue.iter().position(|&q| q == id) {
            self.queue.remove(pos);
            if let Some(job) = self.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.ended_at = Some(self.clock);
            }
            return true;
        }
        false
    }

    /// Inspect a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Nodes currently idle.
    pub fn free_nodes(&self) -> usize {
        let busy: usize = self.running.iter().map(|id| self.jobs[id].spec.nodes).sum();
        self.total_nodes - busy
    }

    /// Jobs still pending or running?
    pub fn is_active(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Advance one tick: finish jobs, enforce walltimes, start what the
    /// policy allows.
    pub fn tick(&mut self) {
        // 1. Retire running jobs that finished (or hit their walltime)
        //    by the current tick.
        let mut still_running = Vec::with_capacity(self.running.len());
        for id in std::mem::take(&mut self.running) {
            let job = self.jobs.get_mut(&id).expect("running job exists");
            let started = job.started_at.expect("running job started");
            let elapsed = self.clock - started;
            if elapsed >= job.spec.runtime {
                job.state = JobState::Completed;
                job.ended_at = Some(self.clock);
            } else if elapsed >= job.spec.walltime {
                job.state = JobState::TimedOut;
                job.ended_at = Some(self.clock);
            } else {
                still_running.push(id);
            }
        }
        self.running = still_running;

        // 2. Start jobs.
        self.schedule();

        // 3. Account utilization and advance.
        let busy: usize = self.running.iter().map(|id| self.jobs[id].spec.nodes).sum();
        self.busy_node_ticks += busy as u64;
        self.clock += 1;
    }

    /// Run until every job finishes (bounded by `max_ticks`). Returns
    /// the number of ticks executed.
    pub fn run_to_completion(&mut self, max_ticks: u64) -> u64 {
        let mut ticks = 0;
        while self.is_active() && ticks < max_ticks {
            self.tick();
            ticks += 1;
        }
        ticks
    }

    /// Node utilization so far: busy node-ticks / (nodes × ticks).
    pub fn utilization(&self) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        self.busy_node_ticks as f64 / (self.total_nodes as f64 * self.clock as f64)
    }

    /// Mean queue wait over started jobs.
    pub fn mean_wait(&self) -> f64 {
        let waits: Vec<u64> = self.jobs.values().filter_map(Job::wait_time).collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        }
    }

    fn start(&mut self, id: JobId) {
        let job = self.jobs.get_mut(&id).expect("queued job exists");
        job.state = JobState::Running;
        job.started_at = Some(self.clock);
        self.running.push(id);
    }

    fn schedule(&mut self) {
        // Start queue-head jobs while they fit.
        while let Some(&head) = self.queue.first() {
            if self.jobs[&head].spec.nodes <= self.free_nodes() {
                self.queue.remove(0);
                self.start(head);
            } else {
                break;
            }
        }
        if self.policy == Policy::Fifo {
            return;
        }
        // EASY backfill: compute the head job's shadow time (when enough
        // nodes will be free, assuming running jobs hold their nodes for
        // their full walltime), then start any later job that fits the
        // idle nodes now and finishes (per walltime) before the shadow.
        let Some(&head) = self.queue.first() else {
            return;
        };
        let needed = self.jobs[&head].spec.nodes;
        let mut releases: Vec<(u64, usize)> = self
            .running
            .iter()
            .map(|id| {
                let job = &self.jobs[id];
                let release = job.started_at.expect("running") + job.spec.walltime;
                (release, job.spec.nodes)
            })
            .collect();
        releases.sort_unstable();
        let mut free = self.free_nodes();
        let mut shadow = self.clock;
        let mut extra_at_shadow = 0usize;
        for (release, nodes) in releases {
            if free >= needed {
                break;
            }
            free += nodes;
            shadow = release;
            if free >= needed {
                extra_at_shadow = free - needed;
                break;
            }
        }
        // Candidates: anything after the head that fits *now* and either
        // ends before the shadow or uses only nodes spare at the shadow.
        let mut i = 1;
        while i < self.queue.len() {
            let id = self.queue[i];
            let spec_nodes = self.jobs[&id].spec.nodes;
            let spec_wall = self.jobs[&id].spec.walltime;
            let fits_now = spec_nodes <= self.free_nodes();
            let ends_before_shadow = self.clock + spec_wall <= shadow;
            let within_spare = spec_nodes <= extra_at_shadow;
            if fits_now && (ends_before_shadow || within_spare) {
                self.queue.remove(i);
                if within_spare && !ends_before_shadow {
                    extra_at_shadow -= spec_nodes;
                }
                self.start(id);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, nodes: usize, walltime: u64, runtime: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            nodes,
            walltime,
            runtime,
        }
    }

    #[test]
    fn fifo_runs_jobs_in_order() {
        let mut s = BatchScheduler::new(4, Policy::Fifo);
        let a = s.submit(spec("a", 4, 10, 5)).unwrap();
        let b = s.submit(spec("b", 4, 10, 5)).unwrap();
        s.run_to_completion(1000);
        let (a, b) = (s.job(a).unwrap(), s.job(b).unwrap());
        assert_eq!(a.state, JobState::Completed);
        assert_eq!(b.state, JobState::Completed);
        assert!(a.started_at.unwrap() < b.started_at.unwrap());
        assert!(b.started_at.unwrap() >= a.ended_at.unwrap());
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let mut s = BatchScheduler::new(4, Policy::Fifo);
        assert!(s.submit(spec("big", 5, 10, 5)).is_none());
        assert!(s.submit(spec("zero", 0, 10, 5)).is_none());
    }

    #[test]
    fn walltime_limit_kills_jobs() {
        let mut s = BatchScheduler::new(1, Policy::Fifo);
        let id = s.submit(spec("long", 1, 3, 100)).unwrap();
        s.run_to_completion(1000);
        let job = s.job(id).unwrap();
        assert_eq!(job.state, JobState::TimedOut);
        assert_eq!(job.ended_at.unwrap() - job.started_at.unwrap(), 3);
    }

    #[test]
    fn backfill_lets_small_jobs_jump() {
        // 4 nodes. Running: 2-node job for 10. Head: needs 4 (waits).
        // Small 1-node job with walltime 5 can backfill.
        let mut s = BatchScheduler::new(4, Policy::Backfill);
        let long = s.submit(spec("long", 2, 10, 10)).unwrap();
        s.tick(); // long starts
        let head = s.submit(spec("wide", 4, 10, 2)).unwrap();
        let small = s.submit(spec("small", 1, 5, 2)).unwrap();
        s.run_to_completion(1000);
        let (long, head, small) = (
            s.job(long).unwrap(),
            s.job(head).unwrap(),
            s.job(small).unwrap(),
        );
        assert!(small.started_at.unwrap() < head.started_at.unwrap());
        // Backfill must not delay the head beyond the long job's end.
        assert!(head.started_at.unwrap() >= long.ended_at.unwrap());
        assert_eq!(head.state, JobState::Completed);
    }

    #[test]
    fn fifo_blocks_small_jobs_behind_wide_head() {
        let mut s = BatchScheduler::new(4, Policy::Fifo);
        s.submit(spec("long", 2, 10, 10)).unwrap();
        s.tick();
        let head = s.submit(spec("wide", 4, 10, 2)).unwrap();
        let small = s.submit(spec("small", 1, 5, 2)).unwrap();
        s.run_to_completion(1000);
        // Under strict FIFO the small job waits for the wide head.
        assert!(
            s.job(small).unwrap().started_at.unwrap() >= s.job(head).unwrap().started_at.unwrap()
        );
    }

    #[test]
    fn cancel_removes_pending_jobs() {
        let mut s = BatchScheduler::new(1, Policy::Fifo);
        let a = s.submit(spec("a", 1, 10, 10)).unwrap();
        let b = s.submit(spec("b", 1, 10, 10)).unwrap();
        s.tick();
        assert!(s.cancel(b));
        assert!(!s.cancel(a), "running jobs are not cancellable here");
        s.run_to_completion(1000);
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
        assert_eq!(s.job(a).unwrap().state, JobState::Completed);
    }

    #[test]
    fn utilization_and_wait_statistics() {
        let mut s = BatchScheduler::new(2, Policy::Backfill);
        s.submit(spec("a", 1, 5, 5)).unwrap();
        s.submit(spec("b", 1, 5, 5)).unwrap();
        s.run_to_completion(1000);
        assert!(s.utilization() > 0.5, "both nodes busy most of the time");
        assert!(s.mean_wait() < 2.0);
    }

    #[test]
    fn backfill_improves_mean_wait_over_fifo() {
        let workload = |s: &mut BatchScheduler| {
            s.submit(spec("running", 3, 20, 20)).unwrap();
            s.tick();
            s.submit(spec("wide", 4, 20, 5)).unwrap();
            for i in 0..5 {
                s.submit(spec(&format!("small{i}"), 1, 5, 3)).unwrap();
            }
            s.run_to_completion(10_000);
        };
        let mut fifo = BatchScheduler::new(4, Policy::Fifo);
        workload(&mut fifo);
        let mut easy = BatchScheduler::new(4, Policy::Backfill);
        workload(&mut easy);
        assert!(
            easy.mean_wait() < fifo.mean_wait(),
            "backfill {} should beat fifo {}",
            easy.mean_wait(),
            fifo.mean_wait()
        );
    }
}
