//! Generate → compile → link → run.
//!
//! §6.3: "the Snap! environment needs to incorporate the means for
//! automating the compilation and linking of the textual output from the
//! code mapping process in order to fulfill the same requirements as are
//! currently filled by the Makefile." This module is that Makefile: it
//! writes generated sources to a build directory, invokes the system C
//! compiler (when one exists), and runs the produced binary, capturing
//! its output. Everything degrades gracefully on machines without a
//! compiler — generation is still validated textually.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use snap_codegen::OpenMpProgram;

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// Filesystem trouble.
    Io(io::Error),
    /// No C compiler on this machine.
    NoCompiler,
    /// The compiler rejected the generated code.
    CompileFailed {
        /// Compiler diagnostics.
        stderr: String,
    },
    /// The produced binary exited non-zero.
    RunFailed {
        /// Exit code (if any).
        code: Option<i32>,
        /// Its stderr.
        stderr: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Io(e) => write!(f, "i/o error: {e}"),
            BuildError::NoCompiler => write!(f, "no C compiler found on this machine"),
            BuildError::CompileFailed { stderr } => write!(f, "compilation failed:\n{stderr}"),
            BuildError::RunFailed { code, stderr } => {
                write!(f, "binary exited with {code:?}:\n{stderr}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<io::Error> for BuildError {
    fn from(e: io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// Locate a C compiler (`cc`, `gcc`, or `clang`).
pub fn detect_cc() -> Option<PathBuf> {
    for candidate in ["cc", "gcc", "clang"] {
        let ok = Command::new(candidate)
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
        if ok {
            return Some(PathBuf::from(candidate));
        }
    }
    None
}

/// A build directory plus the compiler driving it.
pub struct BuildPipeline {
    dir: PathBuf,
    cc: Option<PathBuf>,
}

impl BuildPipeline {
    /// Create (or reuse) a build directory; detects the compiler.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<BuildPipeline> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(BuildPipeline {
            dir,
            cc: detect_cc(),
        })
    }

    /// The build directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a compiler is available.
    pub fn has_compiler(&self) -> bool {
        self.cc.is_some()
    }

    /// Write one generated source file into the build directory.
    pub fn write_source(&self, name: &str, content: &str) -> io::Result<PathBuf> {
        let path = self.dir.join(name);
        std::fs::write(&path, content)?;
        Ok(path)
    }

    /// Compile + link sources (named relative to the build directory).
    pub fn compile(
        &self,
        sources: &[&str],
        output: &str,
        openmp: bool,
    ) -> Result<PathBuf, BuildError> {
        let cc = self.cc.as_ref().ok_or(BuildError::NoCompiler)?;
        let out_path = self.dir.join(output);
        let mut cmd = Command::new(cc);
        cmd.current_dir(&self.dir);
        if openmp {
            cmd.arg("-fopenmp");
        }
        cmd.args(["-O2", "-std=c99", "-o"]).arg(&out_path);
        for src in sources {
            cmd.arg(src);
        }
        cmd.arg("-lm");
        let out = cmd.output()?;
        if !out.status.success() {
            return Err(BuildError::CompileFailed {
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            });
        }
        Ok(out_path)
    }

    /// Run a produced binary, returning its stdout.
    pub fn run(&self, binary: &Path, args: &[&str]) -> Result<String, BuildError> {
        let out = Command::new(binary)
            .args(args)
            .current_dir(&self.dir)
            .output()?;
        if !out.status.success() {
            return Err(BuildError::RunFailed {
                code: out.status.code(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            });
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    }

    /// The full §6 workflow for a generated MapReduce program: write
    /// `kvp.h` + `mapred.c` + `driver.c`, compile with OpenMP, run, and
    /// parse the `key value` output lines.
    pub fn build_and_run_mapreduce(
        &self,
        program: &OpenMpProgram,
    ) -> Result<Vec<(String, f64)>, BuildError> {
        self.write_source("kvp.h", &program.kvp_h)?;
        self.write_source("mapred.c", &program.mapred_c)?;
        self.write_source("driver.c", &program.driver_c)?;
        let binary = self.compile(&["mapred.c", "driver.c"], "mapreduce", true)?;
        let stdout = self.run(&binary, &[])?;
        Ok(parse_kv_output(&stdout))
    }
}

/// Parse `key value` lines as printed by the generated driver.
pub fn parse_kv_output(stdout: &str) -> Vec<(String, f64)> {
    stdout
        .lines()
        .filter_map(|line| {
            let (key, val) = line.rsplit_once(' ')?;
            Some((key.to_owned(), val.parse().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_codegen::openmp::{
        averaging_reducer, climate_mapper, emit_mapreduce_openmp, summing_reducer,
        word_count_mapper, OPENMP_HELLO_RUNNABLE,
    };

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psnap-build-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parse_kv_output_handles_spaces_in_keys() {
        let parsed = parse_kv_output("a 1\nhello world 2.5\nbad line x\n");
        assert_eq!(
            parsed,
            vec![("a".to_owned(), 1.0), ("hello world".to_owned(), 2.5)]
        );
    }

    #[test]
    fn openmp_hello_compiles_and_runs() {
        let pipeline = BuildPipeline::new(temp_dir("hello")).unwrap();
        if !pipeline.has_compiler() {
            eprintln!("no C compiler; skipping compile test");
            return;
        }
        pipeline
            .write_source("hello.c", OPENMP_HELLO_RUNNABLE)
            .unwrap();
        let binary = pipeline.compile(&["hello.c"], "hello", true).unwrap();
        let out = pipeline.run(&binary, &[]).unwrap();
        assert!(out.contains("hello("), "unexpected output: {out}");
        assert!(out.contains("world("));
    }

    #[test]
    fn listing5_compiles_cleanly() {
        let pipeline = BuildPipeline::new(temp_dir("listing5")).unwrap();
        if !pipeline.has_compiler() {
            return;
        }
        pipeline
            .write_source("listing5.c", &snap_codegen::emit_listing5())
            .unwrap();
        let binary = pipeline
            .compile(&["listing5.c"], "listing5", false)
            .unwrap();
        // Listing 5 produces no output; success is exit code 0.
        assert_eq!(pipeline.run(&binary, &[]).unwrap(), "");
    }

    #[test]
    fn generated_climate_mapreduce_computes_the_average() {
        let pipeline = BuildPipeline::new(temp_dir("climate")).unwrap();
        if !pipeline.has_compiler() {
            return;
        }
        // 32 °F → 0 °C and 212 °F → 100 °C: average 50 °C.
        let program = emit_mapreduce_openmp(
            &climate_mapper(),
            &averaging_reducer(),
            &[("s1".into(), 32.0), ("s2".into(), 212.0)],
        )
        .unwrap();
        let results = pipeline.build_and_run_mapreduce(&program).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "avg");
        assert!((results[0].1 - 50.0).abs() < 1e-3, "got {}", results[0].1);
    }

    #[test]
    fn generated_word_count_mapreduce_counts() {
        let pipeline = BuildPipeline::new(temp_dir("wordcount")).unwrap();
        if !pipeline.has_compiler() {
            return;
        }
        let data: Vec<(String, f64)> = ["the", "cat", "the", "dog", "the"]
            .iter()
            .map(|w| (w.to_string(), 1.0))
            .collect();
        let program =
            emit_mapreduce_openmp(&word_count_mapper(), &summing_reducer(), &data).unwrap();
        let results = pipeline.build_and_run_mapreduce(&program).unwrap();
        assert_eq!(
            results,
            vec![
                ("cat".to_owned(), 1.0),
                ("dog".to_owned(), 1.0),
                ("the".to_owned(), 3.0),
            ]
        );
    }
}
