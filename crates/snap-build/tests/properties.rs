//! Property-based tests for the batch-scheduler simulator: whatever the
//! workload, the cluster's invariants must hold.

use proptest::prelude::*;

use snap_build::{BatchScheduler, JobSpec, JobState, Policy};

#[derive(Debug, Clone)]
struct WorkloadJob {
    nodes: usize,
    walltime: u64,
    runtime: u64,
}

fn workload_strategy() -> impl Strategy<Value = Vec<WorkloadJob>> {
    prop::collection::vec(
        (1usize..8, 1u64..20, 1u64..30).prop_map(|(nodes, walltime, runtime)| WorkloadJob {
            nodes,
            walltime,
            runtime,
        }),
        0..30,
    )
}

fn run_workload(jobs: &[WorkloadJob], policy: Policy) -> BatchScheduler {
    let mut s = BatchScheduler::new(8, policy);
    for (i, job) in jobs.iter().enumerate() {
        s.submit(JobSpec {
            name: format!("job{i}"),
            nodes: job.nodes,
            walltime: job.walltime,
            runtime: job.runtime,
        });
        // Interleave submission with progress so arrival order matters.
        if i % 3 == 0 {
            s.tick();
        }
    }
    s.run_to_completion(100_000);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_job_reaches_a_terminal_state(
        jobs in workload_strategy(),
        backfill in any::<bool>()
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run_workload(&jobs, policy);
        prop_assert!(!s.is_active(), "queue must drain");
        for i in 0..jobs.len() {
            let job = s.job((i + 1) as u64).expect("job exists");
            prop_assert!(
                matches!(job.state, JobState::Completed | JobState::TimedOut),
                "job {i} ended {:?}",
                job.state
            );
        }
    }

    #[test]
    fn jobs_never_exceed_their_walltime(
        jobs in workload_strategy(),
        backfill in any::<bool>()
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run_workload(&jobs, policy);
        for i in 0..jobs.len() {
            let job = s.job((i + 1) as u64).unwrap();
            if let (Some(start), Some(end)) = (job.started_at, job.ended_at) {
                prop_assert!(end - start <= job.spec.walltime.max(job.spec.runtime));
                if job.state == JobState::TimedOut {
                    prop_assert_eq!(end - start, job.spec.walltime);
                }
            }
        }
    }

    #[test]
    fn utilization_is_a_fraction(
        jobs in workload_strategy(),
        backfill in any::<bool>()
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run_workload(&jobs, policy);
        let u = s.utilization();
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn fifo_starts_jobs_in_submission_order_per_feasibility(
        jobs in workload_strategy()
    ) {
        // Under strict FIFO, a job can only start after every earlier
        // job has started (no overtaking).
        let s = run_workload(&jobs, Policy::Fifo);
        let mut starts: Vec<(u64, u64)> = (0..jobs.len())
            .filter_map(|i| {
                let job = s.job((i + 1) as u64)?;
                Some(((i + 1) as u64, job.started_at?))
            })
            .collect();
        starts.sort_by_key(|(id, _)| *id);
        for pair in starts.windows(2) {
            prop_assert!(
                pair[0].1 <= pair[1].1,
                "job {} started before job {}",
                pair[1].0,
                pair[0].0
            );
        }
    }

    #[test]
    fn backfill_keeps_drain_time_comparable(
        jobs in workload_strategy()
    ) {
        // EASY backfill guarantees the *head* job's reservation; later
        // jobs can individually shift, but the drain time stays in the
        // same ballpark as FIFO (it usually improves; it must never
        // blow up).
        let fifo = run_workload(&jobs, Policy::Fifo);
        let easy = run_workload(&jobs, Policy::Backfill);
        let bound = fifo.clock() + fifo.clock() / 2 + 25;
        prop_assert!(
            easy.clock() <= bound,
            "easy {} far beyond fifo {}",
            easy.clock(),
            fifo.clock()
        );
    }
}
