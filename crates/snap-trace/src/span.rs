//! Scoped wall-time spans recorded into per-thread buffers.
//!
//! A span is opened with [`span`] (or the [`crate::span!`] macro) and
//! closed when its guard drops; the completed event goes into the
//! calling thread's own buffer, so recording takes no shared lock. The
//! buffers register themselves in a global list the exporters walk.
//!
//! Recording is off until [`set_enabled`]`(true)`: a disabled span is
//! one relaxed atomic load and no clock read, so instrumented code left
//! in place costs effectively nothing (the `enabled` cargo feature
//! removes even that).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Hard cap on buffered events per thread; beyond it new events are
/// counted as dropped rather than grow memory without bound.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 16;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`"ring_map"`, `"shuffle.merge"`, …).
    pub name: &'static str,
    /// Recording thread's trace id (dense, assigned at first span).
    pub tid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Process-unique span id (0 only for hand-built events).
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// began (0 at the top of a thread's stack).
    pub parent: u64,
    /// Causal link to a span on *another* thread: the originating
    /// `parallelMap`-side span a pooled chunk, fault retry, or salvage
    /// pass was scheduled from (0 when unlinked).
    pub link: u64,
    /// Optional single argument, e.g. `("len", 10000)`.
    pub arg: Option<(&'static str, u64)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off at runtime. Counters and gauges are
/// always live; only spans (which cost two clock reads and a buffer
/// push each) are gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is span recording currently on?
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch, shared with histogram
/// windows so every subsystem stamps time on one axis.
pub(crate) fn now_ns() -> u64 {
    Instant::now().duration_since(epoch()).as_nanos() as u64
}

struct ThreadBuffer {
    tid: u64,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn with_local_buffer(f: impl FnOnce(&ThreadBuffer)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer = Arc::new(ThreadBuffer {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            });
            buffers()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(buffer.clone());
            buffer
        });
        f(buffer);
    });
}

/// An open span; records its event when dropped. Inert (and free) when
/// neither recording nor profiling was active at open time.
#[must_use = "a span records nothing unless it lives across the timed region"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
    framed: bool,
}

struct OpenSpan {
    name: &'static str,
    arg: Option<(&'static str, u64)>,
    id: u64,
    parent: u64,
    link: u64,
    start: Instant,
    start_ns: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // Ids of the spans currently open on this thread, innermost last —
    // the source of `SpanEvent::parent` and `current_span_id`. Plain
    // (non-atomic) because only the owning thread reads it; the
    // profiler's cross-thread view lives in `crate::profile`.
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost span currently open on this thread (0 when
/// none). Capture it before handing work to another thread and pass it
/// to [`span_linked`] there, so the pooled side of a scatter links back
/// to the originating call in the trace.
pub fn current_span_id() -> u64 {
    OPEN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0))
}

/// Open a span covering the enclosing scope.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None, 0)
}

/// Open a span with one `key = value` argument.
#[inline]
pub fn span_with(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    span_inner(name, Some((key, value)), 0)
}

/// Open a span causally linked to a span on another thread (see
/// [`current_span_id`]).
#[inline]
pub fn span_linked(name: &'static str, link: u64) -> SpanGuard {
    span_inner(name, None, link)
}

/// [`span_linked`] with one `key = value` argument.
#[inline]
pub fn span_linked_with(name: &'static str, key: &'static str, value: u64, link: u64) -> SpanGuard {
    span_inner(name, Some((key, value)), link)
}

#[inline]
fn span_inner(name: &'static str, arg: Option<(&'static str, u64)>, link: u64) -> SpanGuard {
    let recording = enabled();
    if !recording && !crate::profile::profiling() {
        return SpanGuard {
            open: None,
            framed: false,
        };
    }
    // The profiler's per-thread stack is maintained whenever spans are
    // recorded OR a sampler is running, so a profile can be pulled from
    // a process that never enabled full span recording.
    crate::profile::push_frame(name);
    if !recording {
        return SpanGuard {
            open: None,
            framed: true,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let epoch = epoch();
    let start = Instant::now();
    SpanGuard {
        open: Some(OpenSpan {
            name,
            arg,
            id,
            parent,
            link,
            start,
            start_ns: start.duration_since(epoch).as_nanos() as u64,
        }),
        framed: true,
    }
}

thread_local! {
    // name-ptr → duration histogram, so each span drop records into
    // `span.<name>.ns` without touching the global intern lock.
    static DURATION_CACHE: RefCell<Vec<(usize, &'static crate::metrics::Histogram)>> =
        const { RefCell::new(Vec::new()) };
}

fn duration_histogram(name: &'static str) -> &'static crate::metrics::Histogram {
    let key = name.as_ptr() as usize;
    DURATION_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&(_, histogram)) = cache.iter().find(|(k, _)| *k == key) {
            return histogram;
        }
        let histogram = crate::metrics::histogram_owned(format!("span.{name}.ns"));
        cache.push((key, histogram));
        histogram
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.framed {
            crate::profile::pop_frame();
        }
        let Some(open) = self.open.take() else {
            return;
        };
        OPEN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur_ns = open.start.elapsed().as_nanos() as u64;
        // Span durations flow into windowed histograms, so live p99s
        // per span name come for free with recording on. The end
        // timestamp is already known — no extra clock read.
        duration_histogram(open.name).record_at(dur_ns, open.start_ns + dur_ns);
        with_local_buffer(|buffer| {
            let mut events = buffer.events.lock().unwrap_or_else(PoisonError::into_inner);
            if events.len() >= MAX_EVENTS_PER_THREAD {
                buffer.dropped.fetch_add(1, Ordering::Relaxed);
                crate::metrics::well_known::TRACE_SPANS_DROPPED.incr();
                return;
            }
            events.push(SpanEvent {
                name: open.name,
                tid: buffer.tid,
                start_ns: open.start_ns,
                dur_ns,
                id: open.id,
                parent: open.parent,
                link: open.link,
                arg: open.arg,
            });
        });
    }
}

/// Open a span: `span!("name")` or `span!("ring_map", len)` (the
/// argument's identifier becomes the key) or
/// `span!("name", "key" => value)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $key:literal => $value:expr) => {
        $crate::span_with($name, $key, $value as u64)
    };
    ($name:expr, $value:ident) => {
        $crate::span_with($name, stringify!($value), $value as u64)
    };
}

/// Copy out every buffered span, across all threads, ordered by start
/// time. Buffers are left intact (see [`take_spans`]).
pub fn collect_spans() -> Vec<SpanEvent> {
    let buffers = buffers().lock().unwrap_or_else(PoisonError::into_inner);
    let mut all: Vec<SpanEvent> = buffers
        .iter()
        .flat_map(|b| {
            b.events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
        })
        .collect();
    all.sort_by_key(|e| (e.start_ns, e.tid));
    all
}

/// Drain every buffered span, across all threads, ordered by start
/// time. Subsequent calls see only newly recorded spans.
pub fn take_spans() -> Vec<SpanEvent> {
    let buffers = buffers().lock().unwrap_or_else(PoisonError::into_inner);
    let mut all: Vec<SpanEvent> = buffers
        .iter()
        .flat_map(|b| std::mem::take(&mut *b.events.lock().unwrap_or_else(PoisonError::into_inner)))
        .collect();
    all.sort_by_key(|e| (e.start_ns, e.tid));
    all
}

// ---------------------------------------------------------------------
// Trace notes — point-in-time diagnostics that carry a message
// ---------------------------------------------------------------------

/// Hard cap on buffered notes; failure diagnostics are rare, so hitting
/// this means something is very wrong — later notes are counted as
/// dropped rather than grow memory without bound.
pub const MAX_NOTES: usize = 1024;

/// A point-in-time diagnostic record. Unlike a [`SpanEvent`], a note has
/// no duration and carries an owned message — the vehicle for panic
/// payloads and degradation records, which must survive into the trace
/// even though their text is only known at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNote {
    /// Note name (`"pool.job_panic"`, `"blocks.degraded"`, …).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// The diagnostic message (panic payload text, degradation reason).
    pub message: String,
}

struct NoteBuffer {
    notes: Mutex<Vec<TraceNote>>,
    dropped: AtomicU64,
}

fn note_buffer() -> &'static NoteBuffer {
    static NOTES: OnceLock<NoteBuffer> = OnceLock::new();
    NOTES.get_or_init(|| NoteBuffer {
        notes: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    })
}

/// Record a diagnostic note. Notes are always on (failures are rare and
/// the message is precious), independent of the span toggle; only the
/// `enabled` cargo feature compiles them out.
pub fn note(name: &'static str, message: impl Into<String>) {
    if !cfg!(feature = "enabled") {
        return;
    }
    let ts_ns = Instant::now().duration_since(epoch()).as_nanos() as u64;
    let buffer = note_buffer();
    let mut notes = buffer.notes.lock().unwrap_or_else(PoisonError::into_inner);
    if notes.len() >= MAX_NOTES {
        buffer.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    notes.push(TraceNote {
        name,
        ts_ns,
        message: message.into(),
    });
}

/// Copy out every buffered note, ordered by timestamp.
pub fn collect_notes() -> Vec<TraceNote> {
    let mut all = note_buffer()
        .notes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    all.sort_by_key(|n| n.ts_ns);
    all
}

/// Drain every buffered note; later calls see only newly recorded ones.
pub fn take_notes() -> Vec<TraceNote> {
    let mut all = std::mem::take(
        &mut *note_buffer()
            .notes
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    all.sort_by_key(|n| n.ts_ns);
    all
}

/// Notes dropped because the buffer hit [`MAX_NOTES`].
pub fn dropped_notes() -> u64 {
    note_buffer().dropped.load(Ordering::Relaxed)
}

/// Spans dropped because a thread's buffer hit
/// [`MAX_EVENTS_PER_THREAD`].
pub fn dropped_spans() -> u64 {
    buffers()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|b| b.dropped.load(Ordering::Relaxed))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag is process-global; tests that flip it take this
    /// lock so the default parallel test runner cannot interleave them.
    fn toggle_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = toggle_lock();
        set_enabled(false);
        {
            let _s = span("test.disabled");
        }
        assert!(!collect_spans().iter().any(|e| e.name == "test.disabled"));
    }

    #[test]
    fn enabled_spans_record_name_arg_and_duration() {
        let _guard = toggle_lock();
        set_enabled(true);
        {
            let _s = span_with("test.enabled", "len", 42);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        let spans = collect_spans();
        let ours = spans
            .iter()
            .find(|e| e.name == "test.enabled")
            .expect("span recorded");
        assert_eq!(ours.arg, Some(("len", 42)));
        assert!(ours.dur_ns >= 1_000_000, "slept 1ms, got {}", ours.dur_ns);
    }

    #[test]
    fn spans_from_worker_threads_are_collected() {
        let _guard = toggle_lock();
        set_enabled(true);
        std::thread::spawn(|| {
            let _s = span!("test.worker_thread");
        })
        .join()
        .unwrap();
        set_enabled(false);
        assert!(collect_spans()
            .iter()
            .any(|e| e.name == "test.worker_thread"));
    }

    #[test]
    fn notes_record_messages_regardless_of_span_toggle() {
        let _guard = toggle_lock();
        set_enabled(false); // notes are independent of the span gate
        note("test.note", "panicked at 'boom'");
        let notes = collect_notes();
        let ours = notes
            .iter()
            .find(|n| n.name == "test.note")
            .expect("note recorded");
        assert_eq!(ours.message, "panicked at 'boom'");
        assert_eq!(dropped_notes(), 0);
    }

    #[test]
    fn spans_carry_ids_parents_and_links() {
        let _guard = toggle_lock();
        set_enabled(true);
        let origin_id;
        {
            let _outer = span("test.link.origin");
            origin_id = current_span_id();
            assert_ne!(origin_id, 0, "an open span has an id");
            let _inner = span_linked_with("test.link.child", "item", 3, origin_id);
        }
        assert_eq!(current_span_id(), 0, "stack empties when guards drop");
        set_enabled(false);
        let spans = collect_spans();
        let outer = spans
            .iter()
            .find(|e| e.name == "test.link.origin")
            .expect("origin recorded");
        let inner = spans
            .iter()
            .find(|e| e.name == "test.link.child")
            .expect("child recorded");
        assert_eq!(outer.id, origin_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, origin_id, "same-thread nesting sets parent");
        assert_eq!(inner.link, origin_id, "explicit link survives");
        assert_ne!(inner.id, outer.id);
    }

    #[test]
    fn span_durations_flow_into_windowed_histograms() {
        let _guard = toggle_lock();
        set_enabled(true);
        {
            let _s = span("test.duration_window");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        let histogram = crate::metrics::histogram_owned("span.test.duration_window.ns".into());
        let windowed = histogram.windowed(60);
        assert!(windowed.count >= 1, "duration recorded into the window");
        assert!(
            windowed.percentile(0.99) >= 1_000_000,
            "p99 covers the 1ms sleep"
        );
    }

    #[test]
    fn buffer_overflow_counts_dropped_spans() {
        let _guard = toggle_lock();
        set_enabled(true);
        let before = crate::metrics::well_known::TRACE_SPANS_DROPPED.get();
        // A dedicated thread gets a fresh thread-local buffer, so the
        // overflow is deterministic and no sibling test's spans are
        // eaten by the full buffer.
        std::thread::spawn(|| {
            for _ in 0..(MAX_EVENTS_PER_THREAD + 10) {
                let _s = span("test.overflow");
            }
        })
        .join()
        .unwrap();
        set_enabled(false);
        assert!(dropped_spans() >= 10, "per-buffer drop counts advance");
        assert!(
            crate::metrics::well_known::TRACE_SPANS_DROPPED.get() >= before + 10,
            "the well-known counter mirrors the drops"
        );
    }

    #[test]
    fn span_macro_forms_compile() {
        let _guard = toggle_lock();
        set_enabled(true);
        let len = 7usize;
        {
            let _a = span!("test.macro.plain");
            let _b = span!("test.macro.ident", len);
            let _c = span!("test.macro.kv", "items" => 3);
        }
        set_enabled(false);
        let spans = collect_spans();
        assert!(spans
            .iter()
            .any(|e| e.name == "test.macro.ident" && e.arg == Some(("len", 7))));
        assert!(spans
            .iter()
            .any(|e| e.name == "test.macro.kv" && e.arg == Some(("items", 3))));
    }
}
