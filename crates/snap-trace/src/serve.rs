//! Live telemetry exposition: a tiny dependency-free HTTP/1.1 server.
//!
//! [`serve`]`("127.0.0.1:9184")` spawns one listener thread serving:
//!
//! * `GET /metrics` — Prometheus text format (v0.0.4): every counter,
//!   gauge, and histogram, with cumulative summary quantiles *and*
//!   windowed quantiles over the trailing minute
//!   (`…_window{quantile="0.99",window="60s"}`), plus per-worker job
//!   totals.
//! * `GET /report.json` — the [`crate::ExecutionReport`] JSON.
//! * `GET /profile?seconds=N&hz=H` — runs the sampling profiler for N
//!   seconds (default 2, capped at 30) and returns folded stacks.
//! * `GET /` — a plain-text index of the above.
//!
//! The server is deliberately single-threaded: one connection at a
//! time, `Connection: close`, no keep-alive, no TLS — a scrape target,
//! not a web framework. `/profile` blocks the accept loop while it
//! samples; concurrent scrapers queue in the listen backlog. Handler
//! wall time is self-audited into `trace.overhead_ns`.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::well_known::{TRACE_METRICS_SCRAPES, TRACE_OVERHEAD_NS};
use crate::metrics::{
    dynamic_counters, dynamic_gauges, dynamic_histograms, global_workers, known_counters,
    known_gauges, known_histograms, vm_counters, HistogramSnapshot,
};

/// Longest request head (request line + headers) we will read.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Hard cap on `/profile?seconds=N`.
const MAX_PROFILE_SECS: u64 = 30;

/// The trailing range windowed quantiles are computed over.
const WINDOW_RANGE_SECS: u64 = 60;

/// A running metrics server; dropping (or [`MetricsServer::shutdown`])
/// stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in accept(); a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop_and_join();
        }
    }
}

/// Start the telemetry server on `addr` (e.g. `"127.0.0.1:9184"`, or
/// port `0` to let the OS pick).
pub fn serve<A: ToSocketAddrs>(addr: A) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let join = std::thread::Builder::new()
        .name("snap-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let began = Instant::now();
                let _ = handle(stream);
                TRACE_OVERHEAD_NS.add(began.elapsed().as_nanos() as u64);
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        join: Some(join),
    })
}

fn handle(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let Some(request_line) = head.lines().next() else {
        return respond(&mut stream, 400, "text/plain", "bad request\n");
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "GET only\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "snap-trace telemetry\n\n  /metrics          Prometheus text format\n  /report.json      ExecutionReport snapshot\n  /profile?seconds=N  folded-stack CPU profile (default 2s)\n",
        ),
        "/metrics" => {
            TRACE_METRICS_SCRAPES.incr();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &prometheus_text(),
            )
        }
        "/report.json" => respond(
            &mut stream,
            200,
            "application/json",
            &crate::report().to_json(),
        ),
        "/profile" => {
            let seconds = query_param(query, "seconds")
                .unwrap_or(2)
                .min(MAX_PROFILE_SECS);
            let hz = query_param(query, "hz").unwrap_or(99);
            let profile =
                crate::profile::profile_for(Duration::from_secs(seconds), hz);
            respond(
                &mut stream,
                200,
                "text/plain; charset=utf-8",
                &profile.to_folded(),
            )
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn query_param(query: &str, key: &str) -> Option<u64> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Prometheus text rendering
// ---------------------------------------------------------------------

/// A metric name in Prometheus form: dots and other separators become
/// underscores, and everything carries the `snap_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("snap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_summary(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} summary");
    for (label, p) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", snap.percentile(p));
    }
    let _ = writeln!(out, "{name}_sum {}", snap.sum);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

fn push_window(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    // Windowed quantiles are gauges, not summaries: they move both ways
    // as load changes, and the extra `window` label would be illegal on
    // a native summary anyway.
    let _ = writeln!(out, "# TYPE {name}_window gauge");
    for (label, p) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
        let _ = writeln!(
            out,
            "{name}_window{{quantile=\"{label}\",window=\"{WINDOW_RANGE_SECS}s\"}} {}",
            snap.percentile(p)
        );
    }
    let _ = writeln!(
        out,
        "{name}_window_count{{window=\"{WINDOW_RANGE_SECS}s\"}} {}",
        snap.count
    );
}

/// Render every registered metric in the Prometheus text exposition
/// format, including windowed quantiles over the trailing minute.
pub fn prometheus_text() -> String {
    let mut out = String::with_capacity(8 * 1024);
    for counter in known_counters()
        .into_iter()
        .chain(vm_counters())
        .chain(dynamic_counters())
    {
        let name = prom_name(counter.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", counter.get());
    }
    for gauge in known_gauges().into_iter().chain(dynamic_gauges()) {
        let name = prom_name(gauge.name());
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", gauge.get());
    }
    for histogram in known_histograms().into_iter().chain(dynamic_histograms()) {
        let name = prom_name(histogram.name());
        push_summary(&mut out, &name, &histogram.snapshot());
        push_window(&mut out, &name, &histogram.windowed(WINDOW_RANGE_SECS));
    }
    if let Some(workers) = global_workers() {
        out.push_str("# TYPE snap_pool_worker_jobs gauge\n");
        for (id, jobs) in workers.snapshot().into_iter().enumerate() {
            let _ = writeln!(out, "snap_pool_worker_jobs{{worker=\"{id}\"}} {jobs}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_report_and_404() {
        crate::metrics::well_known::SHUFFLE_MERGE_NS.record(1234);
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE snap_pool_jobs_executed counter"));
        assert!(body.contains("snap_shuffle_merge_ns{quantile=\"0.99\"}"));
        assert!(body.contains("snap_shuffle_merge_ns_window{quantile=\"0.99\",window=\"60s\"}"));

        let (status, body) = get(addr, "/report.json");
        assert_eq!(status, 200);
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        assert!(body.contains("\"counters\""));

        let (status, body) = get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"));

        let (status, _) = get(addr, "/no-such-page");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn profile_endpoint_returns_folded_stacks() {
        let server = serve("127.0.0.1:0").expect("bind");
        crate::profile::register_thread();
        // Hold a frame on this thread's stack while the profile runs.
        crate::profile::push_frame("test.serve.busy");
        let (status, body) = get(server.addr(), "/profile?seconds=1&hz=200");
        crate::profile::pop_frame();
        assert_eq!(status, 200);
        assert!(!body.is_empty(), "profile body empty");
        for line in body.lines() {
            assert!(line.rsplit_once(' ').is_some(), "bad folded line: {line}");
        }
        assert!(
            body.contains("test.serve.busy"),
            "busy frame missing from profile:\n{body}"
        );
        server.shutdown();
    }

    #[test]
    fn scrape_counter_and_overhead_advance() {
        let server = serve("127.0.0.1:0").expect("bind");
        let before = TRACE_METRICS_SCRAPES.get();
        let _ = get(server.addr(), "/metrics");
        assert!(TRACE_METRICS_SCRAPES.get() > before);
        server.shutdown();
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("shuffle.merge_ns"), "snap_shuffle_merge_ns");
        assert_eq!(prom_name("span.exec.chunk.ns"), "snap_span_exec_chunk_ns");
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("seconds=3&hz=50", "seconds"), Some(3));
        assert_eq!(query_param("seconds=3&hz=50", "hz"), Some(50));
        assert_eq!(query_param("seconds=x", "seconds"), None);
        assert_eq!(query_param("", "seconds"), None);
    }
}
