//! Span exporters: Chrome `trace_event` JSON and JSONL.
//!
//! The Chrome format is the `chrome://tracing` / Perfetto "JSON object
//! format": a top-level object with a `traceEvents` array of complete
//! (`"ph":"X"`) events, timestamps and durations in **microseconds**.
//! JSONL is one flat JSON object per line, nanosecond-precision, for
//! ad-hoc analysis with line-oriented tools.
//!
//! snap-trace is dependency-free, so the JSON is written by hand; span
//! names and argument keys are `&'static str` identifiers but are
//! escaped anyway so arbitrary names stay well-formed.

use std::fmt::Write as _;

use crate::span::{SpanEvent, TraceNote};

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_event(event: &SpanEvent, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json(event.name, out);
    // Complete events; timestamps in microseconds with fractional
    // nanoseconds, as the trace_event spec allows.
    let _ = write!(
        out,
        "\",\"cat\":\"snap\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
        event.tid,
        event.start_ns as f64 / 1_000.0,
        event.dur_ns as f64 / 1_000.0,
    );
    // Causal identity travels in args so every event keeps the same
    // required top-level field set (name/ph/ts/dur/pid/tid).
    let has_args = event.arg.is_some() || event.id != 0;
    if has_args {
        out.push_str(",\"args\":{");
        let mut first = true;
        if let Some((key, value)) = event.arg {
            out.push('"');
            escape_json(key, out);
            let _ = write!(out, "\":{value}");
            first = false;
        }
        if event.id != 0 {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"span_id\":{}", event.id);
            if event.parent != 0 {
                let _ = write!(out, ",\"parent\":{}", event.parent);
            }
            if event.link != 0 {
                let _ = write!(out, ",\"link\":{}", event.link);
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Render spans as a Chrome `trace_event` JSON document, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    chrome_trace_json_with_notes(spans, &[])
}

fn push_note(note: &TraceNote, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json(note.name, out);
    // Zero-duration complete events (rather than "ph":"i" instants) so
    // every event in the document has the same field set; the fault
    // message travels in args.
    let _ = write!(
        out,
        "\",\"cat\":\"snap.fault\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"dur\":0.000,\"args\":{{\"message\":\"",
        note.ts_ns as f64 / 1_000.0,
    );
    escape_json(&note.message, out);
    out.push_str("\"}}");
}

/// Render spans plus diagnostic notes (panic payloads, degradation
/// records) as one Chrome `trace_event` JSON document. Notes appear as
/// zero-duration events in the `snap.fault` category with the message
/// in `args.message`, so a trace of a failing run is self-diagnosing.
pub fn chrome_trace_json_with_notes(spans: &[SpanEvent], notes: &[TraceNote]) -> String {
    let mut out = String::with_capacity(spans.len() * 96 + notes.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for event in spans {
        if !first {
            out.push(',');
        }
        first = false;
        push_event(event, &mut out);
    }
    for note in notes {
        if !first {
            out.push(',');
        }
        first = false;
        push_note(note, &mut out);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render spans as JSONL: one object per line with nanosecond fields
/// `name`, `tid`, `start_ns`, `dur_ns`, and optionally `arg_key` /
/// `arg_value`.
pub fn spans_jsonl(spans: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(spans.len() * 96);
    for event in spans {
        out.push_str("{\"name\":\"");
        escape_json(event.name, &mut out);
        let _ = write!(
            out,
            "\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{}",
            event.tid, event.start_ns, event.dur_ns
        );
        if event.id != 0 {
            let _ = write!(out, ",\"id\":{}", event.id);
            if event.parent != 0 {
                let _ = write!(out, ",\"parent\":{}", event.parent);
            }
            if event.link != 0 {
                let _ = write!(out, ",\"link\":{}", event.link);
            }
        }
        if let Some((key, value)) = event.arg {
            out.push_str(",\"arg_key\":\"");
            escape_json(key, &mut out);
            let _ = write!(out, "\",\"arg_value\":{value}");
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "ring_map",
                tid: 1,
                start_ns: 1_500,
                dur_ns: 2_000_000,
                id: 7,
                parent: 0,
                link: 0,
                arg: Some(("len", 10_000)),
            },
            SpanEvent {
                name: "shuffle.merge",
                tid: 2,
                start_ns: 2_000_000,
                dur_ns: 500,
                id: 9,
                parent: 8,
                link: 7,
                arg: None,
            },
        ]
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"ring_map\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains("\"args\":{\"len\":10000,\"span_id\":7}"));
        assert!(json.contains("\"name\":\"shuffle.merge\""));
        // Causal identity travels in args: id always, parent/link when set.
        assert!(json.contains("\"args\":{\"span_id\":9,\"parent\":8,\"link\":7}"));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn notes_export_as_fault_category_events() {
        let notes = vec![TraceNote {
            name: "pool.job_panic",
            ts_ns: 3_000,
            message: "panicked at \"boom\"".to_string(),
        }];
        let json = chrome_trace_json_with_notes(&sample(), &notes);
        assert!(json.contains("\"cat\":\"snap.fault\""));
        assert!(json.contains("\"name\":\"pool.job_panic\""));
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"dur\":0.000"));
        assert!(json.contains("\"args\":{\"message\":\"panicked at \\\"boom\\\"\"}"));
        // Every event still carries the same required field set.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let jsonl = spans_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"start_ns\":1500"));
        assert!(lines[0].contains("\"arg_key\":\"len\""));
        assert!(lines[0].contains("\"id\":7"));
        assert!(lines[1].contains("\"parent\":8"));
        assert!(lines[1].contains("\"link\":7"));
        assert!(lines[1].ends_with('}'));
    }

    #[test]
    fn escaping_keeps_json_well_formed() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
