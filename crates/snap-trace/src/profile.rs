//! Sampling profiler: per-thread span stacks plus a timer thread that
//! snapshots them at ~99Hz into flamegraph-compatible folded stacks.
//!
//! Every thread that opens spans (or calls [`register_thread`], as pool
//! workers do at spawn) owns a fixed-depth stack of interned span-name
//! ids stored in atomics. Opening a span pushes its name id; dropping
//! the guard pops it. The stack is maintained whenever span recording
//! *or* profiling is active, so a profile can be pulled from a process
//! that never enabled full span recording.
//!
//! The sampler walks the global stack registry, reads each thread's
//! `depth` with `Acquire`, and folds `label;outer;inner` keys into a
//! count map. Reads race with pushes and pops by design: a torn sample
//! can attribute one tick to a stack that existed a microsecond ago —
//! harmless at 99Hz, and the price of keeping span open/close at a
//! couple of relaxed stores. Threads with an empty stack contribute a
//! bare `label` sample, so the folded output doubles as a utilization
//! view (ticks in spans vs ticks idle).
//!
//! The profiler audits itself: every sample's cost is added to the
//! `trace.overhead_ns` counter and counted in `trace.profile_samples`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::well_known::{TRACE_OVERHEAD_NS, TRACE_PROFILE_SAMPLES};

/// Deepest span nesting the sampler can see; frames beyond it are
/// tracked in depth only (they pop correctly but don't appear in
/// samples).
pub const MAX_STACK_DEPTH: usize = 48;

// ---------------------------------------------------------------------
// Span-name interning: &'static str -> dense u32 id
// ---------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    // Span names are 'static literals, so the pointer identifies the
    // name; a tiny per-thread linear cache keeps the global lock off
    // the span hot path after each name's first use on a thread.
    static NAME_CACHE: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
}

fn intern(name: &'static str) -> u32 {
    let key = name.as_ptr() as usize;
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, id)) = cache.iter().find(|(k, _)| *k == key) {
            return *id;
        }
        let mut names = names().lock().unwrap_or_else(PoisonError::into_inner);
        let id = match names.iter().position(|n| *n == name) {
            Some(i) => i as u32,
            None => {
                names.push(name);
                (names.len() - 1) as u32
            }
        };
        cache.push((key, id));
        id
    })
}

// ---------------------------------------------------------------------
// Per-thread stacks and their global registry
// ---------------------------------------------------------------------

struct ThreadStack {
    label: String,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_STACK_DEPTH],
}

fn stacks() -> &'static Mutex<Vec<Arc<ThreadStack>>> {
    static STACKS: OnceLock<Mutex<Vec<Arc<ThreadStack>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Holds the thread's stack and deregisters it on thread exit, so dead
/// threads stop contributing idle samples.
struct LocalStack(Arc<ThreadStack>);

impl Drop for LocalStack {
    fn drop(&mut self) {
        let mut stacks = stacks().lock().unwrap_or_else(PoisonError::into_inner);
        stacks.retain(|s| !Arc::ptr_eq(s, &self.0));
    }
}

thread_local! {
    static LOCAL_STACK: RefCell<Option<LocalStack>> = const { RefCell::new(None) };
}

fn with_stack(f: impl FnOnce(&ThreadStack)) {
    LOCAL_STACK.with(|slot| {
        let mut slot = slot.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let label = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
            let stack = Arc::new(ThreadStack {
                label,
                depth: AtomicUsize::new(0),
                frames: [const { AtomicU32::new(0) }; MAX_STACK_DEPTH],
            });
            stacks()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(stack.clone());
            LocalStack(stack)
        });
        f(&local.0);
    });
}

/// Register the calling thread with the profiler immediately (named
/// after the OS thread), so it appears in folded output even before —
/// or without ever — opening a span. Pool workers call this at spawn.
pub fn register_thread() {
    if !cfg!(feature = "enabled") {
        return;
    }
    with_stack(|_| {});
}

pub(crate) fn push_frame(name: &'static str) {
    with_stack(|stack| {
        let depth = stack.depth.load(Ordering::Relaxed);
        if depth < MAX_STACK_DEPTH {
            stack.frames[depth].store(intern(name), Ordering::Relaxed);
        }
        // Release publishes the frame store above to the sampler's
        // Acquire load of depth.
        stack.depth.store(depth + 1, Ordering::Release);
    });
}

pub(crate) fn pop_frame() {
    with_stack(|stack| {
        let depth = stack.depth.load(Ordering::Relaxed);
        stack
            .depth
            .store(depth.saturating_sub(1), Ordering::Release);
    });
}

// ---------------------------------------------------------------------
// The sampler
// ---------------------------------------------------------------------

static ACTIVE_PROFILERS: AtomicUsize = AtomicUsize::new(0);

/// Is at least one sampling profiler currently running? While true,
/// spans maintain their per-thread stacks even when full span recording
/// is off.
#[inline]
pub fn profiling() -> bool {
    cfg!(feature = "enabled") && ACTIVE_PROFILERS.load(Ordering::Relaxed) > 0
}

/// Take one sample of every registered thread's span stack, folding
/// `label;outer;…;inner` keys into `folded`.
pub fn sample_once(folded: &mut BTreeMap<String, u64>) {
    let stacks: Vec<Arc<ThreadStack>> = stacks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let names = names().lock().unwrap_or_else(PoisonError::into_inner);
    for stack in stacks {
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_STACK_DEPTH);
        let mut key = stack.label.clone();
        for frame in &stack.frames[..depth] {
            let id = frame.load(Ordering::Relaxed) as usize;
            key.push(';');
            key.push_str(names.get(id).copied().unwrap_or("?"));
        }
        *folded.entry(key).or_insert(0) += 1;
    }
}

/// A completed profile: folded stack counts plus sampling metadata.
#[derive(Debug, Clone)]
pub struct Profile {
    /// `label;outer;…;inner` → number of samples observed there.
    pub folded: BTreeMap<String, u64>,
    /// Total sampling ticks taken.
    pub samples: u64,
    /// Wall time the profiler ran for.
    pub duration: Duration,
}

impl Profile {
    /// Render in the folded-stack format `inferno` / `flamegraph.pl`
    /// consume: one `stack count` line per distinct stack.
    pub fn to_folded(&self) -> String {
        let mut out = String::with_capacity(self.folded.len() * 48);
        for (stack, count) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// True when no thread was ever observed.
    pub fn is_empty(&self) -> bool {
        self.folded.is_empty()
    }
}

/// A running sampler thread; [`ProfilerHandle::stop`] joins it and
/// returns the [`Profile`].
#[must_use = "the profiler keeps sampling until stop() is called"]
pub struct ProfilerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<Profile>>,
}

impl ProfilerHandle {
    /// Stop sampling and collect the profile.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().unwrap_or_else(|_| Profile {
                folded: BTreeMap::new(),
                samples: 0,
                duration: Duration::ZERO,
            }),
            None => Profile {
                folded: BTreeMap::new(),
                samples: 0,
                duration: Duration::ZERO,
            },
        }
    }
}

impl Drop for ProfilerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Start a background sampler at `hz` samples/sec (clamped to 1..=1000).
/// While it runs, span guards maintain thread stacks even if span
/// recording is disabled.
pub fn start(hz: u64) -> ProfilerHandle {
    let interval = Duration::from_nanos(1_000_000_000 / hz.clamp(1, 1000));
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    ACTIVE_PROFILERS.fetch_add(1, Ordering::Relaxed);
    let join = std::thread::Builder::new()
        .name("snap-profiler".into())
        .spawn(move || {
            let begin = Instant::now();
            let mut folded = BTreeMap::new();
            let mut samples = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let tick = Instant::now();
                sample_once(&mut folded);
                samples += 1;
                TRACE_PROFILE_SAMPLES.incr();
                TRACE_OVERHEAD_NS.add(tick.elapsed().as_nanos() as u64);
            }
            ACTIVE_PROFILERS.fetch_sub(1, Ordering::Relaxed);
            Profile {
                folded,
                samples,
                duration: begin.elapsed(),
            }
        })
        .expect("spawn snap-profiler thread");
    ProfilerHandle {
        stop,
        join: Some(join),
    }
}

/// Sample for `duration` at `hz` and return the profile — the blocking
/// form behind the `/profile?seconds=N` endpoint.
pub fn profile_for(duration: Duration, hz: u64) -> Profile {
    let handle = start(hz);
    std::thread::sleep(duration);
    handle.stop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_shared() {
        let a = intern("test.profile.intern");
        let b = intern("test.profile.intern");
        assert_eq!(a, b);
        let names = names().lock().unwrap();
        assert_eq!(names[a as usize], "test.profile.intern");
    }

    #[test]
    fn push_pop_maintains_the_sampled_stack() {
        register_thread();
        push_frame("test.profile.outer");
        push_frame("test.profile.inner");
        let mut folded = BTreeMap::new();
        sample_once(&mut folded);
        let ours = folded
            .keys()
            .find(|k| k.ends_with("test.profile.outer;test.profile.inner"))
            .cloned();
        pop_frame();
        pop_frame();
        assert!(ours.is_some(), "own stack missing from sample: {folded:?}");
        // After the pops a fresh sample sees this thread idle again.
        let mut after = BTreeMap::new();
        sample_once(&mut after);
        assert!(!after.keys().any(|k| k.contains("test.profile.inner")));
    }

    #[test]
    fn profiler_collects_samples_and_counts_overhead() {
        let before = TRACE_PROFILE_SAMPLES.get();
        register_thread();
        push_frame("test.profile.busy");
        let profile = profile_for(Duration::from_millis(60), 200);
        pop_frame();
        assert!(profile.samples >= 2, "got {} samples", profile.samples);
        assert!(!profile.is_empty());
        assert!(TRACE_PROFILE_SAMPLES.get() > before);
        let folded = profile.to_folded();
        assert!(
            folded.contains("test.profile.busy"),
            "folded output missing busy frame:\n{folded}"
        );
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("stack<space>count");
            count.parse::<u64>().expect("count parses");
        }
    }

    #[test]
    fn profiling_flag_tracks_running_samplers() {
        assert!(!profiling() || ACTIVE_PROFILERS.load(Ordering::Relaxed) > 0);
        let handle = start(500);
        assert!(profiling());
        let _ = handle.stop();
    }
}
