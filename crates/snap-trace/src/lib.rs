//! # snap-trace — unified tracing, metrics, and run reports
//!
//! The paper's headline claims are quantitative (parallelMap speedups,
//! the concession stand's 12-vs-3 timesteps); this crate is the
//! instrumentation substrate that makes those numbers observable in our
//! runtime instead of asserted. Three layers, all lock-cheap:
//!
//! * **Metrics** — [`Counter`] / [`Gauge`] / [`Histogram`] statics
//!   behind a global registry (plus interned ad-hoc metrics): pool jobs
//!   submitted/executed/refused, queue depth, chunk claims, compile
//!   cache hits/misses, shuffle runs and partition sizes, VM frames and
//!   process spawns. Updates are single relaxed atomic RMWs and are
//!   always live.
//! * **Spans** — [`span!`]`("ring_map", len)` records scoped wall-time
//!   begin/end events into per-thread buffers, gated behind a runtime
//!   toggle ([`set_enabled`]) so a disabled span costs one atomic load.
//!   Export as Chrome `trace_event` JSON ([`chrome_trace_json`]) or
//!   JSONL ([`spans_jsonl`]).
//! * **Reports** — [`report()`] snapshots everything into an
//!   [`ExecutionReport`] with table and JSON renderings.
//!
//! Building the crate with `--no-default-features` compiles every
//! instrumentation site down to a no-op (the `enabled` feature).
//!
//! ```
//! snap_trace::set_enabled(true);
//! {
//!     let _s = snap_trace::span!("demo.work", "items" => 3);
//!     snap_trace::well_known::RING_MAP_CALLS.incr();
//! }
//! snap_trace::set_enabled(false);
//! let report = snap_trace::report();
//! assert!(report.counter("ring_map.calls") >= 1);
//! let trace = snap_trace::chrome_trace_json(&snap_trace::collect_spans());
//! assert!(trace.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod serve;
pub mod span;
pub mod window;

pub use export::{chrome_trace_json, chrome_trace_json_with_notes, spans_jsonl};
pub use metrics::{
    counter, gauge, gauge_owned, global_workers, histogram, histogram_owned,
    register_global_workers, well_known, Counter, Gauge, Histogram, HistogramSnapshot,
    WorkerCounters,
};
pub use profile::{profile_for, register_thread, sample_once, Profile, ProfilerHandle};
pub use report::{report, ExecutionReport, SpanSummary};
pub use serve::{prometheus_text, serve, MetricsServer};
pub use span::{
    collect_notes, collect_spans, current_span_id, dropped_notes, dropped_spans, enabled, note,
    set_enabled, span, span_linked, span_linked_with, span_with, take_notes, take_spans, SpanEvent,
    SpanGuard, TraceNote,
};
pub use window::{WINDOW_SECS, WINDOW_SLOTS};
