//! Windowed histogram aggregation: a lock-free ring of time-bucketed
//! windows that answers "p50/p95/p99 over the last minute" while the
//! run is still going.
//!
//! Every [`crate::Histogram`] embeds a [`WindowRing`] of
//! [`WINDOW_SLOTS`] slots, each covering [`WINDOW_SECS`] seconds of
//! wall time. A recorded sample lands in the slot for its wall-clock
//! window (`elapsed / WINDOW_SECS % WINDOW_SLOTS`); when the ring wraps
//! onto a stale slot, the first recorder to notice CAS-claims the slot
//! for the new window and zeroes it. All fields are relaxed atomics, so
//! recording stays a handful of RMWs with no lock — the price is that a
//! reader (or a racing recorder at a window boundary) can observe a
//! slot mid-reset and miscount a few samples. Windows feed live
//! percentile *estimates*, not audited totals; the cumulative histogram
//! fields remain exact.
//!
//! [`crate::HistogramSnapshot::percentile`] estimates quantiles from
//! the power-of-two buckets: the answer is the upper bound of the
//! bucket holding the requested rank, clamped into the observed
//! `[min, max]`, so the estimate is at worst one bucket (2×) coarse.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::HISTOGRAM_BUCKETS;

/// Number of slots in the window ring.
pub const WINDOW_SLOTS: usize = 12;

/// Wall-time covered by one slot, seconds.
pub const WINDOW_SECS: u64 = 5;

const SLOT_NS: u64 = WINDOW_SECS * 1_000_000_000;

/// One time-bucketed window of histogram samples. `epoch` stores the
/// slot's window number plus one (zero = never written), so a reader
/// can tell live slots from stale ones without a separate flag.
#[derive(Debug)]
struct WindowSlot {
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl WindowSlot {
    const fn new() -> WindowSlot {
        WindowSlot {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// The per-histogram ring of [`WINDOW_SLOTS`] windows.
#[derive(Debug)]
pub struct WindowRing {
    slots: [WindowSlot; WINDOW_SLOTS],
}

/// Merged view of the windows covering a trailing time range.
#[derive(Debug, Clone, Copy)]
pub struct WindowStats {
    /// Samples in the merged windows.
    pub count: u64,
    /// Sum of those samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Merged power-of-two bucket counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl WindowRing {
    /// An empty ring (const, so histograms stay `static`-constructible).
    pub const fn new() -> WindowRing {
        WindowRing {
            slots: [const { WindowSlot::new() }; WINDOW_SLOTS],
        }
    }

    /// Record one sample at `now_ns` (nanoseconds since the trace
    /// epoch). Called from [`crate::Histogram::record`]; call sites of
    /// the histogram API never see windows.
    pub fn record(&self, sample: u64, now_ns: u64) {
        let window = now_ns / SLOT_NS;
        let slot = &self.slots[(window % WINDOW_SLOTS as u64) as usize];
        let epoch = window + 1;
        let seen = slot.epoch.load(Ordering::Relaxed);
        if seen != epoch {
            // The ring wrapped onto a stale window: one recorder wins
            // the CAS and zeroes the slot. A racing recorder that lands
            // between the CAS and the reset can lose its sample — a
            // benign boundary race, documented at module level.
            if slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.reset();
            } else if slot.epoch.load(Ordering::Relaxed) != epoch {
                // A different window won the slot concurrently; drop
                // the sample rather than pollute a foreign window.
                return;
            }
        }
        let bucket = (64 - sample.leading_zeros() as usize).saturating_sub(1);
        slot.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(sample, Ordering::Relaxed);
        slot.min.fetch_min(sample, Ordering::Relaxed);
        slot.max.fetch_max(sample, Ordering::Relaxed);
    }

    /// Merge every slot whose window falls within the trailing
    /// `range_secs` seconds before `now_ns` (the current partial window
    /// included).
    pub fn merged(&self, range_secs: u64, now_ns: u64) -> WindowStats {
        let current = now_ns / SLOT_NS;
        let span = (range_secs.div_ceil(WINDOW_SECS)).clamp(1, WINDOW_SLOTS as u64);
        let oldest = (current + 1).saturating_sub(span);
        let mut stats = WindowStats {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch == 0 {
                continue;
            }
            let window = epoch - 1;
            if window < oldest || window > current {
                continue;
            }
            stats.count += slot.count.load(Ordering::Relaxed);
            stats.sum += slot.sum.load(Ordering::Relaxed);
            stats.min = stats.min.min(slot.min.load(Ordering::Relaxed));
            stats.max = stats.max.max(slot.max.load(Ordering::Relaxed));
            for (merged, bucket) in stats.buckets.iter_mut().zip(&slot.buckets) {
                *merged += bucket.load(Ordering::Relaxed);
            }
        }
        if stats.count == 0 {
            stats.min = 0;
        }
        stats
    }
}

impl Default for WindowRing {
    fn default() -> WindowRing {
        WindowRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn samples_land_in_their_window() {
        let ring = WindowRing::new();
        ring.record(100, 0);
        ring.record(200, S);
        ring.record(400, 6 * S); // second window
        let last_minute = ring.merged(60, 7 * S);
        assert_eq!(last_minute.count, 3);
        assert_eq!(last_minute.sum, 700);
        assert_eq!(last_minute.min, 100);
        assert_eq!(last_minute.max, 400);
        let last_window = ring.merged(WINDOW_SECS, 7 * S);
        assert_eq!(last_window.count, 1);
        assert_eq!(last_window.sum, 400);
    }

    #[test]
    fn stale_windows_age_out_of_the_merge() {
        let ring = WindowRing::new();
        ring.record(100, 0);
        // 2 minutes later the sample is outside every merge range even
        // though its slot has not been overwritten yet.
        let stats = ring.merged(60, 120 * S);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.min, 0);
    }

    #[test]
    fn ring_wrap_resets_the_reused_slot() {
        let ring = WindowRing::new();
        ring.record(100, 0);
        // One full ring later the same slot serves a new window; the
        // old contents must not leak into it.
        let wrap_ns = WINDOW_SLOTS as u64 * WINDOW_SECS * S;
        ring.record(900, wrap_ns);
        let stats = ring.merged(WINDOW_SECS, wrap_ns);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.sum, 900);
        assert_eq!(stats.min, 900);
    }

    #[test]
    fn merge_range_is_clamped_to_the_ring() {
        let ring = WindowRing::new();
        ring.record(7, 0);
        let stats = ring.merged(10_000, 1);
        assert_eq!(stats.count, 1);
    }
}
