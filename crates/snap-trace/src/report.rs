//! The per-run [`ExecutionReport`] snapshot.
//!
//! [`crate::report()`] freezes every registered metric plus a summary
//! of the buffered spans into one value that renders as a
//! human-readable table ([`ExecutionReport::to_table`]) or as JSON
//! ([`ExecutionReport::to_json`]). Examples print the table; CI and
//! benches archive the JSON next to the Chrome trace.

use std::fmt::Write as _;

use crate::export::escape_json;
use crate::metrics::{
    dynamic_counters, dynamic_gauges, dynamic_histograms, global_workers, known_counters,
    known_gauges, known_histograms, vm_counters, HistogramSnapshot,
};
use crate::span::{collect_notes, collect_spans, dropped_spans};

/// Aggregate of all recorded spans sharing one name.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// How many spans were recorded under this name.
    pub count: u64,
    /// Sum of their durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time snapshot of every metric and span aggregate.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// `(name, value)` for every non-zero counter, name-sorted.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(&'static str, i64)>,
    /// Snapshot of every histogram with at least one sample.
    pub histograms: Vec<HistogramSnapshot>,
    /// Jobs executed per worker of the process-wide pool (empty until
    /// the pool exists).
    pub executed_per_worker: Vec<u64>,
    /// Per-name span aggregates, name-sorted.
    pub spans: Vec<SpanSummary>,
    /// Spans lost to full thread buffers.
    pub dropped_spans: u64,
    /// Diagnostic messages recorded by [`crate::note`] (panic payloads,
    /// degradation reasons), as `name: message`, timestamp-ordered.
    pub fault_messages: Vec<String>,
}

/// Snapshot the registry: counters, gauges, histograms, the global
/// pool's per-worker totals, and a per-name summary of buffered spans.
pub fn report() -> ExecutionReport {
    // Every known counter is kept, zero or not: the machine-readable
    // report is a *schema* — tools (trace_check, CI assertions) rely on
    // a counter being present even when its subsystem never ran. The
    // human table filters zeros for readability instead.
    let mut counters: Vec<(&'static str, u64)> = known_counters()
        .iter()
        .chain(vm_counters().iter())
        .map(|c| (c.name(), c.get()))
        .chain(dynamic_counters().iter().map(|c| (c.name(), c.get())))
        .collect();
    counters.sort_by_key(|(name, _)| *name);

    let mut gauges: Vec<(&'static str, i64)> = known_gauges()
        .iter()
        .map(|g| (g.name(), g.get()))
        .chain(dynamic_gauges().iter().map(|g| (g.name(), g.get())))
        .collect();
    gauges.sort_by_key(|(name, _)| *name);

    let mut histograms: Vec<HistogramSnapshot> = known_histograms()
        .iter()
        .map(|h| h.snapshot())
        .chain(dynamic_histograms().iter().map(|h| h.snapshot()))
        .filter(|snap| snap.count > 0)
        .collect();
    histograms.sort_by_key(|snap| snap.name);

    let mut by_name: Vec<SpanSummary> = Vec::new();
    for event in collect_spans() {
        match by_name.iter_mut().find(|s| s.name == event.name) {
            Some(summary) => {
                summary.count += 1;
                summary.total_ns += event.dur_ns;
                summary.max_ns = summary.max_ns.max(event.dur_ns);
            }
            None => by_name.push(SpanSummary {
                name: event.name,
                count: 1,
                total_ns: event.dur_ns,
                max_ns: event.dur_ns,
            }),
        }
    }
    by_name.sort_by_key(|s| s.name);

    ExecutionReport {
        counters,
        gauges,
        histograms,
        executed_per_worker: global_workers().map(|w| w.snapshot()).unwrap_or_default(),
        spans: by_name,
        dropped_spans: dropped_spans(),
        fault_messages: collect_notes()
            .into_iter()
            .map(|n| format!("{}: {}", n.name, n.message))
            .collect(),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ExecutionReport {
    /// Total jobs executed by the process-wide pool across all workers.
    pub fn pool_jobs_executed_total(&self) -> u64 {
        self.executed_per_worker.iter().sum()
    }

    /// Value of a counter by name (0 when absent / never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("snap-trace execution report\n");
        out.push_str("  counters\n");
        // Zero counters stay in the JSON schema but would drown the
        // human table; show only what actually fired.
        let fired: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if fired.is_empty() {
            out.push_str("    (none)\n");
        }
        for (name, value) in fired {
            let _ = writeln!(out, "    {name:<28} {value:>12}");
        }
        out.push_str("  gauges\n");
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "    {name:<28} {value:>12}");
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {:<28} n={} mean={:.1} min={} max={}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        if !self.executed_per_worker.is_empty() {
            let _ = writeln!(
                out,
                "  pool workers: {} executed {:?} (total {})",
                self.executed_per_worker.len(),
                self.executed_per_worker,
                self.pool_jobs_executed_total()
            );
            // The work-stealing scheduler's dequeue breakdown, next to
            // the per-worker totals it explains: where each executed job
            // was dequeued from, how often workers slept, and how many
            // refused jobs ran inline on the submitter.
            let _ = writeln!(
                out,
                "  scheduler: local={} injector={} stolen={} parks={} inline={} spans_dropped={}",
                self.counter("pool.dequeue_local"),
                self.counter("pool.dequeue_injector"),
                self.counter("pool.jobs_stolen"),
                self.counter("pool.worker_parks"),
                self.counter("pool.jobs_inline"),
                self.counter("trace.spans_dropped"),
            );
        }
        // The fault-tolerance line: every panicked attempt is either
        // retried or final, so panicked == retries + final — a reader
        // can check the reconciliation straight off the report.
        let panicked = self.counter("pool.jobs_panicked");
        let faulty = panicked > 0
            || self.counter("fault.deadlines_exceeded") > 0
            || self.counter("fault.degraded_runs") > 0
            || self.counter("fault.injected_delays") > 0;
        if faulty {
            let _ = writeln!(
                out,
                "  faults: panicked={} retries={} final={} deadline={} \
                 injected_panics={} injected_delays={} reassigned={} degraded={}",
                panicked,
                self.counter("fault.retries_scheduled"),
                self.counter("fault.failures_final"),
                self.counter("fault.deadlines_exceeded"),
                self.counter("fault.injected_panics"),
                self.counter("fault.injected_delays"),
                self.counter("fault.items_reassigned"),
                self.counter("fault.degraded_runs"),
            );
        }
        if !self.fault_messages.is_empty() {
            out.push_str("  fault messages (most recent last)\n");
            // The tail is the interesting part of a long failure run.
            let skip = self.fault_messages.len().saturating_sub(16);
            if skip > 0 {
                let _ = writeln!(out, "    … {skip} earlier message(s) elided");
            }
            for message in &self.fault_messages[skip..] {
                let _ = writeln!(out, "    {message}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("  spans\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "    {:<28} n={:<6} total={:<10} max={}",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(out, "  dropped spans: {}", self.dropped_spans);
        }
        out
    }

    /// Render as a machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(h.name, &mut out);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            );
        }
        out.push_str("},\"executed_per_worker\":[");
        for (i, n) in self.executed_per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("],\"spans\":{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(s.name, &mut out);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.max_ns
            );
        }
        let _ = write!(out, "}},\"dropped_spans\":{}", self.dropped_spans);
        out.push_str(",\"fault_messages\":[");
        for (i, message) in self.fault_messages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(message, &mut out);
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::well_known;

    #[test]
    fn report_includes_incremented_counters() {
        well_known::RING_MAP_CALLS.incr();
        let report = report();
        assert!(report.counter("ring_map.calls") >= 1);
        assert!(report.to_table().contains("ring_map.calls"));
        assert!(report.to_json().contains("\"ring_map.calls\":"));
    }

    #[test]
    fn json_report_is_balanced() {
        let json = report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"executed_per_worker\":["));
        assert!(json.contains("\"dropped_spans\":"));
    }

    #[test]
    fn absent_counter_reads_zero() {
        assert_eq!(report().counter("no.such.metric"), 0);
    }

    #[test]
    fn fault_counters_and_messages_surface_in_renderings() {
        well_known::POOL_JOBS_PANICKED.incr();
        well_known::FAULT_RETRIES_SCHEDULED.incr();
        crate::span::note("test.report_fault", "worker panic recorded");
        let report = report();
        assert!(report.counter("pool.jobs_panicked") >= 1);
        let table = report.to_table();
        assert!(table.contains("faults: panicked="));
        assert!(table.contains("fault messages (most recent last)"));
        assert!(table.contains("test.report_fault: worker panic recorded"));
        let json = report.to_json();
        assert!(json.contains("\"fault_messages\":["));
        assert!(json.contains("test.report_fault: worker panic recorded"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
