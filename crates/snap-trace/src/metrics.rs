//! Counters, gauges, and histograms behind the global registry.
//!
//! Every metric is a plain atomic: updates are one relaxed RMW with no
//! locking on any hot path. The well-known runtime metrics (pool, ring
//! map, compile cache, shuffle, VM) are `static`s so call sites pay no
//! lookup at all; ad-hoc metrics can be interned at runtime through
//! [`counter`] / [`gauge`] / [`histogram`], which hand back `&'static`
//! references from a leak-once registry.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::window::WindowRing;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const, so counters can be `static`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, live worker counts).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn decr(&self) {
        self.add(-1);
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, n: i64) {
        #[cfg(feature = "enabled")]
        self.value.store(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, with bucket 0 also absorbing zero.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples (nanoseconds, sizes, …)
/// with power-of-two buckets plus exact count/sum/min/max, and a
/// windowed ring ([`WindowRing`]) answering quantiles over the trailing
/// minute while the run is live.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    window: WindowRing,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            window: WindowRing::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample (stamped with the current trace-epoch time for
    /// window placement).
    #[inline]
    pub fn record(&self, sample: u64) {
        #[cfg(feature = "enabled")]
        self.record_at(sample, crate::span::now_ns());
        #[cfg(not(feature = "enabled"))]
        let _ = sample;
    }

    /// Record one sample observed at `now_ns` (nanoseconds since the
    /// trace epoch). Call sites that already hold a timestamp (span
    /// guards) use this to skip a second clock read.
    #[inline]
    pub fn record_at(&self, sample: u64, now_ns: u64) {
        #[cfg(feature = "enabled")]
        {
            let bucket = (64 - sample.leading_zeros() as usize).saturating_sub(1);
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(sample, Ordering::Relaxed);
            self.min.fetch_min(sample, Ordering::Relaxed);
            self.max.fetch_max(sample, Ordering::Relaxed);
            self.window.record(sample, now_ns);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (sample, now_ns);
    }

    /// A point-in-time copy of the histogram's summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// A snapshot of only the samples recorded in the trailing
    /// `range_secs` seconds (clamped to the ring's one-minute span) —
    /// the live view behind windowed p50/p95/p99.
    pub fn windowed(&self, range_secs: u64) -> HistogramSnapshot {
        let stats = self.window.merged(range_secs, crate::span::now_ns());
        HistogramSnapshot {
            name: self.name,
            count: stats.count,
            sum: stats.sum,
            min: stats.min,
            max: stats.max,
            buckets: stats.buckets,
        }
    }
}

/// Frozen view of a [`Histogram`], safe to serialize.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// The metric name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-power-of-two bucket counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `p`-quantile (`p` in `0.0..=1.0`) from the
    /// power-of-two buckets: the upper bound of the bucket holding the
    /// requested rank, clamped into the observed `[min, max]`. At worst
    /// one bucket (2×) coarse; exact at the extremes.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let upper = if i >= HISTOGRAM_BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Per-worker executed-job counters with a fixed capacity, readable
/// without any lock.
///
/// This replaces the seed's `Mutex<Vec<Arc<AtomicU64>>>` in
/// `WorkerPool`: slots are allocated once at construction, each worker
/// claims the next slot at spawn time ([`WorkerCounters::add_worker`]),
/// and [`WorkerCounters::snapshot`] is a read-only pass over the live
/// prefix — no mutex on the read path, no allocation on the hot path.
#[derive(Debug)]
pub struct WorkerCounters {
    slots: Box<[AtomicU64]>,
    live: AtomicUsize,
}

impl WorkerCounters {
    /// Allocate `capacity` zeroed slots.
    pub fn new(capacity: usize) -> WorkerCounters {
        WorkerCounters {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            live: AtomicUsize::new(0),
        }
    }

    /// Claim the next worker slot, returning its id. Panics if the
    /// capacity chosen at construction is exhausted.
    pub fn add_worker(&self) -> usize {
        let id = self.live.fetch_add(1, Ordering::Relaxed);
        assert!(
            id < self.slots.len(),
            "WorkerCounters capacity ({}) exhausted",
            self.slots.len()
        );
        id
    }

    /// Count one executed job for worker `id`.
    #[inline]
    pub fn incr(&self, id: usize) {
        self.slots[id].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of live (claimed) worker slots.
    pub fn workers(&self) -> usize {
        self.live.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Jobs executed so far, per live worker — a lock-free read.
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots[..self.workers()]
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect()
    }

    /// Total jobs executed across all workers.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

// ---------------------------------------------------------------------
// Well-known runtime metrics
// ---------------------------------------------------------------------

/// The well-known metrics every runtime crate reports into. Call sites
/// use these statics directly (zero lookup cost); [`known_counters`]
/// and friends enumerate them for reports and exporters.
pub mod well_known {
    use super::{Counter, Gauge, Histogram};

    /// Jobs submitted to the worker pool (accepted sends).
    pub static POOL_JOBS_SUBMITTED: Counter = Counter::new("pool.jobs_submitted");
    /// Jobs completed by pool workers.
    pub static POOL_JOBS_EXECUTED: Counter = Counter::new("pool.jobs_executed");
    /// Jobs the pool refused (shutdown race) that ran inline instead.
    pub static POOL_JOBS_REFUSED: Counter = Counter::new("pool.jobs_refused");
    /// Refused jobs that actually ran inline on the submitting thread —
    /// the shutdown-race fallback, attributed so report totals
    /// reconcile (inline runs are neither submitted nor executed).
    pub static POOL_JOBS_INLINE: Counter = Counter::new("pool.jobs_inline");
    /// Jobs currently queued or running on the pool.
    pub static POOL_QUEUE_DEPTH: Gauge = Gauge::new("pool.queue_depth");
    /// Worker threads spawned (all pools).
    pub static POOL_WORKERS_SPAWNED: Counter = Counter::new("pool.workers_spawned");
    /// Jobs a worker popped from its own deque (LIFO fast path).
    pub static POOL_DEQUEUE_LOCAL: Counter = Counter::new("pool.dequeue_local");
    /// Jobs dequeued from the shared injector.
    pub static POOL_DEQUEUE_INJECTOR: Counter = Counter::new("pool.dequeue_injector");
    /// Jobs stolen FIFO from another worker's deque.
    pub static POOL_JOBS_STOLEN: Counter = Counter::new("pool.jobs_stolen");
    /// Times a worker parked (slept on the wake condvar) when every
    /// queue probe came up empty.
    pub static POOL_WORKER_PARKS: Counter = Counter::new("pool.worker_parks");
    /// Job attempts that panicked inside a worker (counted per attempt,
    /// before any retry decision). Every panicked attempt is either
    /// retried (`fault.retries_scheduled`) or final
    /// (`fault.failures_final`), so the three always reconcile.
    pub static POOL_JOBS_PANICKED: Counter = Counter::new("pool.jobs_panicked");

    /// Panicked attempts granted another try by a `FaultPolicy`.
    pub static FAULT_RETRIES_SCHEDULED: Counter = Counter::new("fault.retries_scheduled");
    /// Panicked attempts whose retry budget was exhausted.
    pub static FAULT_FAILURES_FINAL: Counter = Counter::new("fault.failures_final");
    /// Parallel calls that gave up because their deadline passed.
    pub static FAULT_DEADLINES_EXCEEDED: Counter = Counter::new("fault.deadlines_exceeded");
    /// Panics provoked by the deterministic fault injector.
    pub static FAULT_INJECTED_PANICS: Counter = Counter::new("fault.injected_panics");
    /// Delays provoked by the deterministic fault injector.
    pub static FAULT_INJECTED_DELAYS: Counter = Counter::new("fault.injected_delays");
    /// Items salvaged by the post-parallel sequential reassignment pass
    /// after their retry budget ran out on workers.
    pub static FAULT_ITEMS_REASSIGNED: Counter = Counter::new("fault.items_reassigned");
    /// Parallel blocks that degraded to the sequential path rather than
    /// fail (retry exhaustion, pool shutdown, or a pooled panic).
    pub static FAULT_DEGRADED_RUNS: Counter = Counter::new("fault.degraded_runs");

    /// Simulated cluster nodes that failed mid-run.
    pub static DIST_NODE_FAILURES: Counter = Counter::new("distributed.node_failures");
    /// Items reassigned off failed simulated nodes onto survivors.
    pub static DIST_ITEMS_REASSIGNED: Counter = Counter::new("distributed.items_reassigned");
    /// Straggler items speculatively re-executed on a backup node.
    pub static DIST_SPECULATIVE_RUNS: Counter = Counter::new("distributed.speculative_runs");
    /// Distributed maps that fell back to the master (every node died).
    pub static DIST_DEGRADED_RUNS: Counter = Counter::new("distributed.degraded_runs");

    /// `run_tasks` invocations that went through the pooled mode.
    pub static EXEC_POOLED_CALLS: Counter = Counter::new("exec.pooled_calls");
    /// `run_tasks` invocations that spawned per-call threads.
    pub static EXEC_SPAWN_CALLS: Counter = Counter::new("exec.spawn_calls");
    /// Re-entrant pooled calls that ran inline to avoid deadlock.
    pub static EXEC_REENTRANT_INLINE: Counter = Counter::new("exec.reentrant_inline");
    /// Dynamic-scheduling chunks claimed via `fetch_add`.
    pub static EXEC_CHUNKS_CLAIMED: Counter = Counter::new("exec.chunks_claimed");

    /// `ring_map` / `ring_reduce_groups` calls.
    pub static RING_MAP_CALLS: Counter = Counter::new("ring_map.calls");
    /// Items shipped through ring maps.
    pub static RING_MAP_ITEMS: Counter = Counter::new("ring_map.items");

    /// Ring compile-cache hits.
    pub static COMPILE_CACHE_HITS: Counter = Counter::new("compile_cache.hits");
    /// Ring compile-cache misses (fresh compiles).
    pub static COMPILE_CACHE_MISSES: Counter = Counter::new("compile_cache.misses");

    /// Rings lowered to bytecode (numeric or boxed) at compile time.
    pub static RING_BYTECODE_COMPILES: Counter = Counter::new("ring.bytecode_compiles");
    /// Ring calls served by the unboxed `f64` numeric fast path.
    pub static RING_FASTPATH_CALLS: Counter = Counter::new("ring.fastpath_calls");
    /// Ring calls served by boxed bytecode.
    pub static RING_BYTECODE_CALLS: Counter = Counter::new("ring.bytecode_calls");
    /// Ring calls that fell back to the tree-walking evaluator.
    pub static RING_TREEWALK_CALLS: Counter = Counter::new("ring.treewalk_calls");
    /// `eval_batch` invocations — each covers a whole chunk of elements.
    pub static RING_BATCH_CALLS: Counter = Counter::new("ring.batch_calls");
    /// Elements evaluated by `eval_batch` (no per-element dispatch).
    pub static RING_BATCH_ELEMS: Counter = Counter::new("ring.batch_elems");
    /// Maps that considered the columnar batch tier but declined it
    /// (non-batchable ring, or non-numeric elements in the list).
    pub static RING_BATCH_FALLBACKS: Counter = Counter::new("ring.batch_fallbacks");
    /// Flat `f64` chunks executed by the columnar map path.
    pub static PAR_COLUMNAR_CHUNKS: Counter = Counter::new("par.columnar_chunks");

    /// Shuffles that took the sequential path.
    pub static SHUFFLE_SEQ_RUNS: Counter = Counter::new("shuffle.seq_runs");
    /// Shuffles that took the parallel (partition/sort/merge) path.
    pub static SHUFFLE_PARALLEL_RUNS: Counter = Counter::new("shuffle.parallel_runs");
    /// Pairs shuffled (both paths).
    pub static SHUFFLE_PAIRS: Counter = Counter::new("shuffle.pairs");
    /// Map-side combiner runs (associative reducers only).
    pub static SHUFFLE_COMBINE_RUNS: Counter = Counter::new("shuffle.combine_runs");
    /// Pairs eliminated by the map-side combiner before the shuffle
    /// (pairs in minus partially-reduced pairs out).
    pub static SHUFFLE_PAIRS_COMBINED: Counter = Counter::new("shuffle.pairs_combined");
    /// Size of each hash partition in the parallel shuffle.
    pub static SHUFFLE_PARTITION_SIZE: Histogram = Histogram::new("shuffle.partition_size");
    /// Wall-time of the parallel shuffle's k-way merge, nanoseconds.
    pub static SHUFFLE_MERGE_NS: Histogram = Histogram::new("shuffle.merge_ns");

    /// Simulated-cluster distributed maps.
    pub static DISTRIBUTED_MAPS: Counter = Counter::new("distributed.maps");
    /// Items run through the simulated cluster.
    pub static DISTRIBUTED_ITEMS: Counter = Counter::new("distributed.items");

    /// Spans lost because a thread's buffer hit
    /// [`crate::span::MAX_EVENTS_PER_THREAD`].
    pub static TRACE_SPANS_DROPPED: Counter = Counter::new("trace.spans_dropped");
    /// Nanoseconds snap-trace spent on itself: profiler sampling ticks
    /// plus telemetry HTTP handler time — the self-audit behind the
    /// `a7_trace_overhead` CI gate.
    pub static TRACE_OVERHEAD_NS: Counter = Counter::new("trace.overhead_ns");
    /// Sampling-profiler ticks taken (all profiler runs).
    pub static TRACE_PROFILE_SAMPLES: Counter = Counter::new("trace.profile_samples");
    /// `/metrics` scrapes answered by the telemetry server.
    pub static TRACE_METRICS_SCRAPES: Counter = Counter::new("trace.metrics_scrapes");

    /// Items pulled into a streaming pipeline by its source node.
    pub static STREAM_ITEMS_IN: Counter = Counter::new("stream.items_in");
    /// Items delivered to a streaming pipeline's sink.
    pub static STREAM_ITEMS_OUT: Counter = Counter::new("stream.items_out");
    /// Item-blocks that flowed through streaming channels (all stages).
    pub static STREAM_BLOCKS: Counter = Counter::new("stream.blocks");
    /// Reduce-by-key windows closed (including the end-of-stream flush).
    pub static STREAM_WINDOWS: Counter = Counter::new("stream.windows");
    /// Blocks that panicked past their retry budget and went through
    /// the per-item salvage pass instead of killing the stream.
    pub static STREAM_BLOCKS_SALVAGED: Counter = Counter::new("stream.blocks_salvaged");
    /// Items dropped by salvage because they panicked on every attempt.
    pub static STREAM_ITEMS_DROPPED: Counter = Counter::new("stream.items_dropped");
    /// Times a stage blocked on a full downstream channel
    /// (backpressure waits, not spin retries).
    pub static STREAM_BACKPRESSURE_WAITS: Counter = Counter::new("stream.backpressure_waits");
    /// Blocks currently queued across all streaming channels.
    pub static STREAM_QUEUE_DEPTH: Gauge = Gauge::new("stream.queue_depth");
    /// End-to-end latency of each block, source pack to sink emit,
    /// nanoseconds — feeds the windowed p50/p95/p99 on `/metrics`.
    pub static STREAM_LATENCY_NS: Histogram = Histogram::new("stream.latency_ns");

    /// Emitted C/OpenMP programs compiled by the codegen harness.
    pub static CODEGEN_COMPILES: Counter = Counter::new("codegen.compiles");
    /// Compiled codegen binaries executed to completion.
    pub static CODEGEN_RUNS: Counter = Counter::new("codegen.runs");
    /// Data elements processed by the native (compiled C) tier.
    pub static CODEGEN_NATIVE_ELEMS: Counter = Counter::new("codegen.native_elems");
    /// Codegen runs skipped because no C toolchain was detected.
    pub static CODEGEN_TOOLCHAIN_MISSING: Counter = Counter::new("codegen.toolchain_missing");
    /// Codegen compile-cache hits (binary reused, keyed on source hash).
    pub static CODEGEN_CACHE_HITS: Counter = Counter::new("codegen.cache_hits");
    /// Codegen compile-cache misses (fresh compile required).
    pub static CODEGEN_CACHE_MISSES: Counter = Counter::new("codegen.cache_misses");
    /// Persistent native workers spawned (`--serve` processes started).
    pub static CODEGEN_WORKER_SPAWNS: Counter = Counter::new("codegen.worker_spawns");
    /// Batch frames processed by persistent native workers.
    pub static CODEGEN_WORKER_FRAMES: Counter = Counter::new("codegen.worker_frames");
    /// Dead native workers respawned (exactly-once crash recovery).
    pub static CODEGEN_WORKER_RESTARTS: Counter = Counter::new("codegen.worker_restarts");
    /// Native frames abandoned to the in-process batch tier after a
    /// respawned worker died again (the bottom of the crash ladder).
    pub static CODEGEN_WORKER_FALLBACKS: Counter = Counter::new("codegen.worker_fallbacks");
    /// Warm workers retired: idle past the reap deadline, or holding a
    /// binary whose content-addressed cache key went stale.
    pub static CODEGEN_WORKER_REAPED: Counter = Counter::new("codegen.worker_reaped");

    /// VM frames executed (`step_frame` calls, stolen or not).
    pub static VM_FRAMES: Counter = Counter::new("vm.frames");
    /// VM frames consumed by the interference model.
    pub static VM_FRAMES_STOLEN: Counter = Counter::new("vm.frames_stolen");
    /// Processes spawned (green flag, broadcasts, clones, scripts).
    pub static VM_PROCESSES_SPAWNED: Counter = Counter::new("vm.processes_spawned");
    /// Live processes in the most recently stepped VM.
    pub static VM_LIVE_PROCESSES: Gauge = Gauge::new("vm.live_processes");
    /// Wall-time of each VM frame step, nanoseconds.
    pub static VM_FRAME_NS: Histogram = Histogram::new("vm.frame_ns");
}

/// Every well-known counter, for enumeration by reports.
pub fn known_counters() -> [&'static Counter; 67] {
    use well_known::*;
    [
        &POOL_JOBS_SUBMITTED,
        &POOL_JOBS_EXECUTED,
        &POOL_JOBS_REFUSED,
        &POOL_JOBS_INLINE,
        &POOL_JOBS_PANICKED,
        &POOL_WORKERS_SPAWNED,
        &POOL_DEQUEUE_LOCAL,
        &POOL_DEQUEUE_INJECTOR,
        &POOL_JOBS_STOLEN,
        &POOL_WORKER_PARKS,
        &FAULT_RETRIES_SCHEDULED,
        &FAULT_FAILURES_FINAL,
        &FAULT_DEADLINES_EXCEEDED,
        &FAULT_INJECTED_PANICS,
        &FAULT_INJECTED_DELAYS,
        &FAULT_ITEMS_REASSIGNED,
        &FAULT_DEGRADED_RUNS,
        &EXEC_POOLED_CALLS,
        &EXEC_SPAWN_CALLS,
        &EXEC_REENTRANT_INLINE,
        &EXEC_CHUNKS_CLAIMED,
        &RING_MAP_CALLS,
        &RING_MAP_ITEMS,
        &COMPILE_CACHE_HITS,
        &COMPILE_CACHE_MISSES,
        &RING_BYTECODE_COMPILES,
        &RING_FASTPATH_CALLS,
        &RING_BYTECODE_CALLS,
        &RING_TREEWALK_CALLS,
        &RING_BATCH_CALLS,
        &RING_BATCH_ELEMS,
        &RING_BATCH_FALLBACKS,
        &PAR_COLUMNAR_CHUNKS,
        &SHUFFLE_SEQ_RUNS,
        &SHUFFLE_PARALLEL_RUNS,
        &SHUFFLE_PAIRS,
        &SHUFFLE_COMBINE_RUNS,
        &SHUFFLE_PAIRS_COMBINED,
        &DISTRIBUTED_MAPS,
        &DISTRIBUTED_ITEMS,
        &DIST_NODE_FAILURES,
        &DIST_ITEMS_REASSIGNED,
        &DIST_SPECULATIVE_RUNS,
        &DIST_DEGRADED_RUNS,
        &STREAM_ITEMS_IN,
        &STREAM_ITEMS_OUT,
        &STREAM_BLOCKS,
        &STREAM_WINDOWS,
        &STREAM_BLOCKS_SALVAGED,
        &STREAM_ITEMS_DROPPED,
        &STREAM_BACKPRESSURE_WAITS,
        &CODEGEN_COMPILES,
        &CODEGEN_RUNS,
        &CODEGEN_NATIVE_ELEMS,
        &CODEGEN_TOOLCHAIN_MISSING,
        &CODEGEN_CACHE_HITS,
        &CODEGEN_CACHE_MISSES,
        &CODEGEN_WORKER_SPAWNS,
        &CODEGEN_WORKER_FRAMES,
        &CODEGEN_WORKER_RESTARTS,
        &CODEGEN_WORKER_FALLBACKS,
        &CODEGEN_WORKER_REAPED,
        &VM_PROCESSES_SPAWNED,
        &TRACE_SPANS_DROPPED,
        &TRACE_OVERHEAD_NS,
        &TRACE_PROFILE_SAMPLES,
        &TRACE_METRICS_SCRAPES,
    ]
}

/// Every well-known gauge.
pub fn known_gauges() -> [&'static Gauge; 3] {
    use well_known::*;
    [&POOL_QUEUE_DEPTH, &STREAM_QUEUE_DEPTH, &VM_LIVE_PROCESSES]
}

/// Every well-known histogram.
pub fn known_histograms() -> [&'static Histogram; 4] {
    use well_known::*;
    [
        &SHUFFLE_PARTITION_SIZE,
        &SHUFFLE_MERGE_NS,
        &STREAM_LATENCY_NS,
        &VM_FRAME_NS,
    ]
}

/// The VM frame counters, exported separately so reports can show the
/// scheduler section even when no parallel work ran.
pub fn vm_counters() -> [&'static Counter; 2] {
    use well_known::*;
    [&VM_FRAMES, &VM_FRAMES_STOLEN]
}

// ---------------------------------------------------------------------
// Dynamic (interned) metrics
// ---------------------------------------------------------------------

struct DynamicRegistry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static DYNAMIC: OnceLock<Mutex<DynamicRegistry>> = OnceLock::new();

fn dynamic() -> &'static Mutex<DynamicRegistry> {
    DYNAMIC.get_or_init(|| {
        Mutex::new(DynamicRegistry {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        })
    })
}

/// Intern a counter by name: repeated calls with the same name return
/// the same `&'static Counter`. For hot paths prefer holding the
/// reference (or use a well-known static).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = dynamic().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.counters.iter().find(|c| c.name == name) {
        return existing;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter::new(name)));
    reg.counters.push(leaked);
    leaked
}

/// Intern a gauge by name (see [`counter`]).
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = dynamic().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.gauges.iter().find(|g| g.name == name) {
        return existing;
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
    reg.gauges.push(leaked);
    leaked
}

/// Intern a histogram by name (see [`counter`]).
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = dynamic().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.histograms.iter().find(|h| h.name == name) {
        return existing;
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
    reg.histograms.push(leaked);
    leaked
}

/// Intern a histogram under a runtime-built name (the name is leaked
/// once per distinct string). Used for per-span-name duration
/// histograms (`span.<name>.ns`), where the set of names is only known
/// at runtime; hot paths cache the returned reference.
pub fn histogram_owned(name: String) -> &'static Histogram {
    let mut reg = dynamic().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.histograms.iter().find(|h| h.name == name) {
        return existing;
    }
    let leaked_name: &'static str = Box::leak(name.into_boxed_str());
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(leaked_name)));
    reg.histograms.push(leaked);
    leaked
}

/// Intern a gauge under a runtime-built name (see [`histogram_owned`]).
/// Used for per-stage streaming queue-depth gauges
/// (`stream.stage<N>.queue_depth`), where the stage count is only known
/// when a pipeline is built; hot paths cache the returned reference.
pub fn gauge_owned(name: String) -> &'static Gauge {
    let mut reg = dynamic().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = reg.gauges.iter().find(|g| g.name == name) {
        return existing;
    }
    let leaked_name: &'static str = Box::leak(name.into_boxed_str());
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new(leaked_name)));
    reg.gauges.push(leaked);
    leaked
}

/// Dynamically interned counters, for report enumeration.
pub fn dynamic_counters() -> Vec<&'static Counter> {
    dynamic()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .counters
        .clone()
}

/// Dynamically interned gauges, for report enumeration.
pub fn dynamic_gauges() -> Vec<&'static Gauge> {
    dynamic()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .gauges
        .clone()
}

/// Dynamically interned histograms, for report enumeration.
pub fn dynamic_histograms() -> Vec<&'static Histogram> {
    dynamic()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .histograms
        .clone()
}

// ---------------------------------------------------------------------
// Global-pool worker counters
// ---------------------------------------------------------------------

static GLOBAL_WORKERS: OnceLock<std::sync::Arc<WorkerCounters>> = OnceLock::new();

/// Register the process-wide pool's per-worker counters so reports can
/// show utilization. First registration wins; later calls return the
/// already-registered set (the global pool is created once).
pub fn register_global_workers(counters: std::sync::Arc<WorkerCounters>) {
    let _ = GLOBAL_WORKERS.set(counters);
}

/// The process-wide pool's per-worker counters, if a pool exists yet.
pub fn global_workers() -> Option<std::sync::Arc<WorkerCounters>> {
    GLOBAL_WORKERS.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        static C: Counter = Counter::new("test.counter");
        let before = C.get();
        C.incr();
        C.add(4);
        assert_eq!(C.get(), before + 5);
    }

    #[test]
    fn gauges_go_both_ways() {
        static G: Gauge = Gauge::new("test.gauge");
        G.set(0);
        G.add(10);
        G.decr();
        assert_eq!(G.get(), 9);
        G.add(-9);
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        static H: Histogram = Histogram::new("test.histogram");
        for sample in [1u64, 2, 3, 1024] {
            H.record(sample);
        }
        let snap = H.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1024);
        assert!((snap.mean() - 257.5).abs() < 1e-9);
        // 1 → bucket 0; 2,3 → bucket 1; 1024 → bucket 10.
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[10], 1);
    }

    #[test]
    fn histogram_zero_sample_lands_in_bucket_zero() {
        static H: Histogram = Histogram::new("test.histogram.zero");
        H.record(0);
        let snap = H.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.min, 0);
    }

    #[test]
    fn histogram_windows_and_percentiles_follow_samples() {
        static H: Histogram = Histogram::new("test.histogram.windowed");
        H.record(100);
        H.record(1000);
        let windowed = H.windowed(60);
        assert_eq!(windowed.count, 2, "fresh samples are in the last minute");
        assert_eq!(windowed.sum, 1100);
        let snap = H.snapshot();
        // 100 → bucket [64,128): p50 estimate is that bucket's upper
        // bound clamped into [min, max]; p100 resolves to the max.
        assert_eq!(snap.percentile(0.5), 127);
        assert_eq!(snap.percentile(1.0), 1000);
        assert_eq!(windowed.percentile(1.0), snap.percentile(1.0));
        let empty = Histogram::new("test.histogram.empty_window");
        assert_eq!(empty.windowed(60).count, 0);
        assert_eq!(empty.snapshot().percentile(0.99), 0);
    }

    #[test]
    fn owned_name_histograms_intern_by_value() {
        let a = histogram_owned("test.owned.histogram".to_string());
        let b = histogram_owned("test.owned.histogram".to_string());
        assert!(std::ptr::eq(a, b));
        a.record(5);
        assert!(b.snapshot().count >= 1);
    }

    #[test]
    fn interned_metrics_are_shared() {
        let a = counter("test.dynamic.counter");
        let b = counter("test.dynamic.counter");
        assert!(std::ptr::eq(a, b));
        a.incr();
        assert!(b.get() >= 1);
        assert!(dynamic_counters()
            .iter()
            .any(|c| c.name() == "test.dynamic.counter"));
    }

    #[test]
    fn worker_counters_snapshot_without_locks() {
        let workers = WorkerCounters::new(8);
        let a = workers.add_worker();
        let b = workers.add_worker();
        workers.incr(a);
        workers.incr(b);
        workers.incr(b);
        assert_eq!(workers.workers(), 2);
        assert_eq!(workers.snapshot(), vec![1, 2]);
        assert_eq!(workers.total(), 3);
    }

    #[test]
    fn well_known_lists_are_consistent() {
        for c in known_counters() {
            assert!(!c.name().is_empty());
        }
        let names: Vec<_> = known_counters().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate well-known counter");
    }
}
