//! Shipping rings to workers.
//!
//! The paper's `reportParallelMap` (Listing 2) extracts the user's ringed
//! operator from the stack frame, renders it to source with
//! `mappedCode()`, wraps it in `new Function(...)`, and hands it to
//! Parallel.js; the list data is copied to each Web Worker by
//! `postMessage`'s structured clone. [`ring_map`] is that pipeline in
//! Rust: compile the ring to a [`PureFn`] (compile-time purity check
//! instead of "hope the JS works in the worker"), deep-copy each item
//! across the thread boundary, evaluate, deep-copy the result back.
//!
//! Compilation goes further than the paper's `new Function`: the
//! `PureFn` from [`compile_cached`] carries ring **bytecode** (an
//! unboxed `f64` register program for numeric rings — see
//! `snap_ast::bytecode`), so every execution path that flows through
//! here — pooled, work-stolen, fault-retried, spawn-per-call — runs the
//! compiled form per item, not a tree walk. On top of that sits the
//! **columnar batch tier**: when the ring is batchable and every list
//! element is a `Value::Number`, the map unboxes the list once, moves
//! flat `f64` chunks through the pool, and runs `eval_batch` per chunk
//! with no per-element dispatch at all (see [`ColumnarPolicy`]). The
//! `ring.batch_calls` / `ring.fastpath_calls` / `ring.bytecode_calls` /
//! `ring.treewalk_calls` counters show which tier a run used.

use std::fmt;
use std::sync::Arc;

use snap_ast::pure::{compile_cached, PureFn};
use snap_ast::{EvalError, Ring, Value};
use snap_codegen::worker::{native_pool, native_program_for, NativeProgram};

use crate::executor::{columnar_chunk_size, try_map_slice_with, ExecMode};
use crate::fault::{ExecError, FaultPolicy};
use crate::parallel::Strategy;

/// Whether values crossing the worker boundary are structured-cloned
/// (the Web Worker model) or shared (what raw threads allow). `Share` is
/// only for the `ablate_copy` bench — it quantifies what the copy costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Isolation {
    /// Deep-copy inputs into the worker and results out of it.
    #[default]
    Copy,
    /// Share list storage across threads (safe in Rust — `List` is a
    /// lock-protected `Arc` — but not what Web Workers do).
    Share,
}

/// Whether [`ring_map`] may route all-numeric lists through the
/// columnar batch tier (flat `f64` chunks + `eval_batch`, boxing
/// deferred to the output seam) instead of per-element calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnarPolicy {
    /// Batch when the ring is batchable and every element is a
    /// `Value::Number` (and the list is big enough to pay for the scan).
    #[default]
    Auto,
    /// Always evaluate per element — the ablation baseline, and the
    /// knob differential tests flip to prove output equivalence.
    Disabled,
}

/// Don't bother scanning tiny lists for numeric-ness: below this the
/// per-element path is already cheap. Public so tests and benches can
/// size inputs relative to the threshold.
pub const COLUMNAR_MIN_ITEMS: usize = 16;

/// Whether [`ring_map`] may route large columnar chunks through a warm
/// compiled-C worker (`snap_codegen::worker`) instead of the in-process
/// `eval_batch`. Only rings explicitly registered with
/// [`snap_codegen::worker::register_native_map`] are eligible, so `Auto`
/// is a no-op until someone compiles the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NativePolicy {
    /// Route chunks of ≥ [`NATIVE_MIN_ITEMS`] elements through the
    /// persistent native worker when the ring has a compiled program
    /// and the columnar tier produced flat `f64` chunks. A worker
    /// failure falls back to `eval_batch` for that chunk
    /// (`codegen.worker_fallbacks`) — results are bit-identical either
    /// way.
    #[default]
    Auto,
    /// Never leave the process — the ablation baseline, and the knob
    /// the differential tests flip to prove output equivalence.
    Disabled,
}

/// Below this many elements a frame's fixed cost (two pipe round-trips
/// plus OpenMP fork/join in the worker) outweighs `eval_batch`'s
/// ~nanoseconds-per-element lane loop, so smaller chunks stay
/// in-process. Public so tests and benches can size inputs relative to
/// the threshold.
pub const NATIVE_MIN_ITEMS: usize = 1024;

/// Options for [`ring_map`].
#[derive(Debug, Clone, Copy)]
pub struct RingMapOptions {
    /// Worker count (clamped to ≥ 1).
    pub workers: usize,
    /// Work-distribution strategy.
    pub strategy: Strategy,
    /// Boundary-crossing semantics.
    pub isolation: Isolation,
    /// Pooled (default) or spawn-per-call execution.
    pub exec: ExecMode,
    /// Simulated per-item service time, slept by the worker before
    /// evaluating. Models latency-bound items (a drink takes time to
    /// pour, a request takes time to answer) so worker scaling is
    /// observable even on single-core hosts; `None` for real workloads.
    pub latency: Option<std::time::Duration>,
    /// Fault policy for the call. The default (no retries, no deadline)
    /// reproduces the pre-fault-tolerance behaviour exactly.
    pub policy: FaultPolicy,
    /// Columnar batch tier: on by default, off for ablation.
    pub columnar: ColumnarPolicy,
    /// Persistent native-worker tier: on by default (but inert until a
    /// ring is registered), off for ablation and differential tests.
    pub native: NativePolicy,
}

impl Default for RingMapOptions {
    fn default() -> Self {
        RingMapOptions {
            workers: crate::parallel::default_workers(),
            strategy: Strategy::Dynamic,
            isolation: Isolation::Copy,
            exec: ExecMode::Pooled,
            latency: None,
            policy: FaultPolicy::default(),
            columnar: ColumnarPolicy::default(),
            native: NativePolicy::default(),
        }
    }
}

/// Failure of a fault-aware ring map: either the user's ring reported an
/// evaluation error, or the execution layer itself failed (retry budget
/// exhausted, deadline exceeded). Callers that degrade gracefully match
/// on [`RingMapError::Exec`] to pick the fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum RingMapError {
    /// The ring itself reported an error on some item.
    Eval(EvalError),
    /// The execution layer failed (panics beyond the retry budget, or
    /// the call deadline passed).
    Exec(ExecError),
}

impl fmt::Display for RingMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingMapError::Eval(e) => write!(f, "{e}"),
            RingMapError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RingMapError {}

impl From<RingMapError> for EvalError {
    fn from(err: RingMapError) -> EvalError {
        match err {
            RingMapError::Eval(e) => e,
            RingMapError::Exec(e) => EvalError::Other(e.to_string()),
        }
    }
}

/// Apply a reporter ring to every item in parallel. Results come back in
/// input order; the first error (if any) is reported. Execution-layer
/// failures (retry exhaustion, deadline) are flattened into
/// [`EvalError::Other`]; callers that need to tell them apart use
/// [`ring_map_faulted`].
pub fn ring_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    ring_map_faulted(ring, items, options).map_err(EvalError::from)
}

/// [`ring_map`] with the execution-layer failure kept distinct: the
/// fault-aware entry point for callers that degrade gracefully (the
/// parallel blocks fall back to a sequential map on
/// [`ExecError::RetriesExhausted`], but propagate deadline errors).
pub fn ring_map_faulted(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, RingMapError> {
    let len = items.len();
    snap_trace::well_known::RING_MAP_CALLS.incr();
    snap_trace::well_known::RING_MAP_ITEMS.add(len as u64);
    let _span = snap_trace::span!("ring_map", len);
    let f = compile_cached(&ring).map_err(RingMapError::Eval)?;
    if options.columnar == ColumnarPolicy::Auto
        && options.latency.is_none()
        && len >= COLUMNAR_MIN_ITEMS
    {
        if let Some(inputs) = f.is_batchable().then(|| columnar_f64(&items)).flatten() {
            let native = match options.native {
                NativePolicy::Auto => native_program_for(&ring),
                NativePolicy::Disabled => None,
            };
            return columnar_map(&f, inputs, &options, native.as_ref());
        }
        // A batch-sized map stayed on the per-element path: either the
        // ring is not batchable or the list is not all-numeric.
        snap_trace::well_known::RING_BATCH_FALLBACKS.incr();
    }
    let results = try_map_slice_with(
        &items,
        options.workers,
        options.strategy,
        options.exec,
        &options.policy,
        |item| {
            if let Some(latency) = options.latency {
                std::thread::sleep(latency);
            }
            let input = match options.isolation {
                Isolation::Copy => item.deep_copy(),
                Isolation::Share => item.clone(),
            };
            f.call1(input).map(|v| match options.isolation {
                Isolation::Copy => v.deep_copy(),
                Isolation::Share => v,
            })
        },
    )
    .map_err(RingMapError::Exec)?;
    results
        .into_iter()
        .collect::<Result<Vec<Value>, EvalError>>()
        .map_err(RingMapError::Eval)
}

/// The columnar detection scan: `Some(flat f64s)` when every element is
/// a `Value::Number`, `None` at the first non-number. One pass, no
/// boxing — `to_number` of a `Number` is the identity, so the flat view
/// feeds `eval_batch` the exact values per-element calls would coerce.
fn columnar_f64(items: &[Value]) -> Option<Vec<f64>> {
    let mut flat = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Number(n) => flat.push(*n),
            _ => return None,
        }
    }
    Some(flat)
}

/// The columnar batch tier of [`ring_map_faulted`]: the list moves
/// through the work-stealing pool as flat `f64` chunk descriptors, each
/// task runs one [`PureFn::eval_batch`] over its sub-slice, and results
/// are boxed back to `Value`s only at the single output seam below.
///
/// Chunks are deliberately coarse ([`columnar_chunk_size`]): batch
/// arithmetic is so cheap per element that fine-grained claiming is all
/// overhead. The fault policy still applies — at chunk granularity: an
/// injected panic retries the whole chunk, and exhausted budgets surface
/// as [`RingMapError::Exec`] so callers degrade exactly as they do for
/// the per-element path. Isolation needs no handling here: numbers are
/// plain copies either way.
///
/// When `native` is set (the ring has a registered compiled program and
/// [`NativePolicy::Auto`] is in force), chunks are sized up to at least
/// [`NATIVE_MIN_ITEMS`] and each big-enough chunk becomes one binary
/// frame to the warm worker; undersized tails and worker failures run
/// the same `eval_batch` lane loop, so the output is identical
/// regardless of which side of the pipe computed it.
fn columnar_map(
    f: &PureFn,
    inputs: Vec<f64>,
    options: &RingMapOptions,
    native: Option<&NativeProgram>,
) -> Result<Vec<Value>, RingMapError> {
    let len = inputs.len();
    let _span = snap_trace::span!("columnar_map", len);
    let mut chunk = columnar_chunk_size(len, options.workers);
    if native.is_some() {
        // Coarsen so a typical chunk clears the frame threshold instead
        // of splitting one native-worthy list into all-tail pieces.
        chunk = chunk.max(NATIVE_MIN_ITEMS);
    }
    let chunks: Vec<std::ops::Range<usize>> = (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect();
    let outputs = try_map_slice_with(
        &chunks,
        options.workers,
        options.strategy,
        options.exec,
        &options.policy,
        |range| {
            snap_trace::well_known::PAR_COLUMNAR_CHUNKS.incr();
            if let Some(program) = native {
                if range.len() >= NATIVE_MIN_ITEMS {
                    match native_pool().map_frame(program, &inputs[range.clone()]) {
                        Ok(out) => return out,
                        Err(_) => {
                            // Worker died twice (or never came up):
                            // salvage the chunk in-process.
                            snap_trace::well_known::CODEGEN_WORKER_FALLBACKS.incr();
                        }
                    }
                }
            }
            let mut out = Vec::with_capacity(range.len());
            let batched = f.eval_batch(&inputs[range.clone()], &mut out);
            debug_assert!(batched, "columnar_map requires a batchable ring");
            out
        },
    )
    .map_err(RingMapError::Exec)?;
    // The boxing seam: flat chunk outputs become Values exactly once,
    // in input order.
    let mut values = Vec::with_capacity(len);
    for chunk in outputs {
        values.extend(chunk.into_iter().map(Value::Number));
    }
    Ok(values)
}

/// Validate one mapper output as a `[key, value]` pair (the shape the
/// MapReduce shuffle expects).
pub fn as_map_pair(pair: Value) -> Result<(Value, Value), EvalError> {
    match pair.as_list() {
        Some(list) if list.len() >= 2 => Ok((
            list.item(1).unwrap_or(Value::Nothing),
            list.item(2).unwrap_or(Value::Nothing),
        )),
        _ => Err(EvalError::TypeMismatch {
            expected: "[key, value] pair from the map function",
            got: pair.to_display_string(),
        }),
    }
}

/// Apply a reporter ring to every item, returning `[key, value]` pairs —
/// the worker half of the MapReduce map phase. Identical to [`ring_map`]
/// but validates each result is a pair.
pub fn ring_map_pairs(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<(Value, Value)>, EvalError> {
    ring_map_pairs_faulted(ring, items, options).map_err(EvalError::from)
}

/// [`ring_map_pairs`] with the execution-layer failure kept distinct.
pub fn ring_map_pairs_faulted(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<(Value, Value)>, RingMapError> {
    let mapped = ring_map_faulted(ring, items, options)?;
    mapped
        .into_iter()
        .map(as_map_pair)
        .collect::<Result<Vec<(Value, Value)>, EvalError>>()
        .map_err(RingMapError::Eval)
}

/// Apply a reporter ring once per group in parallel. Each call receives
/// the group's value list as its single argument (the reduce phase).
pub fn ring_reduce_groups(
    ring: Arc<Ring>,
    groups: Vec<(Value, Vec<Value>)>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    ring_reduce_groups_faulted(ring, groups, options).map_err(EvalError::from)
}

/// [`ring_reduce_groups`] with the execution-layer failure kept
/// distinct.
pub fn ring_reduce_groups_faulted(
    ring: Arc<Ring>,
    groups: Vec<(Value, Vec<Value>)>,
    options: RingMapOptions,
) -> Result<Vec<Value>, RingMapError> {
    let len = groups.len();
    snap_trace::well_known::RING_MAP_CALLS.incr();
    snap_trace::well_known::RING_MAP_ITEMS.add(len as u64);
    let _span = snap_trace::span!("ring_reduce_groups", len);
    let f = compile_cached(&ring).map_err(RingMapError::Eval)?;
    let results = try_map_slice_with(
        &groups,
        options.workers,
        options.strategy,
        options.exec,
        &options.policy,
        |(key, values)| {
            let arg = match options.isolation {
                Isolation::Copy => Value::list(values.iter().map(Value::deep_copy).collect()),
                Isolation::Share => Value::list(values.clone()),
            };
            f.call1(arg).map(|reduced| {
                Value::list(vec![
                    key.clone(),
                    match options.isolation {
                        Isolation::Copy => reduced.deep_copy(),
                        Isolation::Share => reduced,
                    },
                ])
            })
        },
    )
    .map_err(RingMapError::Exec)?;
    results
        .into_iter()
        .collect::<Result<Vec<Value>, EvalError>>()
        .map_err(RingMapError::Eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    fn times_ten() -> Arc<Ring> {
        Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
    }

    #[test]
    fn ring_map_matches_paper_fig6() {
        let out = ring_map(
            times_ten(),
            vec![3.into(), 7.into(), 8.into()],
            RingMapOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
    }

    #[test]
    fn ring_map_first_ten_of_large_list() {
        // Fig. 6 shows the first ten inputs/outputs of a long list.
        let items: Vec<Value> = (1..=1000).map(|n| Value::Number(n as f64)).collect();
        let out = ring_map(times_ten(), items, RingMapOptions::default()).unwrap();
        let first_ten: Vec<f64> = out.iter().take(10).map(Value::to_number).collect();
        assert_eq!(
            first_ten,
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        );
    }

    #[test]
    fn pooled_map_runs_the_columnar_batch_tier() {
        // The columnar contract: a numeric ring over an all-Number list
        // must run eval_batch over flat chunks, not per-element calls.
        // Counters are global, so assert deltas: 64 items → at least 64
        // new batch elements, and the treewalk counter must not have
        // absorbed them.
        let batch_before = snap_trace::well_known::RING_BATCH_ELEMS.get();
        let tree_before = snap_trace::well_known::RING_TREEWALK_CALLS.get();
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let out = ring_map(
            times_ten(),
            items,
            RingMapOptions {
                workers: 4,
                exec: ExecMode::Pooled,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), 64);
        assert_eq!(out[7], Value::Number(70.0));
        let batch_delta = snap_trace::well_known::RING_BATCH_ELEMS.get() - batch_before;
        let tree_delta = snap_trace::well_known::RING_TREEWALK_CALLS.get() - tree_before;
        assert!(
            batch_delta >= 64,
            "expected ≥64 batch elements, saw {batch_delta}"
        );
        assert!(
            tree_delta < 64,
            "numeric ring fell back to the tree walk ({tree_delta} calls)"
        );
    }

    #[test]
    fn disabled_columnar_runs_the_scalar_fastpath() {
        // The pre-columnar contract still holds under
        // ColumnarPolicy::Disabled: per-element unboxed fastpath calls.
        let fast_before = snap_trace::well_known::RING_FASTPATH_CALLS.get();
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let out = ring_map(
            times_ten(),
            items,
            RingMapOptions {
                workers: 4,
                columnar: ColumnarPolicy::Disabled,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), 64);
        let fast_delta = snap_trace::well_known::RING_FASTPATH_CALLS.get() - fast_before;
        assert!(
            fast_delta >= 64,
            "expected ≥64 fastpath calls, saw {fast_delta}"
        );
    }

    #[test]
    fn mixed_type_lists_fall_back_to_per_element_calls() {
        // One Text element spoils the columnar scan; output must still
        // be correct and the fallback counter must tick.
        let fallback_before = snap_trace::well_known::RING_BATCH_FALLBACKS.get();
        let mut items: Vec<Value> = (0..32).map(|n| Value::Number(n as f64)).collect();
        items.push(Value::text("  4 ")); // numeric text coerces to 4
        let out = ring_map(times_ten(), items, RingMapOptions::default()).unwrap();
        assert_eq!(out.len(), 33);
        assert_eq!(out[32], Value::Number(40.0));
        assert!(snap_trace::well_known::RING_BATCH_FALLBACKS.get() > fallback_before);
    }

    #[test]
    fn small_lists_skip_the_columnar_scan() {
        // Below COLUMNAR_MIN_ITEMS the per-element path runs directly —
        // and without counting a fallback (nothing was declined).
        let fallback_before = snap_trace::well_known::RING_BATCH_FALLBACKS.get();
        let items: Vec<Value> = (0..COLUMNAR_MIN_ITEMS - 1)
            .map(|n| Value::Number(n as f64))
            .collect();
        let out = ring_map(times_ten(), items, RingMapOptions::default()).unwrap();
        assert_eq!(out.len(), COLUMNAR_MIN_ITEMS - 1);
        assert_eq!(
            snap_trace::well_known::RING_BATCH_FALLBACKS.get(),
            fallback_before
        );
    }

    #[test]
    fn columnar_and_scalar_agree_elementwise() {
        let items: Vec<Value> = (0..500).map(|n| Value::Number(n as f64 * 0.73)).collect();
        let on = ring_map(times_ten(), items.clone(), RingMapOptions::default()).unwrap();
        let off = ring_map(
            times_ten(),
            items,
            RingMapOptions {
                columnar: ColumnarPolicy::Disabled,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(on, off);
    }

    #[test]
    fn copy_isolation_protects_caller_lists() {
        // The ring reports its input list unchanged; under Copy isolation
        // the outputs must not alias the inputs.
        let identity = Arc::new(Ring::reporter(empty_slot()));
        let shared = snap_ast::List::from_vec(vec![1.into()]);
        let out = ring_map(
            identity,
            vec![Value::List(shared.clone())],
            RingMapOptions::default(),
        )
        .unwrap();
        shared.add(2.into());
        assert_eq!(out[0].as_list().unwrap().len(), 1, "worker saw a copy");
    }

    #[test]
    fn share_isolation_aliases() {
        let identity = Arc::new(Ring::reporter(empty_slot()));
        let shared = snap_ast::List::from_vec(vec![1.into()]);
        let out = ring_map(
            identity,
            vec![Value::List(shared.clone())],
            RingMapOptions {
                isolation: Isolation::Share,
                ..Default::default()
            },
        )
        .unwrap();
        shared.add(2.into());
        assert_eq!(out[0].as_list().unwrap().len(), 2, "worker shared storage");
    }

    #[test]
    fn impure_ring_is_rejected() {
        let ring = Arc::new(Ring::reporter(pick_random(num(1.0), num(6.0))));
        assert!(ring_map(ring, vec![1.into()], RingMapOptions::default()).is_err());
    }

    #[test]
    fn eval_errors_propagate_from_workers() {
        // item 5 of the (too short) input list → index error on workers.
        let ring = Arc::new(Ring::reporter(item(num(5.0), empty_slot())));
        let items = vec![Value::list(vec![1.into()]), Value::list(vec![2.into()])];
        let err = ring_map(ring, items, RingMapOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn ring_map_pairs_validates_shape() {
        let good = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let pairs = ring_map_pairs(good, vec!["a".into()], RingMapOptions::default()).unwrap();
        assert_eq!(pairs[0].0, Value::text("a"));
        let bad = Arc::new(Ring::reporter(empty_slot()));
        assert!(ring_map_pairs(bad, vec![1.into()], RingMapOptions::default()).is_err());
    }

    #[test]
    fn ring_reduce_groups_reduces_each_key() {
        let sum = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let groups = vec![
            ("a".into(), vec![1.into(), 2.into()]),
            ("b".into(), vec![10.into()]),
        ];
        let out = ring_reduce_groups(sum, groups, RingMapOptions::default()).unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec!["a".into(), 3.into()]),
                Value::list(vec!["b".into(), 10.into()]),
            ]
        );
    }
}
