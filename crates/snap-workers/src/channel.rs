//! Bounded blocking channels for the streaming tier.
//!
//! A [`BoundedQueue`] is the inter-stage edge of a streaming pipeline:
//! a fixed-capacity FIFO of item-blocks with *blocking backpressure* —
//! a producer that outruns its consumer parks on a condvar instead of
//! growing the queue, so peak memory is set by channel capacity, not by
//! how many items the stream has seen. This is the Mutex+Condvar
//! analogue of the bounded channels that algorithmic-skeleton libraries
//! put between pipeline stages; the coarse lock is fine here because
//! channel traffic is per *block* (hundreds of items), not per item.
//!
//! Both endpoints are cloneable, making the queue MPMC: a farm of stage
//! workers shares one [`Receiver`] (SPMC fan-out) and the workers of
//! the previous stage share one [`Sender`] (MPSC fan-in). Endpoint
//! drops are tracked so the queue closes structurally: when every
//! `Sender` is gone a drained queue yields `None`; when every
//! `Receiver` is gone further sends fail fast rather than block on a
//! full queue nobody will ever drain.
//!
//! [`Sender::poison`] / [`Receiver::poison`] exist for error aborts:
//! they close the queue *and discard its contents* so every peer
//! blocked in `send` or `recv` wakes immediately.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use snap_trace::well_known::{STREAM_BACKPRESSURE_WAITS, STREAM_QUEUE_DEPTH};
use snap_trace::Gauge;

/// The error returned by [`Sender::send`] when the queue is closed (or
/// every receiver is gone); carries the unsent item back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    peak: AtomicUsize,
    /// Optional per-channel depth gauge (e.g. `stream.stage2.queue_depth`),
    /// mirrored into the global `stream.queue_depth` either way.
    gauge: Option<&'static Gauge>,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    senders: usize,
    receivers: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn poison(&self) {
        let mut state = self.lock();
        let dropped = state.items.len();
        state.items.clear();
        state.closed = true;
        drop(state);
        if dropped > 0 {
            STREAM_QUEUE_DEPTH.add(-(dropped as i64));
            if let Some(gauge) = self.gauge {
                gauge.add(-(dropped as i64));
            }
        }
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// A passive observer of one queue: it can poison the channel and read
/// its peak depth, but holds neither endpoint — so keeping a monitor
/// alive never delays the structural close that endpoint drops trigger.
/// This is what a pipeline's abort path holds for every inter-stage
/// edge.
pub struct ChannelMonitor<T> {
    shared: Arc<Shared<T>>,
}

impl<T> ChannelMonitor<T> {
    /// Close the queue and discard everything in it, waking all blocked
    /// peers.
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// Highest queue depth ever observed on this channel.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for ChannelMonitor<T> {
    fn clone(&self) -> ChannelMonitor<T> {
        ChannelMonitor {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// The producing endpoint of a bounded queue. Cloning adds a producer;
/// when the last clone drops, the queue closes for writing and drained
/// receivers see end-of-stream.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming endpoint of a bounded queue. Cloning adds a consumer
/// (a farm worker); when the last clone drops, blocked and future sends
/// fail with [`SendError`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded queue of at most `capacity` in-flight items, with
/// an optional per-channel depth gauge.
pub fn bounded<T>(capacity: usize, gauge: Option<&'static Gauge>) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be nonzero");
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            closed: false,
            senders: 1,
            receivers: 1,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        peak: AtomicUsize::new(0),
        gauge,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `item`, blocking while the queue is at capacity
    /// (backpressure). Fails — returning the item — once the queue is
    /// closed or the last receiver is gone.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.lock();
        loop {
            if state.closed || state.receivers == 0 {
                return Err(SendError(item));
            }
            if state.items.len() < shared.capacity {
                break;
            }
            STREAM_BACKPRESSURE_WAITS.incr();
            state = shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        shared.peak.fetch_max(depth, Ordering::Relaxed);
        drop(state);
        STREAM_QUEUE_DEPTH.incr();
        if let Some(gauge) = shared.gauge {
            gauge.incr();
        }
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Close the queue and discard everything in it, waking all blocked
    /// peers. Used to abort a pipeline on error.
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// Highest queue depth ever observed on this channel.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A passive monitor for this channel.
    pub fn monitor(&self) -> ChannelMonitor<T> {
        ChannelMonitor {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next item, blocking while the queue is empty and
    /// producers remain. Returns `None` at end-of-stream: the queue is
    /// drained and closed (or every sender is gone).
    pub fn recv(&self) -> Option<T> {
        let shared = &*self.shared;
        let mut state = shared.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                STREAM_QUEUE_DEPTH.decr();
                if let Some(gauge) = shared.gauge {
                    gauge.decr();
                }
                shared.not_full.notify_one();
                return Some(item);
            }
            if state.closed || state.senders == 0 {
                return None;
            }
            state = shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue and discard everything in it, waking all blocked
    /// peers. Used to abort a pipeline on error.
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// Highest queue depth ever observed on this channel.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A passive monitor for this channel.
    pub fn monitor(&self) -> ChannelMonitor<T> {
        ChannelMonitor {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // End-of-stream for readers blocked on an empty queue.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Fail writers fast: nobody will ever drain the queue.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip_in_order() {
        let (tx, rx) = bounded(4, None);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None, "drained + all senders gone = EOS");
    }

    #[test]
    fn send_blocks_at_capacity_until_a_recv() {
        let (tx, rx) = bounded(1, None);
        tx.send(1u32).unwrap();
        let producer = thread::spawn(move || {
            tx.send(2).unwrap(); // must block until the main thread recvs
            tx.peak_depth()
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        let peak = producer.join().unwrap();
        assert!(peak <= 1, "peak depth {peak} exceeded capacity 1");
    }

    #[test]
    fn recv_none_after_last_sender_drops() {
        let (tx, rx) = bounded::<u32>(2, None);
        let tx2 = tx.clone();
        drop(tx);
        let reader = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        drop(tx2);
        assert_eq!(reader.join().unwrap(), None);
    }

    #[test]
    fn send_fails_when_all_receivers_gone() {
        let (tx, rx) = bounded(1, None);
        drop(rx);
        let err = tx.send(7u32).unwrap_err();
        assert_eq!(err.0, 7);
    }

    #[test]
    fn poison_wakes_blocked_sender_and_drains() {
        let (tx, rx) = bounded(1, None);
        tx.send(1u32).unwrap();
        let tx2 = tx.clone();
        let producer = thread::spawn(move || tx2.send(2).is_err());
        thread::sleep(Duration::from_millis(10));
        rx.poison();
        assert!(producer.join().unwrap(), "poison must fail blocked sends");
        assert_eq!(rx.recv(), None, "poison discards queued items");
        assert!(tx.send(3).is_err());
    }

    #[test]
    fn shared_receiver_fans_out_every_item_once() {
        let (tx, rx) = bounded(8, None);
        let rx2 = rx.clone();
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut local = Vec::new();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        while let Some(v) = rx.recv() {
            local.push(v);
        }
        let mut all = consumer.join().unwrap();
        all.extend(local);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
