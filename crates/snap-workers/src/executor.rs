//! The pooled execution engine behind every parallel primitive.
//!
//! The paper's Parallel.js model spawns fresh Web Workers per call; the
//! seed mirrored that with one `std::thread::scope` per map. This module
//! is the persistent alternative: a process-wide [`WorkerPool`] is
//! created lazily on first use and every later `parallel map` reuses its
//! threads. Spawn-per-call survives as [`ExecMode::SpawnPerCall`] so the
//! `ablate_sched` / `pool_reuse` benches can quantify the spawn tax.
//!
//! Two more scheduler changes over the seed live here:
//!
//! * **Chunked dynamic claiming** — workers grab blocks of
//!   `max(1, len / (workers * 4))` indices per atomic `fetch_add` instead
//!   of one, cutting contention on the claim counter by the chunk factor
//!   while still leaving enough blocks (≈4 per worker) for load balance.
//! * **Disjoint gather** — each claimed index is written straight into
//!   its own result slot. Index ownership is exclusive by construction
//!   (chunks partition the range), so no mutex guards the output.
//!
//! The pool itself schedules by work-stealing (see [`crate::pool`]): a
//! call from a worker of the global pool pushes its task jobs onto that
//! worker's own deque and *helps* run them while waiting, so nested
//! `parallelMap`s parallelize instead of falling back to a serial
//! inline loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use snap_trace::well_known as metrics;

use crate::parallel::{default_workers, Strategy};
use crate::pool::{on_pool_thread, Job, WaitGroup, WorkerPool};

/// How a parallel call obtains its worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run on the shared, lazily created process-wide pool. Steady-state
    /// parallel calls create no threads.
    #[default]
    Pooled,
    /// Spawn scoped threads for this one call and join them before
    /// returning — the paper-faithful Parallel.js behaviour, kept for
    /// ablation.
    SpawnPerCall,
}

static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`default_workers`] threads.
pub fn global_pool() -> &'static WorkerPool {
    GLOBAL_POOL.get_or_init(|| {
        let pool = WorkerPool::new(default_workers());
        // Let `snap_trace::report()` show the shared pool's per-worker
        // utilization without reaching into this crate.
        snap_trace::register_global_workers(pool.executed_counters());
        pool
    })
}

/// Dynamic-scheduling block size: ~4 blocks per worker, never zero.
pub fn chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers.max(1) * 4)).max(1)
}

/// Run `body(0..tasks)` concurrently and return once all calls finish.
///
/// `body` may borrow from the caller's stack: in pooled mode its
/// lifetime is erased for submission, which is sound because this
/// function never returns before every submitted job has completed
/// (completion tokens are dropped even when a job panics). A panic in
/// any `body` call is re-raised on the caller's thread after all tasks
/// finish, matching scoped-thread join semantics.
pub fn run_tasks(tasks: usize, mode: ExecMode, body: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    if tasks == 1 {
        body(0);
        return;
    }
    match mode {
        ExecMode::SpawnPerCall => {
            metrics::EXEC_SPAWN_CALLS.incr();
            let _span = snap_trace::span!("exec.spawn_per_call", tasks);
            std::thread::scope(|scope| {
                for w in 0..tasks {
                    scope.spawn(move || body(w));
                }
            });
        }
        ExecMode::Pooled => {
            let pool = global_pool();
            if on_pool_thread() && !pool.on_worker_thread() {
                // Re-entrant parallel call from a worker of some *other*
                // pool: we cannot help-drain a foreign pool's queues, so
                // run inline rather than block one pool on another.
                metrics::EXEC_REENTRANT_INLINE.incr();
                for w in 0..tasks {
                    body(w);
                }
                return;
            }
            // From a worker of the global pool itself, submissions land
            // on this worker's own deque and the wait below helps run
            // them (work-stealing), so nested calls parallelize instead
            // of inlining serially.
            metrics::EXEC_POOLED_CALLS.incr();
            let _span = snap_trace::span!("exec.pooled", tasks);
            // Honour explicit oversubscription (latency-bound maps ask
            // for more workers than cores); growth is permanent, so the
            // steady state still spawns nothing.
            pool.ensure_workers(tasks);
            run_scoped_on_pool(pool, tasks, body);
        }
    }
}

fn run_scoped_on_pool(pool: &WorkerPool, tasks: usize, body: &(dyn Fn(usize) + Sync)) {
    // SAFETY: the 'static lifetime is a lie told only to the job queues.
    // Every submitted job holds a WaitGroup token dropped when the job
    // finishes (including by panic, via catch_unwind), and we block on
    // the wait group before returning — `wait_helping` only returns
    // between jobs, once the group is done, and every inline run below
    // is wrapped in `catch_unwind` so no panic can unwind past the wait
    // — so no job can observe `body` after this frame is gone.
    let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
    let wg = WaitGroup::new();
    let panicked = Arc::new(AtomicBool::new(false));
    let run_inline = |w: usize| {
        if catch_unwind(AssertUnwindSafe(|| body_static(w))).is_err() {
            panicked.store(true, Ordering::SeqCst);
        }
    };
    // The caller participates: tasks 1.. go to the pool in one batch
    // (one queue lock, one wake-up for the whole scatter) while task 0
    // runs right here — the thread that would otherwise sit in
    // `wait_helping` claims chunks alongside the workers.
    let batch: Vec<Job> = (1..tasks)
        .zip(wg.tokens(tasks - 1))
        .map(|(w, token)| {
            let panicked = panicked.clone();
            Box::new(move || {
                let _token = token;
                if catch_unwind(AssertUnwindSafe(|| body_static(w))).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
            }) as Job
        })
        .collect();
    let refused = pool.execute_batch(batch).is_err();
    run_inline(0);
    if refused {
        // The whole batch (and its tokens) was dropped by the refused
        // submission (shutdown race); run every index inline.
        for w in 1..tasks {
            metrics::POOL_JOBS_INLINE.incr();
            run_inline(w);
        }
    }
    pool.wait_helping(&wg);
    if panicked.load(Ordering::SeqCst) {
        resume_unwind(Box::new("a pooled parallel task panicked"));
    }
}

/// Pointer to the result slots, shareable across worker tasks.
///
/// Soundness rests on the scheduler: every index in `0..len` is claimed
/// by exactly one task (dynamic chunks come from a shared `fetch_add`;
/// static blocks partition the range), so writes are disjoint and the
/// caller does not read until all tasks have finished.
struct SlotWriter<R> {
    slots: *mut Option<R>,
    len: usize,
}

unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    fn new(out: &mut [Option<R>]) -> SlotWriter<R> {
        SlotWriter {
            slots: out.as_mut_ptr(),
            len: out.len(),
        }
    }

    /// Write the result for `index`.
    ///
    /// # Safety
    /// `index` must be in range and claimed by exactly one task.
    unsafe fn write(&self, index: usize, value: R) {
        debug_assert!(index < self.len);
        *self.slots.add(index) = Some(value);
    }
}

/// Parallel map over a borrowed slice with an explicit execution mode.
/// Results come back in input order.
pub fn map_slice_with<T: Send + Sync, R: Send>(
    items: &[T],
    workers: usize,
    strategy: Strategy,
    mode: ExecMode,
    f: impl Fn(&T) -> R + Send + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let len = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let slots = SlotWriter::new(&mut out);
    let next = AtomicUsize::new(0);
    let chunk = chunk_size(len, workers);

    let worker_body = |w: usize| match strategy {
        Strategy::Dynamic => loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            metrics::EXEC_CHUNKS_CLAIMED.incr();
            let end = (start + chunk).min(len);
            let _span = snap_trace::span!("exec.chunk", "start" => start);
            for (i, item) in items[start..end].iter().enumerate() {
                // SAFETY: fetch_add hands each block to one task.
                unsafe { slots.write(start + i, f(item)) };
            }
        },
        Strategy::Static => {
            let block = len.div_ceil(workers);
            let start = (w * block).min(len);
            let end = ((w + 1) * block).min(len);
            metrics::EXEC_CHUNKS_CLAIMED.incr();
            let _span = snap_trace::span!("exec.chunk", "start" => start);
            for (i, item) in items[start..end].iter().enumerate() {
                // SAFETY: static blocks are disjoint per task index.
                unsafe { slots.write(start + i, f(item)) };
            }
        }
    };
    let map_span = snap_trace::span!("exec.map_slice", len);
    run_tasks(workers, mode, &worker_body);
    drop(map_span);

    out.into_iter()
        .map(|slot| slot.expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_leaves_four_blocks_per_worker() {
        assert_eq!(chunk_size(1000, 5), 50);
        assert_eq!(chunk_size(3, 8), 1);
        assert_eq!(chunk_size(0, 4), 1);
    }

    #[test]
    fn pooled_matches_spawn_per_call() {
        let items: Vec<i64> = (0..503).collect();
        for strategy in [Strategy::Dynamic, Strategy::Static] {
            let pooled = map_slice_with(&items, 4, strategy, ExecMode::Pooled, |&n| n * 7);
            let spawned = map_slice_with(&items, 4, strategy, ExecMode::SpawnPerCall, |&n| n * 7);
            assert_eq!(pooled, spawned);
            assert_eq!(pooled, items.iter().map(|n| n * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pooled_map_borrows_stack_data() {
        let base = [10i64, 20, 30];
        let items: Vec<usize> = (0..base.len()).collect();
        let out = map_slice_with(&items, 2, Strategy::Dynamic, ExecMode::Pooled, |&i| {
            base[i] + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn reentrant_pooled_map_does_not_deadlock() {
        let outer: Vec<i64> = (0..8).collect();
        let out = map_slice_with(&outer, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| {
            let inner: Vec<i64> = (0..50).collect();
            map_slice_with(&inner, 4, Strategy::Dynamic, ExecMode::Pooled, |&m| m + n)
                .into_iter()
                .sum::<i64>()
        });
        let expected: Vec<i64> = (0..8).map(|n| (0..50).map(|m| m + n).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_pooled_task_propagates_and_pool_survives() {
        let items: Vec<i64> = (0..64).collect();
        let result = catch_unwind(|| {
            map_slice_with(&items, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| {
                if n == 13 {
                    panic!("boom");
                }
                n
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
        // The pool is still healthy afterwards.
        let ok = map_slice_with(&items, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| n + 1);
        assert_eq!(ok, items.iter().map(|n| n + 1).collect::<Vec<_>>());
    }

    #[test]
    fn global_pool_is_created_once() {
        let first = global_pool() as *const WorkerPool;
        let _ = map_slice_with(
            &(0..100).collect::<Vec<i64>>(),
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            |&n| n,
        );
        let second = global_pool() as *const WorkerPool;
        assert_eq!(first, second);
    }
}
