//! The pooled execution engine behind every parallel primitive.
//!
//! The paper's Parallel.js model spawns fresh Web Workers per call; the
//! seed mirrored that with one `std::thread::scope` per map. This module
//! is the persistent alternative: a process-wide [`WorkerPool`] is
//! created lazily on first use and every later `parallel map` reuses its
//! threads. Spawn-per-call survives as [`ExecMode::SpawnPerCall`] so the
//! `ablate_sched` / `pool_reuse` benches can quantify the spawn tax.
//!
//! Two more scheduler changes over the seed live here:
//!
//! * **Chunked dynamic claiming** — workers grab blocks of
//!   `max(1, len / (workers * 4))` indices per atomic `fetch_add` instead
//!   of one, cutting contention on the claim counter by the chunk factor
//!   while still leaving enough blocks (≈4 per worker) for load balance.
//! * **Disjoint gather** — each claimed index is written straight into
//!   its own result slot. Index ownership is exclusive by construction
//!   (chunks partition the range), so no mutex guards the output.
//!
//! The pool itself schedules by work-stealing (see [`crate::pool`]): a
//! call from a worker of the global pool pushes its task jobs onto that
//! worker's own deque and *helps* run them while waiting, so nested
//! `parallelMap`s parallelize instead of falling back to a serial
//! inline loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use snap_trace::well_known as metrics;

use crate::fault::{injector, panic_message, ExecError, FaultPolicy};
use crate::parallel::{default_workers, Strategy};
use crate::pool::{on_pool_thread, Job, WaitGroup, WorkerPool};

/// How a parallel call obtains its worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run on the shared, lazily created process-wide pool. Steady-state
    /// parallel calls create no threads.
    #[default]
    Pooled,
    /// Spawn scoped threads for this one call and join them before
    /// returning — the paper-faithful Parallel.js behaviour, kept for
    /// ablation.
    SpawnPerCall,
}

static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`default_workers`] threads.
pub fn global_pool() -> &'static WorkerPool {
    GLOBAL_POOL.get_or_init(|| {
        let pool = WorkerPool::new(default_workers());
        // Let `snap_trace::report()` show the shared pool's per-worker
        // utilization without reaching into this crate.
        snap_trace::register_global_workers(pool.executed_counters());
        pool
    })
}

/// Dynamic-scheduling block size: ~2 blocks per worker, never zero.
///
/// Two blocks per worker (down from the original four) still gives
/// dynamic claiming one round of rebalancing slack while halving the
/// per-block claim overhead — the a1_strategy_skewed ablation showed
/// four blocks losing to static scheduling on uniform numeric work.
pub fn chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers.max(1) * 2)).max(1)
}

/// Minimum elements per columnar chunk. Claiming a chunk costs one
/// atomic fetch-add plus a pool hand-off; `eval_batch` needs at least a
/// few hundred elements per chunk for that overhead to vanish.
pub const COLUMNAR_MIN_CHUNK: usize = 256;

/// Chunk size for columnar (flat `f64`) maps: ~2 chunks per worker like
/// [`chunk_size`], but floored at [`COLUMNAR_MIN_CHUNK`] elements —
/// numeric batch work is so cheap per element that finer chunks are all
/// scheduling overhead. The floor applies only to the columnar tier;
/// latency-bound boxed maps keep the fine-grained sizing above.
pub fn columnar_chunk_size(len: usize, workers: usize) -> usize {
    chunk_size(len, workers).max(COLUMNAR_MIN_CHUNK)
}

/// Run `body(0..tasks)` concurrently and return once all calls finish.
///
/// `body` may borrow from the caller's stack: in pooled mode its
/// lifetime is erased for submission, which is sound because this
/// function never returns before every submitted job has completed
/// (completion tokens are dropped even when a job panics). A panic in
/// any `body` call is re-raised on the caller's thread after all tasks
/// finish, matching scoped-thread join semantics.
pub fn run_tasks(tasks: usize, mode: ExecMode, body: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    if tasks == 1 {
        body(0);
        return;
    }
    match mode {
        ExecMode::SpawnPerCall => {
            metrics::EXEC_SPAWN_CALLS.incr();
            let _span = snap_trace::span!("exec.spawn_per_call", tasks);
            std::thread::scope(|scope| {
                for w in 0..tasks {
                    scope.spawn(move || body(w));
                }
            });
        }
        ExecMode::Pooled => {
            let pool = global_pool();
            if on_pool_thread() && !pool.on_worker_thread() {
                // Re-entrant parallel call from a worker of some *other*
                // pool: we cannot help-drain a foreign pool's queues, so
                // run inline rather than block one pool on another.
                metrics::EXEC_REENTRANT_INLINE.incr();
                for w in 0..tasks {
                    body(w);
                }
                return;
            }
            // From a worker of the global pool itself, submissions land
            // on this worker's own deque and the wait below helps run
            // them (work-stealing), so nested calls parallelize instead
            // of inlining serially.
            metrics::EXEC_POOLED_CALLS.incr();
            let _span = snap_trace::span!("exec.pooled", tasks);
            // Honour explicit oversubscription (latency-bound maps ask
            // for more workers than cores); growth is permanent, so the
            // steady state still spawns nothing.
            pool.ensure_workers(tasks);
            run_scoped_on_pool(pool, tasks, body);
        }
    }
}

/// Count and trace a panic caught at the scoped-executor level. These
/// jobs catch before the pool's own `run_job` guard can see the unwind,
/// so the accounting lives here; the panic is re-raised to the caller
/// after the wait, which makes it final (no retry budget on this path).
fn record_task_panic(w: usize, payload: &(dyn std::any::Any + Send)) {
    metrics::POOL_JOBS_PANICKED.incr();
    metrics::FAULT_FAILURES_FINAL.incr();
    snap_trace::note(
        "exec.task_panic",
        format!("task {w}: {}", crate::fault::panic_message(payload)),
    );
}

fn run_scoped_on_pool(pool: &WorkerPool, tasks: usize, body: &(dyn Fn(usize) + Sync)) {
    // SAFETY: the 'static lifetime is a lie told only to the job queues.
    // Every submitted job holds a WaitGroup token dropped when the job
    // finishes (including by panic, via catch_unwind), and we block on
    // the wait group before returning — `wait_helping` only returns
    // between jobs, once the group is done, and every inline run below
    // is wrapped in `catch_unwind` so no panic can unwind past the wait
    // — so no job can observe `body` after this frame is gone.
    let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
    let wg = WaitGroup::new();
    let panicked = Arc::new(AtomicBool::new(false));
    let run_inline = |w: usize| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body_static(w))) {
            record_task_panic(w, payload.as_ref());
            panicked.store(true, Ordering::SeqCst);
        }
    };
    // The caller participates: tasks 1.. go to the pool in one batch
    // (one queue lock, one wake-up for the whole scatter) while task 0
    // runs right here — the thread that would otherwise sit in
    // `wait_helping` claims chunks alongside the workers.
    let batch: Vec<Job> = (1..tasks)
        .zip(wg.tokens(tasks - 1))
        .map(|(w, token)| {
            let panicked = panicked.clone();
            Box::new(move || {
                let _token = token;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body_static(w))) {
                    record_task_panic(w, payload.as_ref());
                    panicked.store(true, Ordering::SeqCst);
                }
            }) as Job
        })
        .collect();
    let refused = pool.execute_batch(batch).is_err();
    run_inline(0);
    if refused {
        // The whole batch (and its tokens) was dropped by the refused
        // submission (shutdown race); run every index inline.
        for w in 1..tasks {
            metrics::POOL_JOBS_INLINE.incr();
            run_inline(w);
        }
    }
    pool.wait_helping(&wg);
    if panicked.load(Ordering::SeqCst) {
        resume_unwind(Box::new("a pooled parallel task panicked"));
    }
}

/// Pointer to the result slots, shareable across worker tasks.
///
/// Soundness rests on the scheduler: every index in `0..len` is claimed
/// by exactly one task (dynamic chunks come from a shared `fetch_add`;
/// static blocks partition the range), so writes are disjoint and the
/// caller does not read until all tasks have finished.
struct SlotWriter<R> {
    slots: *mut Option<R>,
    len: usize,
}

unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    fn new(out: &mut [Option<R>]) -> SlotWriter<R> {
        SlotWriter {
            slots: out.as_mut_ptr(),
            len: out.len(),
        }
    }

    /// Write the result for `index`.
    ///
    /// # Safety
    /// `index` must be in range and claimed by exactly one task.
    unsafe fn write(&self, index: usize, value: R) {
        debug_assert!(index < self.len);
        *self.slots.add(index) = Some(value);
    }
}

/// Parallel map over a borrowed slice with an explicit execution mode.
/// Results come back in input order.
pub fn map_slice_with<T: Send + Sync, R: Send>(
    items: &[T],
    workers: usize,
    strategy: Strategy,
    mode: ExecMode,
    f: impl Fn(&T) -> R + Send + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // The innermost span open on the *calling* thread (a `ring_map`, a
    // shuffle stage, …): chunk spans executed on pool workers link back
    // to it, so the scatter is causally stitched in the Chrome trace.
    let origin = snap_trace::current_span_id();
    let len = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let slots = SlotWriter::new(&mut out);
    let next = AtomicUsize::new(0);
    let chunk = chunk_size(len, workers);

    let worker_body = |w: usize| match strategy {
        Strategy::Dynamic => loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            metrics::EXEC_CHUNKS_CLAIMED.incr();
            let end = (start + chunk).min(len);
            let _span = snap_trace::span_linked_with("exec.chunk", "start", start as u64, origin);
            for (i, item) in items[start..end].iter().enumerate() {
                // SAFETY: fetch_add hands each block to one task.
                unsafe { slots.write(start + i, f(item)) };
            }
        },
        Strategy::Static => {
            let block = len.div_ceil(workers);
            let start = (w * block).min(len);
            let end = ((w + 1) * block).min(len);
            metrics::EXEC_CHUNKS_CLAIMED.incr();
            let _span = snap_trace::span_linked_with("exec.chunk", "start", start as u64, origin);
            for (i, item) in items[start..end].iter().enumerate() {
                // SAFETY: static blocks are disjoint per task index.
                unsafe { slots.write(start + i, f(item)) };
            }
        }
    };
    let map_span = snap_trace::span!("exec.map_slice", len);
    run_tasks(workers, mode, &worker_body);
    drop(map_span);

    out.into_iter()
        .map(|slot| slot.expect("every index processed exactly once"))
        .collect()
}

/// Fault-aware parallel map: like [`map_slice_with`], but each item runs
/// under `policy` — a panicked item is re-attempted up to
/// `policy.retries` times with exponential backoff, and the whole call
/// observes the policy deadline cooperatively (workers stop *claiming*
/// work once it passes; in-flight items always finish, because pooled
/// jobs borrow the caller's stack and can never be abandoned).
///
/// When the active [`FaultInjector`](crate::fault::FaultInjector) (see
/// [`crate::fault::install_injector`]) is configured, every attempt may
/// be injected with a delay or a panic, deterministically per
/// `(item index, attempt)`.
///
/// Items that exhaust their retry budget are salvaged by one final
/// sequential, injector-free pass on the caller's thread (counted under
/// `fault.items_reassigned`) — but only when the policy actually asked
/// for retries. With `retries == 0` the call reports
/// [`ExecError::RetriesExhausted`] on the first panic, which is the
/// seed's propagate-the-panic behaviour in `Result` form.
pub fn try_map_slice_with<T: Send + Sync, R: Send>(
    items: &[T],
    workers: usize,
    strategy: Strategy,
    mode: ExecMode,
    policy: &FaultPolicy,
    f: impl Fn(&T) -> R + Send + Sync,
) -> Result<Vec<R>, ExecError> {
    let len = items.len();
    if len == 0 {
        return Ok(Vec::new());
    }
    let started = Instant::now();
    let injector = injector();
    let expired = || matches!(policy.deadline, Some(d) if started.elapsed() >= d);
    let workers = workers.max(1).min(len);
    // Causal anchor for chunk, retry, and salvage spans (see
    // `map_slice_with`): the innermost span open on the calling thread.
    let origin = snap_trace::current_span_id();
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let failed: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let deadline_hit = AtomicBool::new(false);

    // The per-item attempt loop, shared by the sequential and parallel
    // paths. Returns the value on success; on budget exhaustion records
    // the failure (counter + note + failed list) and returns None.
    let attempt_item = |index: usize, item: &T| -> Option<R> {
        let mut attempt = 0u32;
        loop {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(inj) = injector {
                    inj.inject(index as u64, attempt);
                }
                f(item)
            }));
            match result {
                Ok(value) => return Some(value),
                Err(payload) => {
                    metrics::POOL_JOBS_PANICKED.incr();
                    let message = panic_message(payload.as_ref());
                    if attempt < policy.retries {
                        metrics::FAULT_RETRIES_SCHEDULED.incr();
                        // The retry span covers the backoff wait and links
                        // back to the originating parallel call, so the
                        // fault ladder's second rung is visible (and
                        // attributable) in the Chrome trace.
                        let _retry = snap_trace::span_linked_with(
                            "fault.retry",
                            "item",
                            index as u64,
                            origin,
                        );
                        std::thread::sleep(policy.backoff_for(attempt));
                        attempt += 1;
                    } else {
                        metrics::FAULT_FAILURES_FINAL.incr();
                        snap_trace::note(
                            "exec.item_failed",
                            format!("item {index} failed after {attempt} retr(ies): {message}"),
                        );
                        failed
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push((index, message));
                        return None;
                    }
                }
            }
        }
    };

    if workers <= 1 || len <= 1 {
        for (index, item) in items.iter().enumerate() {
            if expired() {
                deadline_hit.store(true, Ordering::SeqCst);
                break;
            }
            if let Some(value) = attempt_item(index, item) {
                out[index] = Some(value);
            }
        }
    } else {
        let slots = SlotWriter::new(&mut out);
        let next = AtomicUsize::new(0);
        let chunk = chunk_size(len, workers);
        let worker_body = |w: usize| match strategy {
            Strategy::Dynamic => loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                // Deadline check after the claim: a skipped claimed chunk
                // guarantees unfilled slots, so a deadline error is never
                // reported for a run that actually completed everything.
                if expired() {
                    deadline_hit.store(true, Ordering::SeqCst);
                    break;
                }
                metrics::EXEC_CHUNKS_CLAIMED.incr();
                let end = (start + chunk).min(len);
                let _span =
                    snap_trace::span_linked_with("exec.chunk", "start", start as u64, origin);
                for (i, item) in items[start..end].iter().enumerate() {
                    if let Some(value) = attempt_item(start + i, item) {
                        // SAFETY: fetch_add hands each block to one task.
                        unsafe { slots.write(start + i, value) };
                    }
                }
            },
            Strategy::Static => {
                let block = len.div_ceil(workers);
                let start = (w * block).min(len);
                let end = ((w + 1) * block).min(len);
                if start < end {
                    metrics::EXEC_CHUNKS_CLAIMED.incr();
                }
                let _span =
                    snap_trace::span_linked_with("exec.chunk", "start", start as u64, origin);
                // A static block is one worker's whole share; walk it in
                // chunk-sized strides so the deadline is still observed
                // at a useful granularity.
                let mut cursor = start;
                while cursor < end {
                    if expired() {
                        deadline_hit.store(true, Ordering::SeqCst);
                        break;
                    }
                    let stop = (cursor + chunk).min(end);
                    for (i, item) in items[cursor..stop].iter().enumerate() {
                        if let Some(value) = attempt_item(cursor + i, item) {
                            // SAFETY: static blocks are disjoint per task.
                            unsafe { slots.write(cursor + i, value) };
                        }
                    }
                    cursor = stop;
                }
            }
        };
        let map_span = snap_trace::span!("exec.try_map_slice", len);
        run_tasks(workers, mode, &worker_body);
        drop(map_span);
    }

    if deadline_hit.load(Ordering::SeqCst) {
        let completed = out.iter().filter(|slot| slot.is_some()).count();
        metrics::FAULT_DEADLINES_EXCEEDED.incr();
        snap_trace::note(
            "exec.deadline_exceeded",
            format!("{completed}/{len} items completed before the deadline"),
        );
        return Err(ExecError::DeadlineExceeded {
            completed,
            total: len,
        });
    }

    let failed = failed.into_inner().unwrap_or_else(PoisonError::into_inner);
    if !failed.is_empty() {
        let last_message = failed.last().map(|(_, m)| m.clone()).unwrap_or_default();
        if policy.retries == 0 {
            return Err(ExecError::RetriesExhausted {
                failed_items: failed.len(),
                last_message,
            });
        }
        // Salvage pass: the retry budget was spent under injection, so
        // give the failed items one clean sequential run on the caller's
        // thread. A panic here is genuine (no injector) and final.
        metrics::FAULT_ITEMS_REASSIGNED.add(failed.len() as u64);
        let _salvage =
            snap_trace::span_linked_with("fault.salvage", "items", failed.len() as u64, origin);
        snap_trace::note(
            "exec.salvage",
            format!("re-running {} failed item(s) sequentially", failed.len()),
        );
        for (index, _) in &failed {
            match catch_unwind(AssertUnwindSafe(|| f(&items[*index]))) {
                Ok(value) => out[*index] = Some(value),
                Err(payload) => {
                    metrics::POOL_JOBS_PANICKED.incr();
                    metrics::FAULT_FAILURES_FINAL.incr();
                    let message = panic_message(payload.as_ref());
                    snap_trace::note(
                        "exec.salvage_failed",
                        format!("item {index} failed without injection: {message}"),
                    );
                    return Err(ExecError::RetriesExhausted {
                        failed_items: failed.len(),
                        last_message: message,
                    });
                }
            }
        }
    }

    Ok(out
        .into_iter()
        .map(|slot| slot.expect("every index processed exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_leaves_two_blocks_per_worker() {
        assert_eq!(chunk_size(1000, 5), 100);
        assert_eq!(chunk_size(3, 8), 1);
        assert_eq!(chunk_size(0, 4), 1);
    }

    #[test]
    fn columnar_chunk_size_is_floored() {
        // Small inputs: one chunk swallows everything up to the floor.
        assert_eq!(columnar_chunk_size(1000, 4), COLUMNAR_MIN_CHUNK);
        // Large inputs: ~2 chunks per worker, same as chunk_size.
        assert_eq!(columnar_chunk_size(1_000_000, 4), 125_000);
    }

    #[test]
    fn pooled_matches_spawn_per_call() {
        let items: Vec<i64> = (0..503).collect();
        for strategy in [Strategy::Dynamic, Strategy::Static] {
            let pooled = map_slice_with(&items, 4, strategy, ExecMode::Pooled, |&n| n * 7);
            let spawned = map_slice_with(&items, 4, strategy, ExecMode::SpawnPerCall, |&n| n * 7);
            assert_eq!(pooled, spawned);
            assert_eq!(pooled, items.iter().map(|n| n * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pooled_map_borrows_stack_data() {
        let base = [10i64, 20, 30];
        let items: Vec<usize> = (0..base.len()).collect();
        let out = map_slice_with(&items, 2, Strategy::Dynamic, ExecMode::Pooled, |&i| {
            base[i] + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn reentrant_pooled_map_does_not_deadlock() {
        let outer: Vec<i64> = (0..8).collect();
        let out = map_slice_with(&outer, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| {
            let inner: Vec<i64> = (0..50).collect();
            map_slice_with(&inner, 4, Strategy::Dynamic, ExecMode::Pooled, |&m| m + n)
                .into_iter()
                .sum::<i64>()
        });
        let expected: Vec<i64> = (0..8).map(|n| (0..50).map(|m| m + n).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_pooled_task_propagates_and_pool_survives() {
        let items: Vec<i64> = (0..64).collect();
        let result = catch_unwind(|| {
            map_slice_with(&items, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| {
                if n == 13 {
                    panic!("boom");
                }
                n
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
        // The pool is still healthy afterwards.
        let ok = map_slice_with(&items, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| n + 1);
        assert_eq!(ok, items.iter().map(|n| n + 1).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_with_zero_retries_matches_plain_map() {
        let items: Vec<i64> = (0..503).collect();
        let policy = FaultPolicy::default();
        let out = try_map_slice_with(
            &items,
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            &policy,
            |&n| n * 7,
        )
        .unwrap();
        let plain = map_slice_with(&items, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| n * 7);
        assert_eq!(out, plain);
    }

    #[test]
    fn retries_recover_flaky_items_in_order() {
        use std::sync::atomic::AtomicU32;
        let attempts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        let policy = FaultPolicy::with_retries(2).backoff(std::time::Duration::ZERO);
        let out = try_map_slice_with(
            &items,
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            &policy,
            |&i| {
                let n = attempts[i].fetch_add(1, Ordering::SeqCst);
                if i % 7 == 0 && n == 0 {
                    panic!("flaky item");
                }
                i * 3
            },
        )
        .unwrap();
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_retry_failure_reports_retries_exhausted() {
        let items: Vec<i64> = (0..64).collect();
        let policy = FaultPolicy::default();
        let err = try_map_slice_with(
            &items,
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            &policy,
            |&n| {
                if n == 13 {
                    panic!("boom-13");
                }
                n
            },
        )
        .unwrap_err();
        match err {
            ExecError::RetriesExhausted {
                failed_items,
                last_message,
            } => {
                assert_eq!(failed_items, 1);
                assert!(last_message.contains("boom-13"), "got: {last_message}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn deadline_exceeded_is_reported_not_hung() {
        let items: Vec<u64> = (0..64).collect();
        let policy = FaultPolicy::default().deadline(std::time::Duration::from_millis(5));
        let err = try_map_slice_with(
            &items,
            2,
            Strategy::Dynamic,
            ExecMode::Pooled,
            &policy,
            |_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
            },
        )
        .unwrap_err();
        match err {
            ExecError::DeadlineExceeded { completed, total } => {
                assert_eq!(total, 64);
                assert!(completed < total, "some work must have been skipped");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn exhausted_items_are_salvaged_sequentially_in_order() {
        use std::sync::atomic::AtomicU32;
        let attempts: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        let policy = FaultPolicy::with_retries(1).backoff(std::time::Duration::ZERO);
        // Items 3, 13, 23, 33, 43 fail on both in-worker attempts (the
        // whole retry budget) and only succeed on the third call — which
        // can only be the sequential salvage pass.
        let out = try_map_slice_with(
            &items,
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            &policy,
            |&i| {
                let n = attempts[i].fetch_add(1, Ordering::SeqCst);
                if i % 10 == 3 && n < 2 {
                    panic!("needs salvage");
                }
                i + 1000
            },
        )
        .unwrap();
        assert_eq!(out, (0..50).map(|i| i + 1000).collect::<Vec<_>>());
    }

    #[test]
    fn global_pool_is_created_once() {
        let first = global_pool() as *const WorkerPool;
        let _ = map_slice_with(
            &(0..100).collect::<Vec<i64>>(),
            4,
            Strategy::Dynamic,
            ExecMode::Pooled,
            |&n| n,
        );
        let second = global_pool() as *const WorkerPool;
        assert_eq!(first, second);
    }
}
