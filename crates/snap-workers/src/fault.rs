//! Fault-tolerant execution: retry policies, deadlines, and
//! deterministic fault injection.
//!
//! A browser tab running the paper's Web Workers loses workers all the
//! time — tab throttling, OOM kills, a worker script that throws. The
//! seed runtime instead treated any panicking job as fatal to the whole
//! parallel call. This module is the recovery layer:
//!
//! * [`FaultPolicy`] — how many times a panicked item is retried, with
//!   what exponential backoff, and an optional wall-clock deadline for
//!   the whole call. The default policy (`retries: 0`) reproduces the
//!   seed's behaviour exactly: one attempt, panic propagates.
//! * [`ExecError`] — what a fault-aware call reports instead of
//!   unwinding: the retry budget ran out ([`ExecError::RetriesExhausted`])
//!   or the deadline passed with work still unclaimed
//!   ([`ExecError::DeadlineExceeded`]).
//! * [`FaultInjector`] — deterministic chaos: every injection decision
//!   is a pure hash of `(seed, item, attempt)`, so a run under a fixed
//!   seed injects the same panics at the same items regardless of how
//!   the scheduler interleaves threads. Installed programmatically
//!   ([`install_injector`]) or from `SNAP_FAULT_*` environment
//!   variables, which is how the CI chaos job drives it.
//!
//! Every panicked attempt increments `pool.jobs_panicked` and exactly
//! one of `fault.retries_scheduled` / `fault.failures_final`, so a run
//! report always reconciles:
//! `jobs_panicked == retries_scheduled + failures_final`.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Retry, backoff, and deadline budget for one parallel call.
///
/// `Default` is the zero policy — no retries, no deadline — which makes
/// fault-aware entry points behave exactly like their non-fault
/// counterparts (one attempt per item, first panic is final).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// How many times a panicked item is re-attempted (0 = one attempt).
    pub retries: u32,
    /// Base backoff slept before retry `n` as `backoff * 2^n`, capped at
    /// [`FaultPolicy::MAX_BACKOFF`]. Zero means retry immediately.
    pub backoff: Duration,
    /// Wall-clock budget for the whole call. Cooperative: workers stop
    /// claiming new work once it passes (in-flight items finish), and
    /// the call reports [`ExecError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            retries: 0,
            backoff: Duration::from_millis(1),
            deadline: None,
        }
    }
}

impl FaultPolicy {
    /// Ceiling on a single backoff sleep regardless of attempt count.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(1);

    /// The default policy with `retries` re-attempts per item.
    pub fn with_retries(retries: u32) -> FaultPolicy {
        FaultPolicy {
            retries,
            ..FaultPolicy::default()
        }
    }

    /// Builder: set the base backoff.
    pub fn backoff(mut self, backoff: Duration) -> FaultPolicy {
        self.backoff = backoff;
        self
    }

    /// Builder: set the wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> FaultPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Sleep duration before re-attempt number `attempt` (0-based):
    /// exponential doubling from the base, capped at [`Self::MAX_BACKOFF`].
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.min(16);
        self.backoff.saturating_mul(factor).min(Self::MAX_BACKOFF)
    }
}

/// Failure reported by a fault-aware parallel call. Unlike a panic, an
/// `ExecError` leaves the pool and the caller intact; the degradation
/// ladder in `snap-parallel` decides whether to fall back sequentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// One or more items panicked on every allowed attempt.
    RetriesExhausted {
        /// How many items ran out of attempts.
        failed_items: usize,
        /// Panic message of the last failing attempt.
        last_message: String,
    },
    /// The policy deadline passed with work still unclaimed. The items
    /// already in flight were allowed to finish (the pooled executor
    /// never abandons a borrowed-stack job), but unclaimed items were
    /// skipped, so no complete result set exists.
    DeadlineExceeded {
        /// Items that did complete before the cutoff.
        completed: usize,
        /// Total items requested.
        total: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::RetriesExhausted {
                failed_items,
                last_message,
            } => write!(
                f,
                "retry budget exhausted for {failed_items} item(s); last panic: {last_message}"
            ),
            ExecError::DeadlineExceeded { completed, total } => write!(
                f,
                "deadline exceeded with {completed}/{total} items completed"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!` in practice).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// splitmix64 finalizer — mixes the injector seed with an item key and
/// attempt number into a uniform u64. Pure, so injection decisions are
/// independent of thread interleaving.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic fault injector: decides per `(item, attempt)` whether
/// to panic or sleep, by hashing against a fixed seed. Probabilities are
/// in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Seed shared by every decision this injector makes.
    pub seed: u64,
    /// Probability an attempt panics (before running the item).
    pub panic_p: f64,
    /// Probability an attempt is delayed by `delay` first.
    pub delay_p: f64,
    /// Injected delay duration.
    pub delay: Duration,
}

impl FaultInjector {
    /// An injector with the given seed and no faults configured.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            panic_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_millis(1),
        }
    }

    /// Builder: probability an attempt panics.
    pub fn panic_probability(mut self, p: f64) -> FaultInjector {
        self.panic_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: probability an attempt is delayed, and by how much.
    pub fn delay_probability(mut self, p: f64, delay: Duration) -> FaultInjector {
        self.delay_p = p.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Uniform `[0, 1)` draw for `(key, attempt, salt)` under this seed.
    fn draw(&self, key: u64, attempt: u32, salt: u64) -> f64 {
        let h = mix(self
            .seed
            .wrapping_add(mix(key.wrapping_add(salt)))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        // 53 mantissa bits → exact double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should this `(key, attempt)` panic? Deterministic per seed.
    pub fn should_panic(&self, key: u64, attempt: u32) -> bool {
        self.panic_p > 0.0 && self.draw(key, attempt, 0x70616e69) < self.panic_p
    }

    /// Should this `(key, attempt)` be delayed? Deterministic per seed.
    pub fn should_delay(&self, key: u64, attempt: u32) -> bool {
        self.delay_p > 0.0 && self.draw(key, attempt, 0x64656c61) < self.delay_p
    }

    /// Run the injection for one attempt: maybe sleep, maybe panic (in
    /// that order, so a delayed attempt can still fail). Counts what it
    /// injects.
    pub fn inject(&self, key: u64, attempt: u32) {
        if self.should_delay(key, attempt) {
            snap_trace::well_known::FAULT_INJECTED_DELAYS.incr();
            // The span makes injected stalls visible in the trace (nested
            // under the chunk that suffered them, so the parent chain
            // attributes the delay without an explicit link).
            let _delay = snap_trace::span_with("fault.injected_delay", "item", key);
            std::thread::sleep(self.delay);
        }
        if self.should_panic(key, attempt) {
            snap_trace::well_known::FAULT_INJECTED_PANICS.incr();
            panic!("injected fault: item {key} attempt {attempt}");
        }
    }

    /// Build an injector from `SNAP_FAULT_SEED` / `SNAP_FAULT_PANIC_P` /
    /// `SNAP_FAULT_DELAY_P` / `SNAP_FAULT_DELAY_MS`. `None` unless
    /// `SNAP_FAULT_SEED` is set and at least one probability is positive.
    pub fn from_env() -> Option<FaultInjector> {
        let seed: u64 = std::env::var("SNAP_FAULT_SEED").ok()?.trim().parse().ok()?;
        let parse_f = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or(0.0)
        };
        let panic_p = parse_f("SNAP_FAULT_PANIC_P");
        let delay_p = parse_f("SNAP_FAULT_DELAY_P");
        if panic_p <= 0.0 && delay_p <= 0.0 {
            return None;
        }
        let delay_ms = std::env::var("SNAP_FAULT_DELAY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(1);
        Some(
            FaultInjector::new(seed)
                .panic_probability(panic_p)
                .delay_probability(delay_p, Duration::from_millis(delay_ms)),
        )
    }
}

/// `true` once any injector (installed or env) may be active; lets the
/// per-item hot path skip the state lock entirely in fault-free runs.
static INJECTOR_ACTIVE: AtomicBool = AtomicBool::new(false);
static INJECTOR: Mutex<Option<FaultInjector>> = Mutex::new(None);
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Install (or, with `None`, clear) the process-wide fault injector.
/// Overrides any `SNAP_FAULT_*` environment configuration.
pub fn install_injector(injector: Option<FaultInjector>) {
    ENV_INIT.get_or_init(|| ()); // claim env init so it cannot overwrite us
    *INJECTOR.lock().unwrap_or_else(PoisonError::into_inner) = injector;
    INJECTOR_ACTIVE.store(injector.is_some(), Ordering::SeqCst);
}

/// The currently active injector, if any. First call consults the
/// `SNAP_FAULT_*` environment unless [`install_injector`] ran first.
pub fn injector() -> Option<FaultInjector> {
    ENV_INIT.get_or_init(|| {
        if let Some(env) = FaultInjector::from_env() {
            *INJECTOR.lock().unwrap_or_else(PoisonError::into_inner) = Some(env);
            INJECTOR_ACTIVE.store(true, Ordering::SeqCst);
        }
    });
    if !INJECTOR_ACTIVE.load(Ordering::SeqCst) {
        return None;
    }
    *INJECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_seed_behaviour() {
        let policy = FaultPolicy::default();
        assert_eq!(policy.retries, 0);
        assert!(policy.deadline.is_none());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = FaultPolicy::with_retries(8).backoff(Duration::from_millis(10));
        assert_eq!(policy.backoff_for(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(30), FaultPolicy::MAX_BACKOFF);
        let zero = FaultPolicy::with_retries(3).backoff(Duration::ZERO);
        assert_eq!(zero.backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn injector_decisions_are_deterministic_per_seed() {
        let a = FaultInjector::new(42).panic_probability(0.2);
        let b = FaultInjector::new(42).panic_probability(0.2);
        for key in 0..1000u64 {
            assert_eq!(a.should_panic(key, 0), b.should_panic(key, 0));
            assert_eq!(a.should_panic(key, 1), b.should_panic(key, 1));
        }
    }

    #[test]
    fn injector_rate_is_near_the_configured_probability() {
        let inj = FaultInjector::new(7).panic_probability(0.2);
        let hits = (0..10_000u64).filter(|&k| inj.should_panic(k, 0)).count();
        // 10k draws at p=0.2 → ~2000 ± a few hundred.
        assert!((1600..2400).contains(&hits), "hit rate off: {hits}");
    }

    #[test]
    fn attempts_redraw_independently() {
        let inj = FaultInjector::new(3).panic_probability(0.5);
        let differs = (0..64u64).any(|k| inj.should_panic(k, 0) != inj.should_panic(k, 1));
        assert!(differs, "attempt number must vary the draw");
    }

    #[test]
    fn zero_probability_never_fires() {
        let inj = FaultInjector::new(9);
        assert!((0..100u64).all(|k| !inj.should_panic(k, 0) && !inj.should_delay(k, 0)));
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let s: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let owned: Box<dyn Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(owned.as_ref()), "owned");
        let other: Box<dyn Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }

    #[test]
    fn exec_error_displays_both_variants() {
        let r = ExecError::RetriesExhausted {
            failed_items: 3,
            last_message: "boom".into(),
        };
        assert!(r.to_string().contains("3 item(s)"));
        let d = ExecError::DeadlineExceeded {
            completed: 5,
            total: 10,
        };
        assert!(d.to_string().contains("5/10"));
    }
}
