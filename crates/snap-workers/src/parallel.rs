//! A Parallel.js-shaped API on OS threads.
//!
//! The paper's Listing 1:
//!
//! ```js
//! var p = new Parallel([1,2,3,4], {maxWorkers: 2});
//! p.map(mydouble);
//! console.log(p.data);
//! ```
//!
//! becomes:
//!
//! ```
//! use snap_workers::Parallel;
//! let data = Parallel::new(vec![1, 2, 3, 4])
//!     .with_max_workers(2)
//!     .map(|n| n + n);
//! assert_eq!(data, vec![2, 4, 6, 8]);
//! ```
//!
//! Unlike Parallel.js — which spawns its Web Workers afresh per call —
//! execution runs on the shared process-wide pool by default
//! ([`ExecMode::Pooled`]); the paper-faithful spawn-per-call behaviour
//! stays available through [`ExecMode::SpawnPerCall`]. Results always
//! come back in input order.

use crate::executor::{map_slice_with, ExecMode};

/// How items are handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Workers repeatedly claim the next unprocessed item ("the workers
    /// systematically process the remaining elements from the list until
    /// completed", paper §3.2). Balances skewed workloads.
    #[default]
    Dynamic,
    /// Each worker takes one contiguous block of `len / workers` items up
    /// front. Cheaper coordination, poor balance under skew — the
    /// `ablate_sched` bench quantifies the difference.
    Static,
}

/// Builder mirroring `new Parallel(data, opts)`.
#[derive(Debug)]
pub struct Parallel<T> {
    data: Vec<T>,
    max_workers: usize,
    strategy: Strategy,
    exec: ExecMode,
}

/// The default worker count: hardware concurrency if known, else 4 —
/// exactly the paper's `navigator.hardwareConcurrency || 4` (Listing 2).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl<T: Send + Sync> Parallel<T> {
    /// Wrap the input data.
    pub fn new(data: Vec<T>) -> Parallel<T> {
        Parallel {
            data,
            max_workers: default_workers(),
            strategy: Strategy::Dynamic,
            exec: ExecMode::Pooled,
        }
    }

    /// `{maxWorkers: n}`.
    pub fn with_max_workers(mut self, workers: usize) -> Parallel<T> {
        self.max_workers = workers.max(1);
        self
    }

    /// Select the work-distribution strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Parallel<T> {
        self.strategy = strategy;
        self
    }

    /// Select pooled or spawn-per-call execution.
    pub fn with_exec_mode(mut self, exec: ExecMode) -> Parallel<T> {
        self.exec = exec;
        self
    }

    /// Apply `f` to every item in parallel; results in input order.
    pub fn map<R: Send>(self, f: impl Fn(&T) -> R + Send + Sync) -> Vec<R> {
        let Parallel {
            data,
            max_workers,
            strategy,
            exec,
        } = self;
        map_slice_with(&data, max_workers, strategy, exec, f)
    }

    /// Run `f` on every item in parallel, for its effects.
    pub fn for_each(self, f: impl Fn(&T) + Send + Sync) {
        let _ = self.map(|item| f(item));
    }

    /// Parallel map followed by a sequential fold of the results —
    /// Parallel.js's `reduce` (the per-item mapping runs on workers, the
    /// combination is associative-agnostic and stays ordered).
    pub fn map_reduce<R: Send, A>(
        self,
        f: impl Fn(&T) -> R + Send + Sync,
        init: A,
        fold: impl FnMut(A, R) -> A,
    ) -> A {
        self.map(f).into_iter().fold(init, fold)
    }
}

/// Parallel map over a borrowed slice (no move of the input), using the
/// default execution mode. See [`map_slice_with`] to pick the mode.
pub fn map_slice<T: Send + Sync, R: Send>(
    items: &[T],
    workers: usize,
    strategy: Strategy,
    f: impl Fn(&T) -> R + Send + Sync,
) -> Vec<R> {
    map_slice_with(items, workers, strategy, ExecMode::default(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn listing1_example() {
        // function mydouble(n) { return n+n; }
        let p = Parallel::new(vec![1, 2, 3, 4]).with_max_workers(2);
        assert_eq!(p.map(|n| n + n), vec![2, 4, 6, 8]);
    }

    #[test]
    fn results_stay_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = Parallel::new(items.clone())
            .with_max_workers(8)
            .map(|&n| n * 3);
        assert_eq!(out, items.iter().map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn static_strategy_matches_dynamic_results() {
        let items: Vec<i64> = (0..257).collect();
        let a = map_slice(&items, 4, Strategy::Dynamic, |&n| n * n);
        let b = map_slice(&items, 4, Strategy::Static, |&n| n * n);
        assert_eq!(a, b);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let out = Parallel::new(vec![5, 6]).with_max_workers(1).map(|n| n + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = Parallel::new(Vec::<i32>::new()).map(|n| *n);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_clamped() {
        let out = Parallel::new(vec![1, 2])
            .with_max_workers(64)
            .map(|n| n * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn for_each_touches_every_item() {
        use std::sync::atomic::AtomicI64;
        let sum = AtomicI64::new(0);
        Parallel::new((1..=100i64).collect::<Vec<_>>())
            .with_max_workers(4)
            .for_each(|&n| {
                sum.fetch_add(n, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn map_reduce_combines_in_order() {
        let s = Parallel::new(vec!["a", "b", "c"])
            .with_max_workers(2)
            .map_reduce(|w| w.to_uppercase(), String::new(), |acc, w| acc + &w);
        assert_eq!(s, "ABC");
    }

    #[test]
    fn skewed_work_completes_under_both_strategies() {
        let items: Vec<u64> = (0..64).collect();
        // Item 0 is 100× more expensive.
        let cost = |&n: &u64| {
            let reps = if n == 0 { 10_000 } else { 100 };
            (0..reps).fold(n, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        };
        let a = map_slice(&items, 4, Strategy::Dynamic, cost);
        let b = map_slice(&items, 4, Strategy::Static, cost);
        assert_eq!(a, b);
    }
}
