//! A persistent worker pool.
//!
//! Parallel.js creates its Web Workers anew for every `Parallel` object
//! (paper Listing 1/2). That is faithful but wasteful; this pool is the
//! long-lived alternative the parallel backend uses, and the
//! `ablate_sched`/`ablate_copy` benches compare the two. Workers are OS
//! threads fed from a crossbeam channel — the share-nothing,
//! message-passing shape of HTML5 Web Workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Jobs executed per worker (for tests and load-balance diagnostics).
    executed: Vec<AtomicU64>,
}

/// A fixed-size pool of worker threads.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|id| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("snap-worker-{id}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            shared.executed[id].fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submit a job; it runs on some worker eventually.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("worker channel closed");
    }

    /// Jobs executed so far, per worker.
    pub fn executed_per_worker(&self) -> Vec<u64> {
        self.shared
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Run `n` independent jobs `job(i)` and block until all complete.
    /// State shared with the jobs goes through `Arc`, mirroring how Web
    /// Worker code shares nothing but what is explicitly sent.
    pub fn scatter_gather(&self, n: usize, job: impl Fn(usize) + Send + Sync + 'static) {
        let job = Arc::new(job);
        let wg = crossbeam::sync::WaitGroup::new();
        for i in 0..n {
            let wg = wg.clone();
            let job = job.clone();
            self.execute(move || {
                job(i);
                drop(wg);
            });
        }
        wg.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel: workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(100, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_uses_multiple_workers() {
        let pool = WorkerPool::new(4);
        pool.scatter_gather(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let per_worker = pool.executed_per_worker();
        assert_eq!(per_worker.iter().sum::<u64>(), 64);
        assert!(
            per_worker.iter().filter(|&&n| n > 0).count() > 1,
            "expected more than one worker to participate: {per_worker:?}"
        );
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(5, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(2);
        pool.scatter_gather(10, |_| {});
        drop(pool); // must not hang
    }
}
