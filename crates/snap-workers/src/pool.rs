//! A persistent worker pool with a work-stealing scheduler.
//!
//! Parallel.js creates its Web Workers anew for every `Parallel` object
//! (paper Listing 1/2). That is faithful but wasteful; this pool is the
//! long-lived alternative the parallel backend uses, and the
//! `ablate_sched`/`pool_reuse` benches compare the two. Workers are OS
//! threads — the share-nothing, message-passing shape of HTML5 Web
//! Workers — but the job queue is no longer one mpsc channel behind a
//! mutex shared by every worker. Scheduling is work-stealing:
//!
//! * **Global injector** — external submissions land in one
//!   `Mutex<VecDeque>` pushed/popped at the ends, so the lock is held
//!   for O(1) and is uncontended unless two threads collide on the same
//!   instant (the old design serialized *every* dequeue of *every*
//!   worker on one receiver lock).
//! * **Per-worker deques** — each worker owns a deque. Jobs submitted
//!   from a pool thread (nested `parallelMap` continuations) push onto
//!   the submitting worker's own deque; the owner pops LIFO (newest
//!   first, cache-warm), while idle workers steal FIFO (oldest first)
//!   from a randomly probed victim, so the two ends never contend on
//!   the same job unless the deque holds exactly one.
//! * **Parking** — an idle worker re-checks every queue, then sleeps on
//!   a condvar guarded by a notification epoch. Producers bump the
//!   epoch and wake a sleeper only when the idle count is non-zero, so
//!   the steady state (all workers busy) never touches the sleep lock.
//!
//! Workers survive panicking jobs: each job runs under `catch_unwind`,
//! so a single bad ring does not shrink the pool. Submission is fallible
//! ([`WorkerPool::execute`] returns [`PoolClosed`] once shutdown began)
//! instead of panicking, and [`WorkerPool::scatter_gather`] falls back
//! to running refused jobs on the caller's thread (counted under
//! `pool.jobs_inline`). Per-worker executed counts are taken at
//! *dequeue*, not completion: waiters wake the instant a job's
//! completion token drops (inside the job), so counting before the run
//! keeps every finished job in the totals a quiescent observer reads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use snap_trace::{well_known as metrics, WorkerCounters};

use crate::fault::FaultPolicy;

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hard ceiling on pool growth ([`WorkerPool::ensure_workers`]); far
/// above any sensible worker request, it only guards against runaway
/// `workers` expressions. Also sizes the fixed deque-slot table.
pub const MAX_POOL_WORKERS: usize = 64;

/// How long a helping thread waits on the wait-group condvar before
/// re-probing the queues for stealable work.
const HELP_POLL: Duration = Duration::from_micros(200);

/// Error returned when a job is submitted after the pool started shutting
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("worker pool is closed")
    }
}

impl std::error::Error for PoolClosed {}

/// Identity of the pool worker running on this thread: which pool it
/// belongs to (by `Shared` address), its slot id, and its own deque.
struct WorkerContext {
    pool: usize,
    id: usize,
    local: Arc<LocalDeque>,
}

thread_local! {
    /// Set for the lifetime of every pool worker thread; lets the
    /// executor detect re-entrant parallel calls, and lets `execute`
    /// route submissions from a worker onto that worker's own deque.
    static WORKER_CONTEXT: RefCell<Option<WorkerContext>> = const { RefCell::new(None) };
}

/// `true` when the calling thread is a worker of *any* pool.
pub fn on_pool_thread() -> bool {
    WORKER_CONTEXT.with(|ctx| ctx.borrow().is_some())
}

/// One worker's own job deque. The owner pushes and pops at the back
/// (LIFO — the continuation it just spawned is the cache-warm one);
/// thieves take from the front (FIFO — the oldest job is the one the
/// owner would reach last, so stealing it minimizes contention).
#[derive(Default)]
struct LocalDeque {
    jobs: Mutex<VecDeque<Job>>,
}

impl LocalDeque {
    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
    }

    /// Append a whole batch under one lock acquisition.
    fn push_all(&self, batch: Vec<Job>) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(batch);
    }

    /// Owner end: newest job first.
    fn pop_newest(&self) -> Option<Job> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    /// Thief end: oldest job first.
    fn steal_oldest(&self) -> Option<Job> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

/// State shared between the pool handle and every worker thread.
struct Shared {
    /// External submissions. O(1) push/pop under a lock held only for
    /// the queue operation itself.
    injector: Mutex<VecDeque<Job>>,
    /// Set (under the injector lock) when shutdown begins; pushes that
    /// serialize after the store are refused, so workers that observe
    /// `closed` and then find the queues empty can exit without losing
    /// an accepted job.
    closed: AtomicBool,
    /// Fixed slot table of per-worker deques; slot `i` is set once when
    /// worker `i` spawns and published by the `live` increment.
    deques: Box<[OnceLock<Arc<LocalDeque>>]>,
    /// Number of published deque slots (== spawned workers).
    live: AtomicUsize,
    /// Jobs currently sitting in any queue (injector + every deque).
    /// Approximate by design — it trails pushes and pops by a few
    /// instructions — and used only to decide whether a dequeue should
    /// chain-wake one more peer.
    queued: AtomicUsize,
    /// Workers currently parked or about to park. Producers skip the
    /// sleep lock entirely while this is zero.
    idle: AtomicUsize,
    /// Notification epoch: bumped under the lock by every wake, so a
    /// worker that read the epoch before its final empty scan can never
    /// sleep through a push that happened after that scan.
    epoch: Mutex<u64>,
    wake: Condvar,
}

impl Shared {
    fn addr(self: &Arc<Shared>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Wake one parked worker if any worker is parked.
    fn notify_one(&self) {
        if self.idle.load(Ordering::SeqCst) > 0 {
            let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
            *epoch += 1;
            self.wake.notify_one();
        }
    }

    /// Wake every parked worker (shutdown).
    fn notify_all(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        self.wake.notify_all();
    }
}

/// xorshift64 step — cheap thread-local randomness for victim probing
/// (no external RNG dependency on the steal path).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Chained wake-up, run at every successful dequeue: submission only
/// ever wakes one worker (even for a whole batch), and each worker that
/// pops a job while more remain queued wakes one more peer. Work spreads
/// to exactly as many workers as can pick it up, instead of every batch
/// paying a wake-up per job up front.
fn note_dequeue(shared: &Shared) {
    if shared.queued.fetch_sub(1, Ordering::SeqCst) > 1 {
        shared.notify_one();
    }
}

/// Dequeue one job for worker `id`: own deque LIFO, then the injector,
/// then steal FIFO from a randomly probed victim. Each source increments
/// its observability counter at the moment of the pop.
fn next_job(shared: &Shared, id: usize, local: &LocalDeque, rng: &mut u64) -> Option<Job> {
    // Empty fast path: `queued` counts jobs in every queue, so an idle
    // scan costs one atomic load instead of a lock per queue probed. A
    // racing push is caught by the parking protocol (the producer bumps
    // the epoch only after raising `queued`).
    if shared.queued.load(Ordering::SeqCst) == 0 {
        return None;
    }
    if let Some(job) = local.pop_newest() {
        metrics::POOL_DEQUEUE_LOCAL.incr();
        note_dequeue(shared);
        return Some(job);
    }
    if let Some(job) = shared
        .injector
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_front()
    {
        metrics::POOL_DEQUEUE_INJECTOR.incr();
        note_dequeue(shared);
        return Some(job);
    }
    let live = shared.live.load(Ordering::Acquire);
    if live > 1 {
        let start = (xorshift(rng) as usize) % live;
        for probe in 0..live {
            let victim = (start + probe) % live;
            if victim == id {
                continue;
            }
            if let Some(deque) = shared.deques[victim].get() {
                if let Some(job) = deque.steal_oldest() {
                    metrics::POOL_JOBS_STOLEN.incr();
                    note_dequeue(shared);
                    return Some(job);
                }
            }
        }
    }
    None
}

/// Count a dequeued job (at dequeue, not completion — see the module
/// docs) and run it with panic isolation.
fn run_job(executed: &WorkerCounters, id: usize, job: Job) {
    executed.incr(id);
    metrics::POOL_JOBS_EXECUTED.incr();
    metrics::POOL_QUEUE_DEPTH.decr();
    // A panicking job must not kill the worker; the panic is surfaced to
    // the submitter through whatever completion handle the job carries.
    // The payload is not silently dropped: its message goes into the
    // trace as a `pool.job_panic` note, and the counters record it as a
    // final failure (a raw job carries no retry budget) so the
    // panicked == retries + final reconciliation stays exact.
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
        metrics::POOL_JOBS_PANICKED.incr();
        metrics::FAULT_FAILURES_FINAL.incr();
        snap_trace::note(
            "pool.job_panic",
            format!(
                "worker {id}: {}",
                crate::fault::panic_message(payload.as_ref())
            ),
        );
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    executed: Arc<WorkerCounters>,
    id: usize,
    local: Arc<LocalDeque>,
) {
    WORKER_CONTEXT.with(|ctx| {
        *ctx.borrow_mut() = Some(WorkerContext {
            pool: shared.addr(),
            id,
            local: local.clone(),
        });
    });
    // Register with the sampling profiler immediately so an idle worker
    // shows up in folded stacks (utilization view) from its first tick,
    // not from its first span.
    snap_trace::register_thread();
    let mut rng = (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    loop {
        if let Some(job) = next_job(&shared, id, &local, &mut rng) {
            run_job(&executed, id, job);
            continue;
        }
        // The epoch read must precede the empty re-scans below: a
        // producer that pushes after a scan bumps the epoch, which makes
        // the park predicate fail instead of sleeping through the push.
        // Reading it only on this slow path keeps the hot dequeue loop
        // off the sleep lock entirely.
        let epoch0 = *shared.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(job) = next_job(&shared, id, &local, &mut rng) {
            run_job(&executed, id, job);
            continue;
        }
        if shared.closed.load(Ordering::SeqCst) {
            // Drain: re-scan *after* observing `closed`. Any push that
            // succeeded serialized before the close (both take the
            // injector lock), so this scan sees it; an empty scan here
            // means no accepted job can be left behind.
            match next_job(&shared, id, &local, &mut rng) {
                Some(job) => run_job(&executed, id, job),
                None => break,
            }
            continue;
        }
        // Park: register as idle, re-scan once more (a producer that
        // missed our idle increment must be caught by this scan), then
        // sleep until the epoch moves.
        shared.idle.fetch_add(1, Ordering::SeqCst);
        if let Some(job) = next_job(&shared, id, &local, &mut rng) {
            shared.idle.fetch_sub(1, Ordering::SeqCst);
            run_job(&executed, id, job);
            continue;
        }
        if shared.closed.load(Ordering::SeqCst) {
            shared.idle.fetch_sub(1, Ordering::SeqCst);
            continue; // next iteration drains and exits
        }
        metrics::POOL_WORKER_PARKS.incr();
        {
            let mut epoch = shared.epoch.lock().unwrap_or_else(PoisonError::into_inner);
            while *epoch == epoch0 {
                epoch = shared
                    .wake
                    .wait(epoch)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        shared.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A pool of worker threads. Starts at a fixed size and grows (up to
/// [`MAX_POOL_WORKERS`]) when a caller asks for more concurrency than
/// the pool currently has — necessary for latency-bound workloads that
/// legitimately oversubscribe the CPUs, exactly as a browser happily
/// runs more Web Workers than cores. Threads, once spawned, persist
/// until the pool drops, so steady-state parallel calls create none.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Per-worker executed-job counters. Slots are fixed at
    /// construction ([`MAX_POOL_WORKERS`]); each worker claims its slot
    /// at spawn time, so reads are a lock-free snapshot.
    executed: Arc<WorkerCounters>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(Shared {
                injector: Mutex::new(VecDeque::new()),
                closed: AtomicBool::new(false),
                deques: (0..MAX_POOL_WORKERS).map(|_| OnceLock::new()).collect(),
                live: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                idle: AtomicUsize::new(0),
                epoch: Mutex::new(0),
                wake: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            executed: Arc::new(WorkerCounters::new(MAX_POOL_WORKERS)),
        };
        pool.ensure_workers(workers.max(1));
        pool
    }

    /// Grow the pool to at least `target` workers (clamped to
    /// [`MAX_POOL_WORKERS`]). Never shrinks.
    pub fn ensure_workers(&self, target: usize) {
        let target = target.clamp(1, MAX_POOL_WORKERS);
        // Steady-state fast path: `live` counts spawned workers and the
        // pool never shrinks, so a satisfied target needs no lock.
        if self.shared.live.load(Ordering::Acquire) >= target {
            return;
        }
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        while handles.len() < target {
            // Claiming the slot under the handles lock keeps slot ids
            // aligned with thread spawn order.
            let id = self.executed.add_worker();
            metrics::POOL_WORKERS_SPAWNED.incr();
            let local = Arc::new(LocalDeque::default());
            self.shared.deques[id]
                .set(local.clone())
                .unwrap_or_else(|_| panic!("deque slot {id} claimed twice"));
            // Publish the slot *after* it is set; stealers read `live`
            // with Acquire and only probe published slots.
            self.shared.live.fetch_add(1, Ordering::Release);
            let shared = self.shared.clone();
            let executed = self.executed.clone();
            let handle = std::thread::Builder::new()
                .name(format!("snap-worker-{id}"))
                .spawn(move || worker_loop(shared, executed, id, local))
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when the calling thread is a worker of *this* pool (not
    /// merely of some pool).
    pub fn on_worker_thread(&self) -> bool {
        let addr = self.shared.addr();
        WORKER_CONTEXT.with(|ctx| matches!(&*ctx.borrow(), Some(c) if c.pool == addr))
    }

    /// Submit a job; it runs on some worker eventually. Fails with
    /// [`PoolClosed`] when the pool is shutting down (the job is returned
    /// to the heap and dropped, never silently run). Submissions from a
    /// worker of this pool land on that worker's own deque (LIFO for the
    /// owner, stealable by everyone else); all others go through the
    /// global injector.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let sent = self.submit(Box::new(job));
        match sent {
            Ok(()) => {
                metrics::POOL_JOBS_SUBMITTED.incr();
                // Jobs waiting in a queue; the dequeuer decrements at
                // dequeue (not completion) so a quiescent observer — one
                // whose wait-group already released — never reads a
                // stale nonzero depth.
                metrics::POOL_QUEUE_DEPTH.incr();
            }
            Err(PoolClosed) => metrics::POOL_JOBS_REFUSED.incr(),
        }
        sent
    }

    /// Submit a job that is re-run on the same worker when it panics,
    /// up to `policy.retries` extra attempts with exponential backoff.
    /// The job must be `Fn` (re-callable); each panicked attempt is
    /// counted and traced, and an attempt that exhausts the budget is a
    /// final failure — the worker survives either way.
    pub fn execute_with_policy(
        &self,
        policy: FaultPolicy,
        job: impl Fn() + Send + 'static,
    ) -> Result<(), PoolClosed> {
        // Captured on the submitting thread: retries run on a worker,
        // where the parent stack is empty, so the link is the only thing
        // tying a `fault.retry` span back to the span that submitted it.
        let origin = snap_trace::current_span_id();
        self.execute(move || {
            let mut attempt = 0u32;
            loop {
                match catch_unwind(AssertUnwindSafe(&job)) {
                    Ok(()) => return,
                    Err(payload) => {
                        metrics::POOL_JOBS_PANICKED.incr();
                        snap_trace::note(
                            "pool.job_panic",
                            format!(
                                "attempt {attempt}: {}",
                                crate::fault::panic_message(payload.as_ref())
                            ),
                        );
                        if attempt < policy.retries {
                            metrics::FAULT_RETRIES_SCHEDULED.incr();
                            let _retry = snap_trace::span_linked_with(
                                "fault.retry",
                                "attempt",
                                attempt as u64,
                                origin,
                            );
                            std::thread::sleep(policy.backoff_for(attempt));
                            attempt += 1;
                        } else {
                            metrics::FAULT_FAILURES_FINAL.incr();
                            return;
                        }
                    }
                }
            }
        })
    }

    fn submit(&self, job: Job) -> Result<(), PoolClosed> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(PoolClosed);
        }
        let addr = self.shared.addr();
        let mut job = Some(job);
        // `queued` must be raised BEFORE the job becomes poppable so it
        // is always an upper bound on jobs in the queues — the empty
        // fast path in `next_job` relies on `queued == 0` proving every
        // queue is empty (a drain scan that trusted a stale zero could
        // strand an accepted job at shutdown).
        let pushed_local = WORKER_CONTEXT.with(|ctx| {
            if let Some(ctx) = &*ctx.borrow() {
                if ctx.pool == addr {
                    // Owner push: the worker drains its own deque before
                    // exiting, so this job runs even if shutdown races in.
                    self.shared.queued.fetch_add(1, Ordering::SeqCst);
                    ctx.local.push(job.take().expect("job still unsent"));
                    return true;
                }
            }
            false
        });
        if !pushed_local {
            let mut injector = self
                .shared
                .injector
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Re-check under the lock: `close` sets the flag while
            // holding it, so a push that wins this lock either precedes
            // the close (and is drained) or observes it (and refuses).
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(PoolClosed);
            }
            self.shared.queued.fetch_add(1, Ordering::SeqCst);
            injector.push_back(job.take().expect("job still unsent"));
        }
        self.shared.notify_one();
        Ok(())
    }

    /// Submit a whole batch of jobs with one queue-lock acquisition and
    /// one wake-up, instead of a lock + notify per job. All-or-nothing:
    /// on [`PoolClosed`] every job is dropped unrun (their completion
    /// handles fire on drop, exactly as a failed [`WorkerPool::execute`]
    /// drops its closure) and the caller falls back inline. From a
    /// worker of this pool the batch lands on that worker's own deque.
    pub(crate) fn execute_batch(&self, batch: Vec<Job>) -> Result<(), PoolClosed> {
        let n = batch.len() as u64;
        if n == 0 {
            return Ok(());
        }
        if self.shared.closed.load(Ordering::SeqCst) {
            metrics::POOL_JOBS_REFUSED.add(n);
            return Err(PoolClosed);
        }
        let addr = self.shared.addr();
        let mut batch = Some(batch);
        // As in `submit`, `queued` is raised before the jobs become
        // poppable so it stays an upper bound (the `next_job` empty
        // fast path depends on that).
        let pushed_local = WORKER_CONTEXT.with(|ctx| {
            if let Some(ctx) = &*ctx.borrow() {
                if ctx.pool == addr {
                    self.shared.queued.fetch_add(n as usize, Ordering::SeqCst);
                    ctx.local
                        .push_all(batch.take().expect("batch still unsent"));
                    return true;
                }
            }
            false
        });
        if !pushed_local {
            let mut injector = self
                .shared
                .injector
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Same re-check-under-the-lock protocol as `submit`.
            if self.shared.closed.load(Ordering::SeqCst) {
                metrics::POOL_JOBS_REFUSED.add(n);
                return Err(PoolClosed);
            }
            self.shared.queued.fetch_add(n as usize, Ordering::SeqCst);
            injector.extend(batch.take().expect("batch still unsent"));
        }
        metrics::POOL_JOBS_SUBMITTED.add(n);
        metrics::POOL_QUEUE_DEPTH.add(n as i64);
        // One wake-up for the whole batch; the woken worker chain-wakes
        // a peer per dequeue while jobs remain (`note_dequeue`), so the
        // batch recruits workers one by one as long as there is work
        // left — instead of paying every wake-up on the submit path.
        self.shared.notify_one();
        Ok(())
    }

    /// Begin shutdown: refuse new submissions, wake every worker so they
    /// drain the queues and exit. Idempotent; `Drop` calls it and joins.
    fn close(&self) {
        {
            let _injector = self
                .shared
                .injector
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.closed.store(true, Ordering::SeqCst);
        }
        self.shared.notify_all();
    }

    /// Jobs executed so far, per worker — a lock-free snapshot.
    pub fn executed_per_worker(&self) -> Vec<u64> {
        self.executed.snapshot()
    }

    /// The pool's per-worker counter set, shareable with the trace
    /// registry (the global pool registers its set so
    /// `snap_trace::report()` can show worker utilization).
    pub fn executed_counters(&self) -> Arc<WorkerCounters> {
        self.executed.clone()
    }

    /// Block until `wg` completes. On a worker thread of this pool the
    /// wait *helps*: it pops the worker's own deque (where its nested
    /// submissions just landed), the injector, and victims' deques, so a
    /// worker waiting on continuations it spawned makes progress instead
    /// of deadlocking — the work-stealing replacement for the old
    /// run-inline re-entrancy fallback.
    pub(crate) fn wait_helping(&self, wg: &WaitGroup) {
        let addr = self.shared.addr();
        let ctx: Option<(usize, Arc<LocalDeque>)> = WORKER_CONTEXT.with(|ctx| {
            ctx.borrow()
                .as_ref()
                .filter(|c| c.pool == addr)
                .map(|c| (c.id, c.local.clone()))
        });
        let Some((id, local)) = ctx else {
            wg.wait();
            return;
        };
        let mut rng = (id as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        while !wg.is_done() {
            match next_job(&self.shared, id, &local, &mut rng) {
                Some(job) => run_job(&self.executed, id, job),
                // Our tasks were stolen and are in flight elsewhere:
                // sleep briefly on the wait-group, then re-probe.
                None => {
                    if wg.wait_timeout(HELP_POLL) {
                        return;
                    }
                }
            }
        }
    }

    /// Run `n` independent jobs `job(i)` and block until all complete.
    /// State shared with the jobs goes through `Arc`, mirroring how Web
    /// Worker code shares nothing but what is explicitly sent. Jobs the
    /// pool refuses (shutdown race) run on the caller's thread — counted
    /// under `pool.jobs_inline` — so every index is still processed
    /// exactly once.
    pub fn scatter_gather(&self, n: usize, job: impl Fn(usize) + Send + Sync + 'static) {
        let job = Arc::new(job);
        let wg = WaitGroup::new();
        let batch: Vec<Job> = (0..n)
            .zip(wg.tokens(n))
            .map(|(i, token)| {
                let job = job.clone();
                Box::new(move || {
                    job(i);
                    // Release the shared closure *before* signalling
                    // completion, so a caller that captured resources in
                    // `job` (a pool handle, say) uniquely owns them again
                    // the moment the wait returns.
                    drop(job);
                    drop(token);
                }) as Job
            })
            .collect();
        if self.execute_batch(batch).is_err() {
            // The whole batch (with its tokens) was dropped by the
            // refused submission; run every index inline.
            for i in 0..n {
                metrics::POOL_JOBS_INLINE.incr();
                job(i);
            }
        }
        self.wait_helping(&wg);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.close(); // refuse new work: workers drain and exit
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct WaitGroupState {
    outstanding: Mutex<usize>,
    done: Condvar,
}

/// Counts outstanding jobs: each [`WaitGroup::token`] increments, each
/// token drop decrements (drop runs even when the job unwinds, so a
/// panicking job can never wedge the waiter).
pub(crate) struct WaitGroup {
    state: Arc<WaitGroupState>,
}

/// One outstanding-job marker; dropping it signals completion.
pub(crate) struct WaitToken {
    state: Arc<WaitGroupState>,
}

impl WaitGroup {
    pub(crate) fn new() -> WaitGroup {
        WaitGroup {
            state: Arc::new(WaitGroupState {
                outstanding: Mutex::new(0),
                done: Condvar::new(),
            }),
        }
    }

    /// Register `n` outstanding jobs under a single lock acquisition
    /// (batch submission creates one token per job).
    pub(crate) fn tokens(&self, n: usize) -> Vec<WaitToken> {
        {
            let mut count = self
                .state
                .outstanding
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *count += n;
        }
        (0..n)
            .map(|_| WaitToken {
                state: self.state.clone(),
            })
            .collect()
    }

    /// `true` once every token has been dropped.
    pub(crate) fn is_done(&self) -> bool {
        *self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            == 0
    }

    /// Block until every token has been dropped.
    pub(crate) fn wait(&self) {
        let mut count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *count > 0 {
            count = self
                .state
                .done
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wait up to `timeout` for completion; `true` when done. Helpers
    /// use this to sleep between steal probes without missing the
    /// completion notification.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        let count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if *count == 0 {
            return true;
        }
        let (count, _timed_out) = self
            .state
            .done
            .wait_timeout(count, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        *count == 0
    }
}

impl Drop for WaitToken {
    fn drop(&mut self) {
        let mut count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *count -= 1;
        if *count == 0 {
            self.state.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(100, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_uses_multiple_workers() {
        let pool = WorkerPool::new(4);
        pool.scatter_gather(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let per_worker = pool.executed_per_worker();
        assert_eq!(per_worker.iter().sum::<u64>(), 64);
        assert!(
            per_worker.iter().filter(|&&n| n > 0).count() > 1,
            "expected more than one worker to participate: {per_worker:?}"
        );
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(5, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(2);
        pool.scatter_gather(10, |_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn fire_and_forget_jobs_drain_before_drop_joins() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool); // drain semantics: every accepted job runs
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(2);
        let wg = WaitGroup::new();
        let token = wg.tokens(1).pop().expect("one token");
        pool.execute(move || {
            let _token = token;
            panic!("job panic must stay inside the worker");
        })
        .unwrap();
        wg.wait();
        // The pool still has live workers and completes new jobs.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(20, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn pool_grows_on_demand_but_never_shrinks() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        pool.ensure_workers(5);
        assert_eq!(pool.workers(), 5);
        pool.ensure_workers(3); // never shrinks
        assert_eq!(pool.workers(), 5);
        pool.ensure_workers(MAX_POOL_WORKERS + 100);
        assert_eq!(pool.workers(), MAX_POOL_WORKERS);
        // All workers remain usable after growth.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(200, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn execute_reports_closure_instead_of_panicking() {
        let pool = WorkerPool::new(1);
        pool.close(); // simulate shutdown having begun
        let result = pool.execute(|| {});
        assert_eq!(result, Err(PoolClosed));
    }

    #[test]
    fn execute_with_policy_retries_until_success() {
        let pool = WorkerPool::new(2);
        let attempts = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let (a, d) = (attempts.clone(), done.clone());
        pool.execute_with_policy(
            FaultPolicy::with_retries(3).backoff(Duration::ZERO),
            move || {
                if a.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky job");
                }
                d.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        drop(pool); // drain
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            3,
            "two failures, one success"
        );
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn execute_with_policy_gives_up_after_the_budget() {
        let pool = WorkerPool::new(1);
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        pool.execute_with_policy(
            FaultPolicy::with_retries(2).backoff(Duration::ZERO),
            move || {
                a.fetch_add(1, Ordering::SeqCst);
                panic!("always fails");
            },
        )
        .unwrap();
        drop(pool); // drain; the worker must survive the final failure
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 try + 2 retries");
    }

    #[test]
    fn nested_submission_from_worker_lands_on_local_deque_and_runs() {
        let pool = Arc::new(WorkerPool::new(1));
        let nested = Arc::new(AtomicUsize::new(0));
        let (p, n) = (pool.clone(), nested.clone());
        pool.scatter_gather(8, move |_| {
            let n = n.clone();
            // Submitting from the (only) worker must not deadlock: the
            // job lands on the worker's own deque and the wait-group
            // helper drains it.
            p.execute(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        });
        drop(pool); // drain any still-queued nested jobs
        assert_eq!(nested.load(Ordering::SeqCst), 8);
    }
}
