//! A persistent worker pool.
//!
//! Parallel.js creates its Web Workers anew for every `Parallel` object
//! (paper Listing 1/2). That is faithful but wasteful; this pool is the
//! long-lived alternative the parallel backend uses, and the
//! `ablate_sched`/`pool_reuse` benches compare the two. Workers are OS
//! threads fed from an mpsc channel — the share-nothing, message-passing
//! shape of HTML5 Web Workers.
//!
//! Workers survive panicking jobs: each job runs under `catch_unwind`, so
//! a single bad ring does not shrink the pool. Submission is fallible
//! ([`WorkerPool::execute`] returns [`PoolClosed`] once the channel is
//! gone) instead of panicking, and [`WorkerPool::scatter_gather`] falls
//! back to running refused jobs on the caller's thread.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use snap_trace::{well_known as metrics, WorkerCounters};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hard ceiling on pool growth ([`WorkerPool::ensure_workers`]); far
/// above any sensible worker request, it only guards against runaway
/// `workers` expressions.
pub const MAX_POOL_WORKERS: usize = 64;

/// Error returned when a job is submitted after the pool started shutting
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("worker pool is closed")
    }
}

impl std::error::Error for PoolClosed {}

thread_local! {
    /// Set for the lifetime of every pool worker thread; lets the
    /// executor detect re-entrant parallel calls (a pooled job that
    /// itself asks for parallel execution) and run them inline instead
    /// of deadlocking on its own queue.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` when the calling thread is a pool worker.
pub fn on_pool_thread() -> bool {
    IS_POOL_WORKER.with(|flag| flag.get())
}

/// A pool of worker threads. Starts at a fixed size and grows (up to
/// [`MAX_POOL_WORKERS`]) when a caller asks for more concurrency than
/// the pool currently has — necessary for latency-bound workloads that
/// legitimately oversubscribe the CPUs, exactly as a browser happily
/// runs more Web Workers than cores. Threads, once spawned, persist
/// until the pool drops, so steady-state parallel calls create none.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    /// Kept so growth can hand the shared queue to new workers.
    rx: Arc<Mutex<Receiver<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Per-worker executed-job counters. Slots are fixed at
    /// construction ([`MAX_POOL_WORKERS`]); each worker claims its slot
    /// at spawn time, so reads are a lock-free snapshot — the seed's
    /// `Mutex<Vec<Arc<AtomicU64>>>` locked on every read.
    executed: Arc<WorkerCounters>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        // std's Receiver is single-consumer; the workers share it behind
        // a mutex, locking only long enough to dequeue one job.
        let pool = WorkerPool {
            tx: Some(tx),
            rx: Arc::new(Mutex::new(rx)),
            handles: Mutex::new(Vec::new()),
            executed: Arc::new(WorkerCounters::new(MAX_POOL_WORKERS)),
        };
        pool.ensure_workers(workers.max(1));
        pool
    }

    /// Grow the pool to at least `target` workers (clamped to
    /// [`MAX_POOL_WORKERS`]). Never shrinks.
    pub fn ensure_workers(&self, target: usize) {
        let target = target.clamp(1, MAX_POOL_WORKERS);
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        while handles.len() < target {
            // Claiming the slot under the handles lock keeps slot ids
            // aligned with thread spawn order.
            let id = self.executed.add_worker();
            metrics::POOL_WORKERS_SPAWNED.incr();
            let executed = self.executed.clone();
            let rx = self.rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("snap-worker-{id}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            match guard.recv() {
                                Ok(job) => job,
                                Err(_) => break, // channel closed: shut down
                            }
                        };
                        // Count at dequeue time, not completion: waiters
                        // wake the instant a job's completion token
                        // drops (inside the job), so a post-job
                        // increment could be read one short by a
                        // quiescent observer. Counted-before-run, every
                        // finished job is already in the totals.
                        executed.incr(id);
                        metrics::POOL_JOBS_EXECUTED.incr();
                        metrics::POOL_QUEUE_DEPTH.decr();
                        // A panicking job must not kill the worker; the
                        // panic is surfaced to the submitter through
                        // whatever completion handle the job carries.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Submit a job; it runs on some worker eventually. Fails with
    /// [`PoolClosed`] when the pool is shutting down (the job is returned
    /// to the heap and dropped, never silently run).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let sent = match self.tx.as_ref() {
            Some(tx) => tx.send(Box::new(job)).map_err(|_| PoolClosed),
            None => Err(PoolClosed),
        };
        match sent {
            Ok(()) => {
                metrics::POOL_JOBS_SUBMITTED.incr();
                // Jobs waiting in the channel; the worker decrements at
                // dequeue (not completion) so a quiescent observer — one
                // whose wait-group already released — never reads a
                // stale nonzero depth.
                metrics::POOL_QUEUE_DEPTH.incr();
            }
            Err(PoolClosed) => metrics::POOL_JOBS_REFUSED.incr(),
        }
        sent
    }

    /// Jobs executed so far, per worker — a lock-free snapshot.
    pub fn executed_per_worker(&self) -> Vec<u64> {
        self.executed.snapshot()
    }

    /// The pool's per-worker counter set, shareable with the trace
    /// registry (the global pool registers its set so
    /// `snap_trace::report()` can show worker utilization).
    pub fn executed_counters(&self) -> Arc<WorkerCounters> {
        self.executed.clone()
    }

    /// Run `n` independent jobs `job(i)` and block until all complete.
    /// State shared with the jobs goes through `Arc`, mirroring how Web
    /// Worker code shares nothing but what is explicitly sent. Jobs the
    /// pool refuses (shutdown race) run on the caller's thread so every
    /// index is still processed exactly once.
    pub fn scatter_gather(&self, n: usize, job: impl Fn(usize) + Send + Sync + 'static) {
        let job = Arc::new(job);
        let wg = WaitGroup::new();
        let mut refused = Vec::new();
        for i in 0..n {
            let token = wg.token();
            let job = job.clone();
            if self
                .execute(move || {
                    job(i);
                    drop(token);
                })
                .is_err()
            {
                // The closure (with its token) was dropped by the failed
                // send; run the index inline.
                refused.push(i);
            }
        }
        for i in refused {
            job(i);
        }
        wg.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel: workers drain and exit
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct WaitGroupState {
    outstanding: Mutex<usize>,
    done: Condvar,
}

/// Counts outstanding jobs: each [`WaitGroup::token`] increments, each
/// token drop decrements (drop runs even when the job unwinds, so a
/// panicking job can never wedge the waiter).
pub(crate) struct WaitGroup {
    state: Arc<WaitGroupState>,
}

/// One outstanding-job marker; dropping it signals completion.
pub(crate) struct WaitToken {
    state: Arc<WaitGroupState>,
}

impl WaitGroup {
    pub(crate) fn new() -> WaitGroup {
        WaitGroup {
            state: Arc::new(WaitGroupState {
                outstanding: Mutex::new(0),
                done: Condvar::new(),
            }),
        }
    }

    /// Register one more outstanding job.
    pub(crate) fn token(&self) -> WaitToken {
        let mut count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *count += 1;
        WaitToken {
            state: self.state.clone(),
        }
    }

    /// Block until every token has been dropped.
    pub(crate) fn wait(&self) {
        let mut count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *count > 0 {
            count = self
                .state
                .done
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for WaitToken {
    fn drop(&mut self) {
        let mut count = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *count -= 1;
        if *count == 0 {
            self.state.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(100, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_uses_multiple_workers() {
        let pool = WorkerPool::new(4);
        pool.scatter_gather(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let per_worker = pool.executed_per_worker();
        assert_eq!(per_worker.iter().sum::<u64>(), 64);
        assert!(
            per_worker.iter().filter(|&&n| n > 0).count() > 1,
            "expected more than one worker to participate: {per_worker:?}"
        );
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(5, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(2);
        pool.scatter_gather(10, |_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(2);
        let wg = WaitGroup::new();
        let token = wg.token();
        pool.execute(move || {
            let _token = token;
            panic!("job panic must stay inside the worker");
        })
        .unwrap();
        wg.wait();
        // The pool still has live workers and completes new jobs.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(20, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn pool_grows_on_demand_but_never_shrinks() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        pool.ensure_workers(5);
        assert_eq!(pool.workers(), 5);
        pool.ensure_workers(3); // never shrinks
        assert_eq!(pool.workers(), 5);
        pool.ensure_workers(MAX_POOL_WORKERS + 100);
        assert_eq!(pool.workers(), MAX_POOL_WORKERS);
        // All workers remain usable after growth.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.scatter_gather(200, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn execute_reports_closure_instead_of_panicking() {
        let mut pool = WorkerPool::new(1);
        pool.tx.take(); // simulate shutdown having begun
        let result = pool.execute(|| {});
        assert_eq!(result, Err(PoolClosed));
    }
}
