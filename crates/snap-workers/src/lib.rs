//! # snap-workers — the Web Worker substrate
//!
//! The paper achieves true parallelism by pairing HTML5 Web Workers with
//! the Parallel.js library (§4.1). This crate is that layer, rebuilt on
//! OS threads:
//!
//! * [`Parallel`] — the Parallel.js-shaped builder API (Listing 1):
//!   results in input order, running on the shared pool by default.
//! * [`WorkerPool`] / [`executor`] — the persistent pooled execution
//!   engine (our extension): one lazily created process-wide pool,
//!   chunked dynamic scheduling, and an [`ExecMode`] switch so the
//!   `ablate_sched`/`pool_reuse` benches can compare against the
//!   paper-faithful spawn-per-call behaviour.
//! * [`ring_map`] / [`ring_map_pairs`] / [`ring_reduce_groups`] — apply
//!   compiled Snap! rings on workers with structured-clone isolation,
//!   the analogue of Listing 2's `mappedCode()` → `new Function` →
//!   `p.map(...)` pipeline.
//! * [`channel`] — bounded MPMC blocking channels ([`bounded`]), the
//!   inter-stage edges of the streaming tier: producers park when the
//!   queue is full (backpressure), so streaming memory is set by
//!   channel capacity rather than stream length.
//! * [`FaultPolicy`] / [`FaultInjector`] — fault-tolerant execution
//!   ([`fault`]): per-item retries with exponential backoff, cooperative
//!   deadlines, and deterministic chaos injection — the recovery a
//!   browser provides for free when a Web Worker dies mid-map.
//!
//! Everything here is deliberately independent of the VM: a worker sees
//! only the compiled ring and the values posted to it, exactly as a Web
//! Worker sees only the function source and the structured-cloned
//! message data.

#![warn(missing_docs)]

pub mod channel;
pub mod executor;
pub mod fault;
pub mod parallel;
pub mod pool;
pub mod ring_fn;

pub use channel::{bounded, ChannelMonitor, Receiver, SendError, Sender};
pub use executor::{
    columnar_chunk_size, global_pool, map_slice_with, try_map_slice_with, ExecMode,
    COLUMNAR_MIN_CHUNK,
};
pub use fault::{install_injector, panic_message, ExecError, FaultInjector, FaultPolicy};
pub use parallel::{default_workers, map_slice, Parallel, Strategy};
pub use pool::{PoolClosed, WorkerPool};
pub use ring_fn::{
    as_map_pair, ring_map, ring_map_faulted, ring_map_pairs, ring_map_pairs_faulted,
    ring_reduce_groups, ring_reduce_groups_faulted, ColumnarPolicy, Isolation, NativePolicy,
    RingMapError, RingMapOptions, COLUMNAR_MIN_ITEMS, NATIVE_MIN_ITEMS,
};
