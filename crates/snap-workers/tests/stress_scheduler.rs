//! Scheduler robustness under adversarial load: panicking jobs, nested
//! submissions from pool threads (which land on per-worker deques), and
//! `ensure_workers` growth while jobs are in flight. The assertions are
//! the scheduler's contract: no deadlock (the test returns), every
//! accepted job runs exactly once, and `pool.queue_depth` returns to
//! zero at quiescence.
//!
//! Everything lives in ONE test: the queue-depth gauge is
//! process-global, and a single test keeps it free of interference from
//! sibling tests on other threads (this binary has no others).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use snap_trace::well_known as metrics;
use snap_workers::{map_slice_with, ExecMode, Strategy, WorkerPool};

#[test]
fn scheduler_survives_panics_nesting_and_growth() {
    // --- phase 1: a private pool under adversarial load -------------
    let pool = Arc::new(WorkerPool::new(2));
    let outer_ran = Arc::new(AtomicUsize::new(0));
    let nested_ran = Arc::new(AtomicUsize::new(0));
    let nested_accepted = Arc::new(AtomicUsize::new(0));

    // Grow the pool from a side thread while jobs are in flight.
    let grower = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            for target in [3, 5, 8] {
                std::thread::sleep(Duration::from_millis(2));
                pool.ensure_workers(target);
            }
        })
    };

    const OUTER: usize = 600;
    {
        let pool = pool.clone();
        let outer_ran = outer_ran.clone();
        let nested_ran = nested_ran.clone();
        let nested_accepted = nested_accepted.clone();
        pool.clone().scatter_gather(OUTER, move |i| {
            outer_ran.fetch_add(1, Ordering::SeqCst);
            if i % 7 == 3 {
                // Keep some jobs in flight long enough for the growth
                // thread to land mid-run.
                std::thread::sleep(Duration::from_micros(500));
            }
            if i % 5 == 0 {
                // Nested fire-and-forget submissions from a pool thread:
                // these land on the submitting worker's own deque and
                // are drained by the owner or stolen by siblings.
                for _ in 0..3 {
                    let nested_ran = nested_ran.clone();
                    if pool
                        .execute(move || {
                            nested_ran.fetch_add(1, Ordering::SeqCst);
                        })
                        .is_ok()
                    {
                        nested_accepted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            if i % 97 == 13 {
                panic!("stress: job panic must stay contained to its worker");
            }
        });
    }
    grower.join().unwrap();
    assert_eq!(pool.workers(), 8, "mid-flight growth must have landed");
    assert_eq!(
        outer_ran.load(Ordering::SeqCst),
        OUTER,
        "every outer job (panicking ones included) runs exactly once"
    );

    // Shutdown drains: every accepted nested job must run before the
    // workers exit, even the ones still queued when drop begins.
    drop(pool);
    assert_eq!(
        nested_ran.load(Ordering::SeqCst),
        nested_accepted.load(Ordering::SeqCst),
        "every accepted nested job runs exactly once across shutdown"
    );
    assert_eq!(
        metrics::POOL_QUEUE_DEPTH.get(),
        0,
        "queue depth returns to zero once the private pool is quiescent"
    );

    // --- phase 2: nested pooled maps on the global pool -------------
    // A pooled map from inside a pooled job submits to the worker's own
    // deque and helps (no serial inlining); results and counters must
    // still reconcile.
    let outer: Vec<u64> = (0..32).collect();
    let out = map_slice_with(&outer, 4, Strategy::Dynamic, ExecMode::Pooled, |&n| {
        let inner: Vec<u64> = (0..64).collect();
        map_slice_with(&inner, 4, Strategy::Dynamic, ExecMode::Pooled, |&m| m + n)
            .into_iter()
            .sum::<u64>()
    });
    let expected: Vec<u64> = (0..32u64)
        .map(|n| (0..64u64).map(|m| m + n).sum())
        .collect();
    assert_eq!(out, expected);
    assert_eq!(
        metrics::POOL_QUEUE_DEPTH.get(),
        0,
        "queue depth returns to zero once the global pool is quiescent"
    );

    // Submitted and executed reconcile at quiescence (no job was lost
    // or double-counted by the deques, the injector, or stealing), and
    // every dequeue is attributed to exactly one source.
    let submitted = metrics::POOL_JOBS_SUBMITTED.get();
    let executed = metrics::POOL_JOBS_EXECUTED.get();
    assert_eq!(submitted, executed, "accepted jobs all executed");
    let by_source = metrics::POOL_DEQUEUE_LOCAL.get()
        + metrics::POOL_DEQUEUE_INJECTOR.get()
        + metrics::POOL_JOBS_STOLEN.get();
    assert_eq!(
        by_source, executed,
        "each executed job was dequeued from exactly one source"
    );
}
