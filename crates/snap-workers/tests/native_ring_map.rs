//! The persistent native tier seen from the execution ladder: a ring
//! registered with `register_native_map` and mapped over a large
//! all-numeric list under `NativePolicy::Auto` must stream columnar
//! chunks through the warm worker — and produce output **identical**
//! to `NativePolicy::Disabled` (the in-process batch tier), whether
//! the worker is healthy, crashing, or absent. Auto-skips when no C
//! toolchain is present (Auto simply finds no registered program).

use std::sync::{Arc, Mutex, OnceLock};

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_codegen::harness::Harness;
use snap_codegen::worker::{
    native_pool, register_native_map, register_native_program, NativeProgram, WorkerKind,
};
use snap_trace::well_known;
use snap_workers::{ring_map, NativePolicy, RingMapOptions, NATIVE_MIN_ITEMS};

/// Serializes the counter-delta tests within this binary.
fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn harness() -> Option<Harness> {
    match Harness::detect() {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("codegen.toolchain_missing: {e} — skipping native ring_map test");
            None
        }
    }
}

fn climate_ring() -> Arc<Ring> {
    // (x * 1.8) + 32 — the paper's running C-to-F example.
    Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        add(mul(var("x"), num(1.8)), num(32.0)),
    ))
}

fn big_list(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| Value::Number(i as f64 * 0.31 - 40.0))
        .collect()
}

fn map_with(ring: &Arc<Ring>, items: Vec<Value>, native: NativePolicy) -> Vec<Value> {
    ring_map(
        Arc::clone(ring),
        items,
        RingMapOptions {
            workers: 4,
            native,
            ..RingMapOptions::default()
        },
    )
    .expect("ring_map succeeds")
}

/// Healthy path: Auto routes through the warm worker (worker_frames
/// ticks), and the output is identical to the in-process batch tier.
#[test]
fn auto_routes_large_chunks_through_the_warm_worker() {
    if harness().is_none() {
        return;
    }
    let _guard = chaos_lock();
    let ring = climate_ring();
    register_native_map(&ring).expect("ring compiles");
    let items = big_list(NATIVE_MIN_ITEMS * 3);
    let frames_before = well_known::CODEGEN_WORKER_FRAMES.get();
    let native = map_with(&ring, items.clone(), NativePolicy::Auto);
    let frames_delta = well_known::CODEGEN_WORKER_FRAMES.get() - frames_before;
    let batch = map_with(&ring, items, NativePolicy::Disabled);
    assert!(
        frames_delta >= 1,
        "Auto over {} items sent no frame to the warm worker",
        NATIVE_MIN_ITEMS * 3
    );
    assert_eq!(native, batch, "persistent native must equal the batch tier");
}

/// An unregistered ring under Auto is a plain columnar map: no frames,
/// no fallbacks, same results.
#[test]
fn unregistered_ring_is_unaffected_by_auto() {
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        mul(var("x"), num(7.0)),
    ));
    let items = big_list(NATIVE_MIN_ITEMS * 2);
    let auto = map_with(&ring, items.clone(), NativePolicy::Auto);
    let off = map_with(&ring, items, NativePolicy::Disabled);
    assert_eq!(auto, off);
}

/// Small lists never pay the frame cost: below NATIVE_MIN_ITEMS the
/// chunks stay in-process even for a registered ring.
#[test]
fn small_lists_stay_in_process() {
    if harness().is_none() {
        return;
    }
    let _guard = chaos_lock();
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        sub(var("x"), num(0.25)),
    ));
    register_native_map(&ring).expect("ring compiles");
    let items = big_list(NATIVE_MIN_ITEMS / 2);
    let frames_before = well_known::CODEGEN_WORKER_FRAMES.get();
    let native = map_with(&ring, items.clone(), NativePolicy::Auto);
    assert_eq!(
        well_known::CODEGEN_WORKER_FRAMES.get(),
        frames_before,
        "an undersized map must not frame out"
    );
    let batch = map_with(&ring, items, NativePolicy::Disabled);
    assert_eq!(native, batch);
}

/// The second half of the crash ladder, end to end: a worker that dies
/// on every frame (respawn also fails to answer) must degrade to the
/// in-process batch tier per chunk — identical results, only counters
/// differ (`worker_restarts`, then `worker_fallbacks`).
#[test]
fn dead_worker_falls_back_to_batch_tier_with_identical_results() {
    let Some(harness) = harness() else { return };
    let _guard = chaos_lock();
    const CRASH_ALWAYS_C: &str = r#"#include <stdio.h>
#include <stdlib.h>
int main(int argc, char *argv[]) {
    (void) argc;
    (void) argv;
    printf("snap-native-worker 1 map\n");
    fflush(stdout);
    return 1;
}
"#;
    let compiled = harness
        .compile(
            "ring_map_crash_always",
            &[("crash.c", CRASH_ALWAYS_C)],
            false,
        )
        .expect("crash-always source compiles");
    let ring = climate_ring();
    register_native_program(
        &ring,
        NativeProgram {
            name: "ring_map_crash_always".into(),
            binary: compiled.binary,
            kind: WorkerKind::Map,
        },
    );
    let items = big_list(NATIVE_MIN_ITEMS * 2);
    let restarts_before = well_known::CODEGEN_WORKER_RESTARTS.get();
    let fallbacks_before = well_known::CODEGEN_WORKER_FALLBACKS.get();
    let with_crashes = map_with(&ring, items.clone(), NativePolicy::Auto);
    let batch = map_with(&ring, items, NativePolicy::Disabled);
    assert_eq!(
        with_crashes, batch,
        "a crashing worker must never change results"
    );
    assert!(
        well_known::CODEGEN_WORKER_RESTARTS.get() > restarts_before,
        "the ladder tried a respawn"
    );
    assert!(
        well_known::CODEGEN_WORKER_FALLBACKS.get() > fallbacks_before,
        "the chunk was salvaged in-process"
    );
    native_pool().retire("ring_map_crash_always");
}
