//! Property-based tests: worker parallelism must never change results.

use std::sync::Arc;

use proptest::prelude::*;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_workers::{map_slice, ring_map, Isolation, RingMapOptions, Strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_slice_matches_sequential_for_any_worker_count(
        items in prop::collection::vec(any::<i64>(), 0..200),
        workers in 1usize..16,
        dynamic in any::<bool>()
    ) {
        let strategy = if dynamic { Strategy::Dynamic } else { Strategy::Static };
        let expected: Vec<i64> = items.iter().map(|n| n.wrapping_mul(3)).collect();
        let got = map_slice(&items, workers, strategy, |n| n.wrapping_mul(3));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_and_static_strategies_agree(
        items in prop::collection::vec(any::<u32>(), 0..150),
        workers in 1usize..9
    ) {
        let a = map_slice(&items, workers, Strategy::Dynamic, |n| n.rotate_left(7));
        let b = map_slice(&items, workers, Strategy::Static, |n| n.rotate_left(7));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ring_map_is_worker_count_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 0..60),
        workers in 1usize..9,
        k in -50f64..50.0
    ) {
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(k))));
        let items: Vec<Value> = xs.iter().map(|&x| Value::Number(x)).collect();
        let baseline = ring_map(ring.clone(), items.clone(), RingMapOptions {
            workers: 1,
            ..Default::default()
        }).unwrap();
        let parallel = ring_map(ring, items, RingMapOptions {
            workers,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(baseline, parallel);
    }

    #[test]
    fn copy_and_share_isolation_agree_on_results(
        xs in prop::collection::vec(-1e3f64..1e3, 1..40),
        workers in 1usize..6
    ) {
        // A read-only ring must produce identical output either way.
        let ring = Arc::new(Ring::reporter_with_params(
            vec!["v".into()],
            add(var("v"), num(1.0)),
        ));
        let items: Vec<Value> = xs.iter().map(|&x| Value::Number(x)).collect();
        let copy = ring_map(ring.clone(), items.clone(), RingMapOptions {
            workers,
            isolation: Isolation::Copy,
            ..Default::default()
        }).unwrap();
        let share = ring_map(ring, items, RingMapOptions {
            workers,
            isolation: Isolation::Share,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(copy, share);
    }

    #[test]
    fn inputs_survive_ring_map_unchanged(
        xs in prop::collection::vec(-1e3f64..1e3, 0..30),
        workers in 1usize..6
    ) {
        // Structured-clone isolation: the caller's nested lists must be
        // byte-identical after the parallel map.
        let ring = Arc::new(Ring::reporter(length_of(empty_slot())));
        let items: Vec<Value> = xs
            .iter()
            .map(|&x| Value::list(vec![Value::Number(x)]))
            .collect();
        let snapshot: Vec<String> =
            items.iter().map(Value::to_display_string).collect();
        let _ = ring_map(ring, items.clone(), RingMapOptions {
            workers,
            ..Default::default()
        }).unwrap();
        let after: Vec<String> = items.iter().map(Value::to_display_string).collect();
        prop_assert_eq!(snapshot, after);
    }
}
