//! Pure evaluation of reporter rings — the worker-side function compiler.
//!
//! The paper's `parallelMap` implementation (Listing 2) extracts the
//! user's ringed reporter from the stack frame, renders it to JavaScript
//! with `mappedCode()`, and wraps it in `new Function(...)` so that each
//! Web Worker can evaluate it *without* the interactive Snap! runtime.
//!
//! [`PureFn`] is the Rust analogue: it checks that a ring's body uses only
//! *pure* blocks (no stage, no sprite motion, no randomness, no custom
//! blocks), then compiles it. Most rings lower to the flat register
//! bytecode of [`crate::bytecode`] — numeric rings to the unboxed `f64`
//! fast path — and calls dispatch to the compiled program; rings using
//! higher-order blocks keep the re-entrant tree-walking evaluator, which
//! also serves as the differential-testing oracle
//! ([`PureFn::call_treewalk`]). A `PureFn` is `Send + Sync`, so worker
//! threads can share it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};

use crate::bytecode::{self, num_binop, num_unop, Lowered, NumProgram, Program};
use crate::error::EvalError;
use crate::expr::{BinOp, Expr, RingExprBody, UnOp};
use crate::ring::{Ring, RingBody};
use crate::value::{List, Value};

/// Check that `expr` only uses blocks a worker can evaluate without the
/// VM. Returns the name of the first offending block on failure.
pub fn check_pure(expr: &Expr) -> Result<(), &'static str> {
    let mut offender: Option<&'static str> = None;
    expr.visit(&mut |e| {
        if offender.is_some() {
            return;
        }
        offender = match e {
            Expr::PickRandom(_, _) => Some("pick random"),
            Expr::Attribute(_) => Some("attribute reporter"),
            Expr::CallCustom(_, _) => Some("custom block call"),
            _ => None,
        };
    });
    match offender {
        Some(block) => Err(block),
        None => Ok(()),
    }
}

/// How a [`PureFn`]'s calls execute, decided once at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledStrategy {
    /// Unboxed `f64` register program — the numeric fast path.
    Numeric,
    /// Boxed [`Value`] register bytecode.
    Bytecode,
    /// The tree-walking evaluator (higher-order or unbound constructs).
    TreeWalk,
}

/// The compiled body a [`PureFn`] dispatches to. `Arc`-wrapped so that
/// cloning a cached `PureFn` stays cheap.
#[derive(Clone)]
enum Compiled {
    Numeric(Arc<NumProgram>),
    Bytecode(Arc<Program>),
    TreeWalk,
}

/// A compiled, thread-safe view of a reporter ring.
///
/// Construction fails unless the ring is a reporter/predicate whose body
/// passes [`check_pure`].
#[derive(Clone)]
pub struct PureFn {
    ring: Arc<Ring>,
    compiled: Compiled,
}

impl PureFn {
    /// Compile a ring into a callable pure function: purity check, then
    /// bytecode lowering ([`crate::bytecode::lower`]), falling back to
    /// the tree walk for constructs bytecode does not cover.
    pub fn compile(ring: Arc<Ring>) -> Result<PureFn, EvalError> {
        let expr = match &ring.body {
            RingBody::Reporter(e) | RingBody::Predicate(e) => e,
            RingBody::Command(_) => return Err(EvalError::NotAReporter),
        };
        check_pure(expr).map_err(EvalError::NotPure)?;
        let compiled = match bytecode::lower(&ring) {
            Some(Lowered::Numeric(p)) => Compiled::Numeric(Arc::new(p)),
            Some(Lowered::Boxed(p)) => Compiled::Bytecode(Arc::new(p)),
            None => Compiled::TreeWalk,
        };
        if !matches!(compiled, Compiled::TreeWalk) {
            snap_trace::well_known::RING_BYTECODE_COMPILES.incr();
        }
        Ok(PureFn { ring, compiled })
    }

    /// The underlying ring.
    pub fn ring(&self) -> &Arc<Ring> {
        &self.ring
    }

    /// Which execution strategy calls use (diagnostics and tests).
    pub fn strategy(&self) -> CompiledStrategy {
        match &self.compiled {
            Compiled::Numeric(_) => CompiledStrategy::Numeric,
            Compiled::Bytecode(_) => CompiledStrategy::Bytecode,
            Compiled::TreeWalk => CompiledStrategy::TreeWalk,
        }
    }

    /// Apply the function to `args`.
    ///
    /// Binding rules match Snap!: named formal parameters bind
    /// positionally; with no formals, **empty slots** receive the
    /// arguments left to right, and when exactly one argument is supplied
    /// it fills *every* empty slot (this is how `map (( ) × 10)` works).
    ///
    /// Dispatches to the compiled program; results are bit-for-bit those
    /// of [`PureFn::call_treewalk`] (enforced by the differential suite).
    pub fn call(&self, args: &[Value]) -> Result<Value, EvalError> {
        match &self.compiled {
            Compiled::Numeric(p) => {
                snap_trace::well_known::RING_FASTPATH_CALLS.incr();
                p.call(args)
            }
            Compiled::Bytecode(p) => {
                snap_trace::well_known::RING_BYTECODE_CALLS.incr();
                p.call(args)
            }
            Compiled::TreeWalk => {
                snap_trace::well_known::RING_TREEWALK_CALLS.incr();
                self.call_treewalk(args)
            }
        }
    }

    /// Apply via the tree-walking evaluator, bypassing any compiled
    /// program — the reference semantics every compiled path must match
    /// (the oracle of the differential tests, and the fallback body of
    /// [`PureFn::call`] for non-lowered rings).
    pub fn call_treewalk(&self, args: &[Value]) -> Result<Value, EvalError> {
        let expr = match &self.ring.body {
            RingBody::Reporter(e) | RingBody::Predicate(e) => e,
            RingBody::Command(_) => return Err(EvalError::NotAReporter),
        };
        let mut ctx = PureCtx::for_ring(&self.ring, args)?;
        ctx.eval(expr)
    }

    /// Apply to a single argument (the common `map` case).
    pub fn call1(&self, arg: Value) -> Result<Value, EvalError> {
        self.call(std::slice::from_ref(&arg))
    }

    /// `true` when [`PureFn::eval_batch`] covers this function: it
    /// compiled to the numeric fast path *and* takes each batch element
    /// as its single argument (slot-style or one-parameter ring).
    pub fn is_batchable(&self) -> bool {
        match &self.compiled {
            Compiled::Numeric(p) => p.batchable(),
            _ => false,
        }
    }

    /// Evaluate a whole chunk of unboxed numbers at once — the columnar
    /// batch tier. Appends one output per input to `out` and returns
    /// `true`; returns `false` (appending nothing) when the function is
    /// not batchable, so callers fall back to per-element [`call1`].
    ///
    /// Each element is treated exactly as `call1(Value::Number(x))`
    /// treats its argument; results are bit-identical to the scalar fast
    /// path and the tree walk (-0.0/±inf/subnormals included; NaN
    /// payload bits excepted — see [`NumProgram::eval_batch`]). Numeric
    /// programs cannot raise: arity was proven compatible, so the only
    /// scalar failure mode (`ArityMismatch`) is impossible here.
    pub fn eval_batch(&self, inputs: &[f64], out: &mut Vec<f64>) -> bool {
        match &self.compiled {
            Compiled::Numeric(p) if p.batchable() => {
                snap_trace::well_known::RING_BATCH_CALLS.incr();
                snap_trace::well_known::RING_BATCH_ELEMS.add(inputs.len() as u64);
                p.eval_batch(inputs, out);
                true
            }
            _ => false,
        }
    }
}

/// Upper bound on live compile-cache entries; reached only by programs
/// holding thousands of distinct rings alive at once.
const COMPILE_CACHE_CAP: usize = 1024;

/// Insertions between periodic dead-`Weak` sweeps. Without this, a
/// workload that compiles short-lived rings but never reaches
/// [`COMPILE_CACHE_CAP`] would accumulate dead entries forever.
const COMPILE_CACHE_SWEEP_INTERVAL: usize = 64;

struct CompileCache {
    /// Keyed by `Arc::as_ptr` of the ring. The [`Weak`] both detects
    /// entry death (ring dropped → evictable) and guards against ABA:
    /// a recycled allocation address only hits when the stored weak
    /// still upgrades to *this* `Arc`. Only the [`Compiled`] body is
    /// stored — caching a whole [`PureFn`] would keep a strong
    /// `Arc<Ring>` inside the cache and the entry could never die.
    entries: HashMap<usize, (Weak<Ring>, Compiled)>,
    /// Insertions since the last dead-entry sweep.
    inserts_since_sweep: usize,
}

static COMPILE_CACHE: OnceLock<Mutex<CompileCache>> = OnceLock::new();

fn compile_cache() -> &'static Mutex<CompileCache> {
    COMPILE_CACHE.get_or_init(|| {
        Mutex::new(CompileCache {
            entries: HashMap::new(),
            inserts_since_sweep: 0,
        })
    })
}

/// Compile a ring, memoized on the ring's identity (`Arc` pointer).
///
/// Repeatedly mapping the same ring — every iteration of a `parallel
/// map` loop, every reduce group — re-verifies purity in
/// [`PureFn::compile`]; this caches the verdict so steady-state calls
/// cost one hash lookup. Compilation *failures* are not cached (they
/// are cheap and rare). Entries die with their ring: a dropped `Arc`
/// leaves a dead [`Weak`] that is evicted by the periodic sweep (every
/// [`COMPILE_CACHE_SWEEP_INTERVAL`] insertions, or when the cache hits
/// capacity).
pub fn compile_cached(ring: &Arc<Ring>) -> Result<PureFn, EvalError> {
    let key = Arc::as_ptr(ring) as usize;
    let mut cache = compile_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let cached = cache.entries.get(&key).and_then(|(weak, compiled)| {
        weak.upgrade()
            .filter(|live| Arc::ptr_eq(live, ring))
            .map(|live| PureFn {
                ring: live,
                compiled: compiled.clone(),
            })
    });
    match cached {
        Some(compiled) => {
            snap_trace::well_known::COMPILE_CACHE_HITS.incr();
            return Ok(compiled);
        }
        None => {
            // Absent, or stale: the address was recycled by another ring.
            cache.entries.remove(&key);
        }
    }
    snap_trace::well_known::COMPILE_CACHE_MISSES.incr();
    let compiled = PureFn::compile(ring.clone())?;
    if cache.entries.len() >= COMPILE_CACHE_CAP
        || cache.inserts_since_sweep >= COMPILE_CACHE_SWEEP_INTERVAL
    {
        cache.entries.retain(|_, (weak, _)| weak.strong_count() > 0);
        cache.inserts_since_sweep = 0;
    }
    if cache.entries.len() < COMPILE_CACHE_CAP {
        cache
            .entries
            .insert(key, (Arc::downgrade(ring), compiled.compiled.clone()));
        cache.inserts_since_sweep += 1;
    }
    Ok(compiled)
}

/// Number of live (upgradeable) entries currently in the compile cache.
/// Dead `Weak`s awaiting the next sweep are not counted. Test/diagnostic
/// accessor.
pub fn compile_cache_live_len() -> usize {
    let cache = compile_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    cache
        .entries
        .values()
        .filter(|(weak, _)| weak.strong_count() > 0)
        .count()
}

/// Total entries in the compile cache, including dead `Weak`s that the
/// periodic sweep has not yet evicted. Test/diagnostic accessor.
pub fn compile_cache_total_len() -> usize {
    let cache = compile_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    cache.entries.len()
}

/// Compile-cache hit/miss counters since process start, read from the
/// global `snap-trace` registry (kept as a convenience accessor for
/// tests and diagnostics).
pub fn compile_cache_stats() -> (u64, u64) {
    (
        snap_trace::well_known::COMPILE_CACHE_HITS.get(),
        snap_trace::well_known::COMPILE_CACHE_MISSES.get(),
    )
}

/// Evaluation context: visible bindings plus the empty-slot argument
/// cursor.
struct PureCtx<'a> {
    /// (name, value) bindings, innermost last.
    bindings: Vec<(String, Value)>,
    /// Captured environment of the ring being applied.
    captured: &'a [(String, Value)],
    /// Positional arguments feeding empty slots.
    slot_args: &'a [Value],
    /// Next slot argument to consume.
    slot_cursor: usize,
}

impl<'a> PureCtx<'a> {
    fn for_ring(ring: &'a Ring, args: &'a [Value]) -> Result<PureCtx<'a>, EvalError> {
        let mut bindings = Vec::new();
        if !ring.params.is_empty() {
            if ring.params.len() != args.len() {
                return Err(EvalError::ArityMismatch {
                    expected: ring.params.len(),
                    got: args.len(),
                });
            }
            for (name, value) in ring.params.iter().zip(args) {
                bindings.push((name.clone(), value.clone()));
            }
        }
        Ok(PureCtx {
            bindings,
            captured: &ring.captured,
            slot_args: args,
            slot_cursor: 0,
        })
    }

    fn lookup(&self, name: &str) -> Result<Value, EvalError> {
        if let Some((_, v)) = self.bindings.iter().rev().find(|(n, _)| n == name) {
            return Ok(v.clone());
        }
        if let Some(v) = self
            .captured
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
        {
            return Ok(v.clone());
        }
        Err(EvalError::UnboundVariable(name.to_owned()))
    }

    fn next_slot_arg(&mut self) -> Value {
        if self.slot_args.is_empty() {
            return Value::Nothing;
        }
        if self.slot_args.len() == 1 {
            // Snap!: a single argument fills every empty slot.
            return self.slot_args[0].clone();
        }
        let v = self
            .slot_args
            .get(self.slot_cursor)
            .cloned()
            .unwrap_or(Value::Nothing);
        self.slot_cursor += 1;
        v
    }

    fn expect_list(v: Value) -> Result<List, EvalError> {
        match v {
            Value::List(l) => Ok(l),
            other => Err(EvalError::TypeMismatch {
                expected: "list",
                got: other.to_display_string(),
            }),
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Literal(c) => Ok(c.to_value()),
            Expr::MakeList(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::list(out))
            }
            Expr::Var(name) => self.lookup(name),
            Expr::EmptySlot => Ok(self.next_slot_arg()),
            Expr::Binary(op, a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                Ok(eval_binop(*op, &a, &b))
            }
            Expr::Unary(op, a) => {
                let a = self.eval(a)?;
                Ok(eval_unop(*op, &a))
            }
            Expr::Item(index, list) => {
                let idx = self.eval(index)?.to_number();
                let list = Self::expect_list(self.eval(list)?)?;
                let i = idx as usize;
                list.item(i).ok_or(EvalError::IndexOutOfRange {
                    index: i,
                    len: list.len(),
                })
            }
            Expr::LengthOf(list) => {
                let list = Self::expect_list(self.eval(list)?)?;
                Ok(Value::Number(list.len() as f64))
            }
            Expr::Contains(list, value) => {
                let list = Self::expect_list(self.eval(list)?)?;
                let value = self.eval(value)?;
                Ok(Value::Bool(list.contains(&value)))
            }
            Expr::Join(parts) => {
                let mut out = String::new();
                for part in parts {
                    out.push_str(&self.eval(part)?.to_display_string());
                }
                Ok(Value::Text(out))
            }
            Expr::Split(text, delim) => {
                let text = self.eval(text)?.to_display_string();
                let delim = self.eval(delim)?.to_display_string();
                let items: Vec<Value> = if delim.is_empty() {
                    text.chars().map(|c| Value::Text(c.to_string())).collect()
                } else {
                    text.split(&delim)
                        .filter(|s| !s.is_empty())
                        .map(|s| Value::Text(s.to_owned()))
                        .collect()
                };
                Ok(Value::list(items))
            }
            Expr::LetterOf(index, text) => {
                let i = self.eval(index)?.to_number() as usize;
                let text = self.eval(text)?.to_display_string();
                let letter = text
                    .chars()
                    .nth(i.saturating_sub(1))
                    .map(|c| c.to_string())
                    .unwrap_or_default();
                Ok(Value::Text(letter))
            }
            Expr::TextLength(text) => {
                let text = self.eval(text)?.to_display_string();
                Ok(Value::Number(text.chars().count() as f64))
            }
            Expr::NumbersFromTo(a, b) => {
                let a = self.eval(a)?.to_number();
                let b = self.eval(b)?.to_number();
                Ok(numbers_from_to(a, b))
            }
            Expr::Ring(ring_expr) => {
                // A nested ring closes over the current bindings.
                let mut captured: Vec<(String, Value)> = self.captured.to_vec();
                captured.extend(self.bindings.iter().cloned());
                let body = match &ring_expr.body {
                    RingExprBody::Reporter(e) => RingBody::Reporter((**e).clone()),
                    RingExprBody::Predicate(e) => RingBody::Predicate((**e).clone()),
                    RingExprBody::Command(s) => RingBody::Command(s.clone()),
                };
                Ok(Value::Ring(Arc::new(Ring {
                    params: ring_expr.params.clone(),
                    body,
                    captured,
                })))
            }
            Expr::CallRing(ring, args) => {
                let ring_value = self.eval(ring)?;
                let ring = ring_value.as_ring().ok_or(EvalError::TypeMismatch {
                    expected: "ring",
                    got: ring_value.to_display_string(),
                })?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(arg)?);
                }
                PureFn::compile(ring.clone())?.call(&arg_values)
            }
            Expr::Map { ring, list } | Expr::ParallelMap { ring, list, .. } => {
                // In a pure context, parallelMap degrades to a sequential
                // map — the same degradation Snap! performs when no
                // workers are available.
                let f = self.eval_ring_arg(ring)?;
                let list = Self::expect_list(self.eval(list)?)?;
                let mut out = Vec::with_capacity(list.len());
                for item in list.to_vec() {
                    out.push(f.call1(item)?);
                }
                Ok(Value::list(out))
            }
            Expr::Keep { pred, list } => {
                let f = self.eval_ring_arg(pred)?;
                let list = Self::expect_list(self.eval(list)?)?;
                let mut out = Vec::new();
                for item in list.to_vec() {
                    if f.call1(item.clone())?.to_bool() {
                        out.push(item);
                    }
                }
                Ok(Value::list(out))
            }
            Expr::Combine { list, ring } => {
                let f = self.eval_ring_arg(ring)?;
                let list = Self::expect_list(self.eval(list)?)?;
                let items = list.to_vec();
                match items.split_first() {
                    None => Ok(Value::Number(0.0)),
                    Some((first, rest)) => {
                        let mut acc = first.clone();
                        for item in rest {
                            acc = f.call(&[acc, item.clone()])?;
                        }
                        Ok(acc)
                    }
                }
            }
            Expr::MapReduce { .. } => Err(EvalError::NotPure("mapReduce")),
            Expr::PickRandom(_, _) => Err(EvalError::NotPure("pick random")),
            Expr::Attribute(_) => Err(EvalError::NotPure("attribute reporter")),
            Expr::CallCustom(name, _) => Err(EvalError::UnknownCustomBlock(name.clone())),
        }
    }

    /// Evaluate an expression that must produce a reporter ring, and
    /// compile it.
    fn eval_ring_arg(&mut self, expr: &Expr) -> Result<PureFn, EvalError> {
        let v = self.eval(expr)?;
        let ring = v.as_ring().ok_or(EvalError::TypeMismatch {
            expected: "ring",
            got: v.to_display_string(),
        })?;
        PureFn::compile(ring.clone())
    }
}

/// `numbers from a to b`, counting down when `a > b` like Snap!.
pub fn numbers_from_to(a: f64, b: f64) -> Value {
    let mut out = Vec::new();
    if a <= b {
        let mut x = a;
        while x <= b {
            out.push(Value::Number(x));
            x += 1.0;
        }
    } else {
        let mut x = a;
        while x >= b {
            out.push(Value::Number(x));
            x -= 1.0;
        }
    }
    Value::list(out)
}

/// Evaluate a binary operator block on two values with Snap! coercions.
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        // Arithmetic has a single definition, shared with the bytecode VM.
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Pow => {
            let n = num_binop(op, a.to_number(), b.to_number()).expect("arith op");
            Value::Number(n)
        }
        BinOp::Eq => Value::Bool(a.loose_eq(b)),
        BinOp::Ne => Value::Bool(!a.loose_eq(b)),
        BinOp::Lt => Value::Bool(a.snap_cmp(b) == std::cmp::Ordering::Less),
        BinOp::Gt => Value::Bool(a.snap_cmp(b) == std::cmp::Ordering::Greater),
        BinOp::Le => Value::Bool(a.snap_cmp(b) != std::cmp::Ordering::Greater),
        BinOp::Ge => Value::Bool(a.snap_cmp(b) != std::cmp::Ordering::Less),
        BinOp::And => Value::Bool(a.to_bool() && b.to_bool()),
        BinOp::Or => Value::Bool(a.to_bool() || b.to_bool()),
    }
}

/// Evaluate a unary operator block with Snap! coercions. Trigonometric
/// blocks take degrees, like Snap!'s.
pub fn eval_unop(op: UnOp, a: &Value) -> Value {
    match op {
        UnOp::Not => Value::Bool(!a.to_bool()),
        // Numeric unops have a single definition, shared with the VM.
        _ => Value::Number(num_unop(op, a.to_number()).expect("numeric unop")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn times_ten() -> PureFn {
        PureFn::compile(Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))).unwrap()
    }

    #[test]
    fn times_ten_matches_paper_fig4() {
        // map (( ) × 10) over (list 3 7 8) → [30, 70, 80]
        let f = times_ten();
        let out: Vec<Value> = [3.0, 7.0, 8.0]
            .iter()
            .map(|&n| f.call1(Value::Number(n)).unwrap())
            .collect();
        assert_eq!(
            out,
            vec![
                Value::Number(30.0),
                Value::Number(70.0),
                Value::Number(80.0)
            ]
        );
    }

    #[test]
    fn single_arg_fills_all_empty_slots() {
        // (( ) + ( )) with one argument: both slots get it.
        let f = PureFn::compile(Arc::new(Ring::reporter(add(empty_slot(), empty_slot())))).unwrap();
        assert_eq!(f.call1(Value::Number(4.0)).unwrap(), Value::Number(8.0));
    }

    #[test]
    fn multiple_args_fill_slots_positionally() {
        let f = PureFn::compile(Arc::new(Ring::reporter(sub(empty_slot(), empty_slot())))).unwrap();
        assert_eq!(
            f.call(&[Value::Number(10.0), Value::Number(3.0)]).unwrap(),
            Value::Number(7.0)
        );
    }

    #[test]
    fn named_params_bind() {
        let f = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["n".into()],
            mul(var("n"), var("n")),
        )))
        .unwrap();
        assert_eq!(f.call1(Value::Number(5.0)).unwrap(), Value::Number(25.0));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let f = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["a".into(), "b".into()],
            add(var("a"), var("b")),
        )))
        .unwrap();
        assert_eq!(
            f.call(&[Value::Number(1.0)]),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn captured_environment_is_visible() {
        let ring = Ring::reporter(add(empty_slot(), var("offset")))
            .with_captured(vec![("offset".into(), Value::Number(100.0))]);
        let f = PureFn::compile(Arc::new(ring)).unwrap();
        assert_eq!(f.call1(Value::Number(1.0)).unwrap(), Value::Number(101.0));
    }

    #[test]
    fn impure_blocks_are_rejected_at_compile_time() {
        let err = PureFn::compile(Arc::new(Ring::reporter(Expr::PickRandom(
            Box::new(num(1.0)),
            Box::new(num(10.0)),
        ))));
        assert!(err.is_err());
    }

    #[test]
    fn command_rings_are_rejected() {
        let err = PureFn::compile(Arc::new(Ring::command(vec![])));
        assert_eq!(err.err(), Some(EvalError::NotAReporter));
    }

    #[test]
    fn mod_takes_sign_of_divisor() {
        assert_eq!(
            eval_binop(BinOp::Mod, &Value::Number(-7.0), &Value::Number(3.0)),
            Value::Number(2.0)
        );
        assert_eq!(
            eval_binop(BinOp::Mod, &Value::Number(7.0), &Value::Number(-3.0)),
            Value::Number(-2.0)
        );
    }

    #[test]
    fn numbers_from_to_counts_both_ways() {
        assert_eq!(
            super::numbers_from_to(1.0, 4.0),
            Value::number_list([1.0, 2.0, 3.0, 4.0])
        );
        assert_eq!(
            super::numbers_from_to(3.0, 1.0),
            Value::number_list([3.0, 2.0, 1.0])
        );
    }

    #[test]
    fn nested_map_inside_ring_is_pure() {
        // map over a list inside a ring: ring(xs) = map (()×2) over xs
        let inner = Expr::Ring(crate::expr::RingExpr::reporter(mul(empty_slot(), num(2.0))));
        let f = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["xs".into()],
            Expr::Map {
                ring: Box::new(inner),
                list: Box::new(var("xs")),
            },
        )))
        .unwrap();
        let out = f.call1(Value::number_list([1.0, 2.0])).unwrap();
        assert_eq!(out, Value::number_list([2.0, 4.0]));
    }

    #[test]
    fn combine_folds_left() {
        let f = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["xs".into()],
            Expr::Combine {
                list: Box::new(var("xs")),
                ring: Box::new(Expr::Ring(crate::expr::RingExpr::reporter(add(
                    empty_slot(),
                    empty_slot(),
                )))),
            },
        )))
        .unwrap();
        assert_eq!(
            f.call1(Value::number_list([1.0, 2.0, 3.0, 4.0])).unwrap(),
            Value::Number(10.0)
        );
        // Empty list combines to 0.
        assert_eq!(f.call1(Value::number_list([])).unwrap(), Value::Number(0.0));
    }

    #[test]
    fn split_and_join_roundtrip() {
        let f = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["s".into()],
            Expr::Split(Box::new(var("s")), Box::new(text(" "))),
        )))
        .unwrap();
        let out = f.call1("the quick fox".into()).unwrap();
        assert_eq!(
            out,
            Value::list(vec!["the".into(), "quick".into(), "fox".into()])
        );
    }

    #[test]
    fn compile_cache_returns_same_function_for_same_ring() {
        let ring = Arc::new(Ring::reporter(add(empty_slot(), num(1.0))));
        let (hits_before, _) = compile_cache_stats();
        let first = compile_cached(&ring).unwrap();
        let second = compile_cached(&ring).unwrap();
        assert!(
            Arc::ptr_eq(first.ring(), second.ring()),
            "both compilations must share the ring"
        );
        let (hits_after, _) = compile_cache_stats();
        assert!(
            hits_after > hits_before,
            "second compile of the same Arc must hit the cache"
        );
    }

    #[test]
    fn compile_cache_distinguishes_distinct_rings() {
        // Structurally identical but distinct Arcs: identity-keyed, so
        // each compiles (and caches) separately.
        let a = Arc::new(Ring::reporter(add(empty_slot(), num(2.0))));
        let b = Arc::new(Ring::reporter(add(empty_slot(), num(2.0))));
        let fa = compile_cached(&a).unwrap();
        let fb = compile_cached(&b).unwrap();
        assert!(!Arc::ptr_eq(fa.ring(), fb.ring()));
        assert_eq!(fa.call1(1.into()).unwrap(), fb.call1(1.into()).unwrap());
    }

    #[test]
    fn compile_cache_rejects_impure_rings_uncached() {
        let ring = Arc::new(Ring::reporter(pick_random(num(1.0), num(6.0))));
        assert!(compile_cached(&ring).is_err());
        assert!(
            compile_cached(&ring).is_err(),
            "failure is re-derived, not cached"
        );
    }

    #[test]
    fn compile_cache_sweeps_dead_entries_periodically() {
        // Dead Weak entries must not accumulate without bound even when
        // the cache never reaches COMPILE_CACHE_CAP: the periodic sweep
        // (every COMPILE_CACHE_SWEEP_INTERVAL insertions) evicts them.
        let before = compile_cache_total_len();
        for i in 0..(8 * COMPILE_CACHE_SWEEP_INTERVAL) {
            let ring = Arc::new(Ring::reporter(add(empty_slot(), num(i as f64))));
            let _ = compile_cached(&ring).unwrap();
            // `ring` drops here, leaving a dead Weak in the cache.
        }
        let after = compile_cache_total_len();
        // Other tests may insert live entries concurrently (the cache is
        // global), so allow slack — but nowhere near the 512 dead rings
        // inserted above.
        assert!(
            after <= before + COMPILE_CACHE_SWEEP_INTERVAL + 64,
            "dead entries accumulated: {before} -> {after}"
        );
    }

    #[test]
    fn compile_cache_slot_cannot_alias_recycled_ring_address() {
        // Regression: the cache is keyed by Arc address. If ring A is
        // dropped and ring B happens to be allocated at the same address,
        // B must NOT be served A's compiled function. The stored Weak
        // guards this (upgrade + ptr_eq); provoke an address reuse to
        // prove it.
        for _ in 0..512 {
            let a = Arc::new(Ring::reporter(add(empty_slot(), num(1.0))));
            let addr = Arc::as_ptr(&a) as usize;
            let fa = compile_cached(&a).unwrap();
            assert_eq!(fa.call1(2.into()).unwrap(), Value::Number(3.0));
            drop(fa);
            drop(a);
            let b = Arc::new(Ring::reporter(mul(empty_slot(), num(3.0))));
            if Arc::as_ptr(&b) as usize == addr {
                // Address recycled: a stale hit would compute 2 + 1 = 3.
                let fb = compile_cached(&b).unwrap();
                assert_eq!(
                    fb.call1(2.into()).unwrap(),
                    Value::Number(6.0),
                    "cache served the dropped ring's function for a \
                     recycled address"
                );
                return;
            }
        }
        // The allocator never reused the address: nothing to assert, the
        // guard simply was not exercised on this run.
    }

    #[test]
    fn strategy_dispatch_matches_lowering() {
        // Pure arithmetic → unboxed numeric fast path.
        let numeric = PureFn::compile(Arc::new(Ring::reporter(add(
            mul(empty_slot(), num(2.0)),
            num(1.0),
        ))))
        .unwrap();
        assert_eq!(numeric.strategy(), CompiledStrategy::Numeric);
        // List-producing ring → boxed bytecode.
        let boxed = PureFn::compile(Arc::new(Ring::reporter(make_list(vec![
            empty_slot(),
            num(1.0),
        ]))))
        .unwrap();
        assert_eq!(boxed.strategy(), CompiledStrategy::Bytecode);
        // Higher-order ring → tree walk fallback.
        let tree = PureFn::compile(Arc::new(Ring::reporter(map_over(
            ring_reporter(add(empty_slot(), num(1.0))),
            empty_slot(),
        ))))
        .unwrap();
        assert_eq!(tree.strategy(), CompiledStrategy::TreeWalk);
    }

    #[test]
    fn compiled_paths_agree_with_treewalk_oracle() {
        let f = PureFn::compile(Arc::new(Ring::reporter(add(
            mul(empty_slot(), num(10.0)),
            num(0.5),
        ))))
        .unwrap();
        assert_eq!(f.strategy(), CompiledStrategy::Numeric);
        for v in [
            Value::Number(3.25),
            Value::Number(f64::NAN),
            Value::Text("  7 ".into()),
            Value::Bool(true),
            Value::Nothing,
            Value::list(vec![1.into()]),
        ] {
            let fast = f.call1(v.clone()).unwrap();
            let slow = f.call_treewalk(std::slice::from_ref(&v)).unwrap();
            match (&fast, &slow) {
                (Value::Number(x), Value::Number(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "input {v:?}")
                }
                _ => assert_eq!(fast, slow, "input {v:?}"),
            }
        }
    }
}
