//! Serializable literal values.
//!
//! The AST must be saveable as a project file, but runtime [`Value`]s
//! contain shared mutable lists (and rings capturing live environments)
//! that have no canonical serialized form. [`Constant`] is the
//! serializable subset used for literals in the AST and for initial
//! variable contents; it converts losslessly *into* a fresh [`Value`].

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A literal as it appears in a saved project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constant {
    /// Empty slot contents.
    Nothing,
    /// A number literal.
    Number(f64),
    /// A text literal.
    Text(String),
    /// A boolean literal.
    Bool(bool),
    /// A list literal (e.g. the `list 3 7 8` block with constant inputs).
    List(Vec<Constant>),
}

impl Constant {
    /// Materialize a fresh runtime value. List constants produce *new*
    /// list storage every time, so two materializations never alias.
    pub fn to_value(&self) -> Value {
        match self {
            Constant::Nothing => Value::Nothing,
            Constant::Number(n) => Value::Number(*n),
            Constant::Text(s) => Value::Text(s.clone()),
            Constant::Bool(b) => Value::Bool(*b),
            Constant::List(items) => Value::list(items.iter().map(Constant::to_value).collect()),
        }
    }

    /// Best-effort reverse conversion (used when saving watcher state);
    /// rings cannot be represented and become `Nothing`.
    pub fn from_value(value: &Value) -> Constant {
        match value {
            Value::Nothing | Value::Ring(_) => Constant::Nothing,
            Value::Number(n) => Constant::Number(*n),
            Value::Text(s) => Constant::Text(s.clone()),
            Value::Bool(b) => Constant::Bool(*b),
            Value::List(l) => Constant::List(l.to_vec().iter().map(Constant::from_value).collect()),
        }
    }
}

impl From<f64> for Constant {
    fn from(n: f64) -> Self {
        Constant::Number(n)
    }
}

impl From<i32> for Constant {
    fn from(n: i32) -> Self {
        Constant::Number(n as f64)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::Text(s.to_owned())
    }
}

impl From<bool> for Constant {
    fn from(b: bool) -> Self {
        Constant::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_value() {
        let c = Constant::List(vec![3.into(), "x".into(), true.into(), Constant::Nothing]);
        let v = c.to_value();
        assert_eq!(Constant::from_value(&v), c);
    }

    #[test]
    fn list_constants_never_alias() {
        let c = Constant::List(vec![1.into()]);
        let a = c.to_value();
        let b = c.to_value();
        a.as_list().unwrap().add(2.into());
        assert_eq!(b.as_list().unwrap().len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Constant::List(vec![Constant::Number(1.5), Constant::Text("hi".into())]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Constant = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
