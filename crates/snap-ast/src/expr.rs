//! Reporter blocks — the expression layer of the psnap AST.
//!
//! Every oval/hexagonal block in Snap! that reports a value corresponds to
//! an [`Expr`] variant here. The AST is fully serializable so projects can
//! be saved and reloaded, mirroring Snap!'s XML project files.

use serde::{Deserialize, Serialize};

use crate::constant::Constant;
use crate::stmt::Stmt;

/// Binary operator blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `−`
    Sub,
    /// `×`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `^` (power)
    Pow,
    /// `=` (loose equality)
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// The operator's symbol as it would appear on the block / in C code.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// `true` for comparison and logic operators (hexagonal blocks).
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Unary operator blocks (mostly the `sqrt of`-style monadic menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `not`
    Not,
    /// numeric negation
    Neg,
    /// `abs of`
    Abs,
    /// `sqrt of`
    Sqrt,
    /// `round`
    Round,
    /// `floor of`
    Floor,
    /// `ceiling of`
    Ceil,
    /// `sin of` (degrees, like Snap!)
    Sin,
    /// `cos of` (degrees)
    Cos,
    /// `ln of`
    Ln,
    /// `e^ of`
    Exp,
}

/// Read-only sprite/stage attributes exposed as reporter blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attr {
    /// Stage timer, in timesteps since the last reset.
    Timer,
    /// Sprite x position.
    XPosition,
    /// Sprite y position.
    YPosition,
    /// Sprite heading in degrees.
    Direction,
    /// Costume number of the current costume.
    CostumeNumber,
    /// The sprite's name (clones share their parent's name plus an id).
    SpriteName,
    /// `true` when this sprite instance is a clone.
    IsClone,
}

/// A quoted (ringified) expression or script as it appears in the AST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingExpr {
    /// Formal parameter names (empty = implicit empty-slot parameters).
    pub params: Vec<String>,
    /// The quoted body.
    pub body: RingExprBody,
}

/// Body of a [`RingExpr`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RingExprBody {
    /// Gray ring around a reporter.
    Reporter(Box<Expr>),
    /// Gray ring around a predicate.
    Predicate(Box<Expr>),
    /// Gray ring around a script.
    Command(Vec<Stmt>),
}

impl RingExpr {
    /// Ring a reporter expression with implicit parameters.
    pub fn reporter(expr: Expr) -> RingExpr {
        RingExpr {
            params: Vec::new(),
            body: RingExprBody::Reporter(Box::new(expr)),
        }
    }

    /// Ring a reporter expression with named parameters.
    pub fn reporter_with_params(params: Vec<String>, expr: Expr) -> RingExpr {
        RingExpr {
            params,
            body: RingExprBody::Reporter(Box::new(expr)),
        }
    }

    /// Ring a predicate expression.
    pub fn predicate(expr: Expr) -> RingExpr {
        RingExpr {
            params: Vec::new(),
            body: RingExprBody::Predicate(Box::new(expr)),
        }
    }

    /// Ring a script.
    pub fn command(body: Vec<Stmt>) -> RingExpr {
        RingExpr {
            params: Vec::new(),
            body: RingExprBody::Command(body),
        }
    }

    /// Ring a script with named parameters.
    pub fn command_with_params(params: Vec<String>, body: Vec<Stmt>) -> RingExpr {
        RingExpr {
            params,
            body: RingExprBody::Command(body),
        }
    }
}

/// A reporter block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal input typed into a slot.
    Literal(Constant),
    /// The `list` block with per-item inputs.
    MakeList(Vec<Expr>),
    /// A variable reporter (script, sprite, or global scope — resolved at
    /// run time, innermost first).
    Var(String),
    /// An **empty input slot**. Inside a ring, empty slots receive the
    /// ring's arguments positionally (paper §3.1: "the empty input signals
    /// where the list inputs are to be inserted").
    EmptySlot,
    /// A binary operator block.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operator block.
    Unary(UnOp, Box<Expr>),
    /// `item <i> of <list>` (1-based).
    Item(Box<Expr>, Box<Expr>),
    /// `length of <list>`.
    LengthOf(Box<Expr>),
    /// `<list> contains <value>`.
    Contains(Box<Expr>, Box<Expr>),
    /// `join <parts...>` — string concatenation.
    Join(Vec<Expr>),
    /// `split <text> by <delimiter>` — reports a list.
    Split(Box<Expr>, Box<Expr>),
    /// `letter <i> of <text>` (1-based).
    LetterOf(Box<Expr>, Box<Expr>),
    /// `length of <text>` (string length).
    TextLength(Box<Expr>),
    /// `pick random <a> to <b>` — integral when both bounds are integral.
    PickRandom(Box<Expr>, Box<Expr>),
    /// `numbers from <a> to <b>` — reports the list `[a, a+1, …, b]`.
    NumbersFromTo(Box<Expr>, Box<Expr>),
    /// A read-only attribute reporter (`timer`, `x position`, …).
    Attribute(Attr),
    /// A gray ring: quotes its body into a first-class [`crate::Ring`].
    Ring(RingExpr),
    /// `call <ring> with inputs <args…>`.
    CallRing(Box<Expr>, Vec<Expr>),
    /// Call a custom reporter block defined with "Build Your Own Blocks".
    CallCustom(String, Vec<Expr>),
    /// Snap!'s sequential `map <ring> over <list>` (paper §3.1, Fig. 4).
    Map {
        /// The function to apply.
        ring: Box<Expr>,
        /// The input list.
        list: Box<Expr>,
    },
    /// `keep items such that <pred> from <list>`.
    Keep {
        /// The predicate.
        pred: Box<Expr>,
        /// The input list.
        list: Box<Expr>,
    },
    /// `combine <list> using <ring>` — sequential fold.
    Combine {
        /// The input list.
        list: Box<Expr>,
        /// The binary combining function.
        ring: Box<Expr>,
    },
    /// **`parallelMap <ring> over <list> (workers <n>)`** — the paper's
    /// new block (§3.2, Fig. 5). `workers` is the optional input revealed
    /// by the right-facing arrow; `None` uses the default (hardware
    /// concurrency, else 4).
    ParallelMap {
        /// The function to apply.
        ring: Box<Expr>,
        /// The input list.
        list: Box<Expr>,
        /// Optional worker count.
        workers: Option<Box<Expr>>,
    },
    /// **`mapReduce <map fn> <reduce fn> over <list>`** — the paper's
    /// MapReduce block (§3.4, Figs. 11–13).
    MapReduce {
        /// The map function: item → `[key, value]`.
        mapper: Box<Expr>,
        /// The reduce function: combines the values grouped under one key.
        reducer: Box<Expr>,
        /// The input list.
        list: Box<Expr>,
    },
}

impl Expr {
    /// Number literal shortcut.
    pub fn num(n: f64) -> Expr {
        Expr::Literal(Constant::Number(n))
    }

    /// Text literal shortcut.
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Literal(Constant::Text(s.into()))
    }

    /// Boolean literal shortcut.
    pub fn boolean(b: bool) -> Expr {
        Expr::Literal(Constant::Bool(b))
    }

    /// Walk this expression tree, calling `f` on every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        let each = |items: &[Expr], f: &mut dyn FnMut(&Expr)| {
            for e in items {
                e.visit_dyn(f);
            }
        };
        match self {
            Expr::Literal(_) | Expr::Var(_) | Expr::EmptySlot | Expr::Attribute(_) => {}
            Expr::MakeList(items) | Expr::Join(items) => each(items, f),
            Expr::Binary(_, a, b)
            | Expr::Item(a, b)
            | Expr::Contains(a, b)
            | Expr::Split(a, b)
            | Expr::LetterOf(a, b)
            | Expr::PickRandom(a, b)
            | Expr::NumbersFromTo(a, b) => {
                a.visit_dyn(f);
                b.visit_dyn(f);
            }
            Expr::Unary(_, a) | Expr::LengthOf(a) | Expr::TextLength(a) => a.visit_dyn(f),
            Expr::Ring(r) => match &r.body {
                RingExprBody::Reporter(e) | RingExprBody::Predicate(e) => e.visit_dyn(f),
                RingExprBody::Command(stmts) => {
                    for s in stmts {
                        s.visit_exprs(&mut |e| e.visit_dyn(f));
                    }
                }
            },
            Expr::CallRing(r, args) => {
                r.visit_dyn(f);
                each(args, f);
            }
            Expr::CallCustom(_, args) => each(args, f),
            Expr::Map { ring, list } | Expr::Keep { pred: ring, list } => {
                ring.visit_dyn(f);
                list.visit_dyn(f);
            }
            Expr::Combine { list, ring } => {
                list.visit_dyn(f);
                ring.visit_dyn(f);
            }
            Expr::ParallelMap {
                ring,
                list,
                workers,
            } => {
                ring.visit_dyn(f);
                list.visit_dyn(f);
                if let Some(w) = workers {
                    w.visit_dyn(f);
                }
            }
            Expr::MapReduce {
                mapper,
                reducer,
                list,
            } => {
                mapper.visit_dyn(f);
                reducer.visit_dyn(f);
                list.visit_dyn(f);
            }
        }
    }

    fn visit_dyn(&self, f: &mut dyn FnMut(&Expr)) {
        self.visit(&mut |e| f(e));
    }

    /// Count the nodes of the expression tree (a rough proxy for "number
    /// of blocks", used by cost models and tests).
    pub fn block_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Count the empty slots belonging to *this* ring level: nested rings
    /// keep their own slots (their arguments are bound when *they* are
    /// applied, not when the outer ring is).
    pub fn own_empty_slot_count(&self) -> usize {
        let mut n = 0;
        self.map_own_empty_slots(&mut |i| {
            n = n.max(i + 1);
            Expr::EmptySlot
        });
        n
    }

    /// Rebuild the expression with each own-level empty slot replaced by
    /// `f(slot_index)` (0-based, left-to-right). Does **not** descend into
    /// nested [`Expr::Ring`]s — their slots belong to them.
    pub fn map_own_empty_slots(&self, f: &mut impl FnMut(usize) -> Expr) -> Expr {
        let mut counter = 0usize;
        self.map_slots_inner(&mut |i| f(i), &mut counter)
    }

    fn map_slots_inner(&self, f: &mut dyn FnMut(usize) -> Expr, counter: &mut usize) -> Expr {
        let go = |e: &Expr, f: &mut dyn FnMut(usize) -> Expr, c: &mut usize| {
            Box::new(e.map_slots_inner(f, c))
        };
        match self {
            Expr::EmptySlot => {
                let i = *counter;
                *counter += 1;
                f(i)
            }
            Expr::Literal(_) | Expr::Var(_) | Expr::Attribute(_) | Expr::Ring(_) => self.clone(),
            Expr::MakeList(items) => Expr::MakeList(
                items
                    .iter()
                    .map(|e| e.map_slots_inner(f, counter))
                    .collect(),
            ),
            Expr::Join(items) => Expr::Join(
                items
                    .iter()
                    .map(|e| e.map_slots_inner(f, counter))
                    .collect(),
            ),
            Expr::Binary(op, a, b) => Expr::Binary(*op, go(a, f, counter), go(b, f, counter)),
            Expr::Unary(op, a) => Expr::Unary(*op, go(a, f, counter)),
            Expr::Item(a, b) => Expr::Item(go(a, f, counter), go(b, f, counter)),
            Expr::LengthOf(a) => Expr::LengthOf(go(a, f, counter)),
            Expr::Contains(a, b) => Expr::Contains(go(a, f, counter), go(b, f, counter)),
            Expr::Split(a, b) => Expr::Split(go(a, f, counter), go(b, f, counter)),
            Expr::LetterOf(a, b) => Expr::LetterOf(go(a, f, counter), go(b, f, counter)),
            Expr::TextLength(a) => Expr::TextLength(go(a, f, counter)),
            Expr::PickRandom(a, b) => Expr::PickRandom(go(a, f, counter), go(b, f, counter)),
            Expr::NumbersFromTo(a, b) => Expr::NumbersFromTo(go(a, f, counter), go(b, f, counter)),
            Expr::CallRing(r, args) => Expr::CallRing(
                go(r, f, counter),
                args.iter().map(|e| e.map_slots_inner(f, counter)).collect(),
            ),
            Expr::CallCustom(name, args) => Expr::CallCustom(
                name.clone(),
                args.iter().map(|e| e.map_slots_inner(f, counter)).collect(),
            ),
            Expr::Map { ring, list } => Expr::Map {
                ring: go(ring, f, counter),
                list: go(list, f, counter),
            },
            Expr::Keep { pred, list } => Expr::Keep {
                pred: go(pred, f, counter),
                list: go(list, f, counter),
            },
            Expr::Combine { list, ring } => Expr::Combine {
                list: go(list, f, counter),
                ring: go(ring, f, counter),
            },
            Expr::ParallelMap {
                ring,
                list,
                workers,
            } => Expr::ParallelMap {
                ring: go(ring, f, counter),
                list: go(list, f, counter),
                workers: workers.as_ref().map(|w| go(w, f, counter)),
            },
            Expr::MapReduce {
                mapper,
                reducer,
                list,
            } => Expr::MapReduce {
                mapper: go(mapper, f, counter),
                reducer: go(reducer, f, counter),
                list: go(list, f, counter),
            },
        }
    }

    /// `true` when any sub-expression is an [`Expr::EmptySlot`].
    pub fn has_empty_slot(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::EmptySlot) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn block_count_counts_nested_nodes() {
        // (( ) × 10): Binary + EmptySlot + Literal = 3 blocks
        let e = mul(empty_slot(), num(10.0));
        assert_eq!(e.block_count(), 3);
    }

    #[test]
    fn empty_slot_detection() {
        assert!(mul(empty_slot(), num(10.0)).has_empty_slot());
        assert!(!mul(var("x"), num(10.0)).has_empty_slot());
    }

    #[test]
    fn visit_descends_into_rings() {
        let e = Expr::Ring(RingExpr::reporter(mul(empty_slot(), num(10.0))));
        assert_eq!(e.block_count(), 4);
        assert!(e.has_empty_slot());
    }

    #[test]
    fn serde_roundtrip_of_parallel_map() {
        let e = Expr::ParallelMap {
            ring: Box::new(Expr::Ring(RingExpr::reporter(mul(empty_slot(), num(10.0))))),
            list: Box::new(Expr::MakeList(vec![num(3.0), num(7.0), num(8.0)])),
            workers: Some(Box::new(num(4.0))),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn slot_substitution_skips_nested_rings() {
        let inner = Expr::Ring(RingExpr::reporter(mul(empty_slot(), num(2.0))));
        let outer = add(
            empty_slot(),
            Expr::Map {
                ring: Box::new(inner),
                list: Box::new(empty_slot()),
            },
        );
        assert_eq!(outer.own_empty_slot_count(), 2);
        let replaced = outer.map_own_empty_slots(&mut |i| var(format!("%arg{i}")));
        // The inner ring's slot must survive.
        assert!(replaced.has_empty_slot());
        let mut vars = 0;
        replaced.visit(&mut |e| {
            if matches!(e, Expr::Var(_)) {
                vars += 1;
            }
        });
        assert_eq!(vars, 2);
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::Mod.symbol(), "%");
        assert!(BinOp::Le.is_predicate());
        assert!(!BinOp::Mul.is_predicate());
    }
}
