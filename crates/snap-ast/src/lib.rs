//! # snap-ast — the psnap block language
//!
//! The abstract syntax of a Snap!-style block language with the parallel
//! extensions of *"Parallel Programming with Pictures is a Snap!"*
//! (Feng, Gardner & Feng): first-class lists and rings, `parallelMap`,
//! `parallelForEach`, and `mapReduce` blocks.
//!
//! The crate is deliberately runtime-free: it defines values
//! ([`Value`], [`List`], [`Ring`]), blocks ([`Expr`], [`Stmt`]), scripts,
//! sprites and projects, a fluent [`builder`] API standing in for the
//! drag-and-drop editor, and a [`pure`] evaluator that compiles reporter
//! rings into thread-safe functions (the analogue of the paper's
//! `mappedCode()` → `new Function` pipeline that feeds Web Workers).
//! The cooperative interpreter lives in `snap-vm`; the worker pool in
//! `snap-workers`.

#![warn(missing_docs)]

pub mod builder;
pub mod bytecode;
pub mod constant;
pub mod error;
pub mod expr;
pub mod lint;
pub mod project_xml;
pub mod pure;
pub mod ring;
pub mod script;
pub mod sprite;
pub mod stmt;
pub mod value;
pub mod xml;

pub use constant::Constant;
pub use error::EvalError;
pub use expr::{Attr, BinOp, Expr, RingExpr, RingExprBody, UnOp};
pub use lint::{lint_project, Lint, LintKind};
pub use pure::{compile_cache_stats, compile_cached, CompiledStrategy, PureFn};
pub use ring::{Ring, RingBody};
pub use script::{BlockKind, CustomBlock, HatBlock, Script};
pub use sprite::{Project, SpriteDef};
pub use stmt::{Stmt, StopKind};
pub use value::{List, Value};
pub use xml::{XmlError, XmlNode};
