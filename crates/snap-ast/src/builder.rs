//! Fluent constructors — the programmatic stand-in for the drag-and-drop
//! script editor.
//!
//! Where a Snap! user drags a `×` block into a `map` block's ring, a Rust
//! user writes `map_over(ring_reporter(mul(empty_slot(), num(10.0))),
//! make_list(...))`. Every function here returns plain AST values, so
//! scripts read almost like the stacked blocks in the paper's figures.

use crate::expr::{Attr, BinOp, Expr, RingExpr, UnOp};
use crate::stmt::Stmt;

// ---------------------------------------------------------------------
// literal and leaf reporters
// ---------------------------------------------------------------------

/// Number literal.
pub fn num(n: f64) -> Expr {
    Expr::num(n)
}

/// Text literal.
pub fn text(s: impl Into<String>) -> Expr {
    Expr::text(s)
}

/// Boolean literal.
pub fn boolean(b: bool) -> Expr {
    Expr::boolean(b)
}

/// Variable reporter.
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// An empty input slot (receives ring arguments).
pub fn empty_slot() -> Expr {
    Expr::EmptySlot
}

/// The `list <items…>` block.
pub fn make_list(items: Vec<Expr>) -> Expr {
    Expr::MakeList(items)
}

/// A `list` block holding number literals (common in the paper's figures).
pub fn number_list<I: IntoIterator<Item = f64>>(items: I) -> Expr {
    Expr::MakeList(items.into_iter().map(num).collect())
}

/// The stage `timer` reporter.
pub fn timer() -> Expr {
    Expr::Attribute(Attr::Timer)
}

/// The sprite's name.
pub fn sprite_name() -> Expr {
    Expr::Attribute(Attr::SpriteName)
}

// ---------------------------------------------------------------------
// operators
// ---------------------------------------------------------------------

macro_rules! binop_fns {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(a: Expr, b: Expr) -> Expr {
                Expr::Binary(BinOp::$op, Box::new(a), Box::new(b))
            }
        )*
    };
}

binop_fns! {
    /// `<a> + <b>`
    add => Add,
    /// `<a> − <b>`
    sub => Sub,
    /// `<a> × <b>`
    mul => Mul,
    /// `<a> / <b>`
    div => Div,
    /// `<a> mod <b>`
    modulo => Mod,
    /// `<a> ^ <b>`
    pow => Pow,
    /// `<a> = <b>`
    eq => Eq,
    /// `<a> ≠ <b>`
    ne => Ne,
    /// `<a> < <b>`
    lt => Lt,
    /// `<a> > <b>`
    gt => Gt,
    /// `<a> ≤ <b>`
    le => Le,
    /// `<a> ≥ <b>`
    ge => Ge,
    /// `<a> and <b>`
    and => And,
    /// `<a> or <b>`
    or => Or,
}

/// `not <a>`
pub fn not(a: Expr) -> Expr {
    Expr::Unary(UnOp::Not, Box::new(a))
}

/// `round <a>`
pub fn round(a: Expr) -> Expr {
    Expr::Unary(UnOp::Round, Box::new(a))
}

/// `sqrt of <a>`
pub fn sqrt(a: Expr) -> Expr {
    Expr::Unary(UnOp::Sqrt, Box::new(a))
}

/// `abs of <a>`
pub fn abs(a: Expr) -> Expr {
    Expr::Unary(UnOp::Abs, Box::new(a))
}

/// `floor of <a>`
pub fn floor(a: Expr) -> Expr {
    Expr::Unary(UnOp::Floor, Box::new(a))
}

/// `ceiling of <a>`
pub fn ceiling(a: Expr) -> Expr {
    Expr::Unary(UnOp::Ceil, Box::new(a))
}

// ---------------------------------------------------------------------
// list & text reporters
// ---------------------------------------------------------------------

/// `item <i> of <list>` (1-based).
pub fn item(index: Expr, list: Expr) -> Expr {
    Expr::Item(Box::new(index), Box::new(list))
}

/// `length of <list>`.
pub fn length_of(list: Expr) -> Expr {
    Expr::LengthOf(Box::new(list))
}

/// `<list> contains <value>`.
pub fn contains(list: Expr, value: Expr) -> Expr {
    Expr::Contains(Box::new(list), Box::new(value))
}

/// `join <parts…>`.
pub fn join(parts: Vec<Expr>) -> Expr {
    Expr::Join(parts)
}

/// `split <text> by <delimiter>`.
pub fn split(text: Expr, delimiter: Expr) -> Expr {
    Expr::Split(Box::new(text), Box::new(delimiter))
}

/// `numbers from <a> to <b>`.
pub fn numbers_from_to(a: Expr, b: Expr) -> Expr {
    Expr::NumbersFromTo(Box::new(a), Box::new(b))
}

/// `pick random <a> to <b>`.
pub fn pick_random(a: Expr, b: Expr) -> Expr {
    Expr::PickRandom(Box::new(a), Box::new(b))
}

// ---------------------------------------------------------------------
// rings and higher-order blocks
// ---------------------------------------------------------------------

/// A gray ring around a reporter with implicit empty-slot parameters.
pub fn ring_reporter(expr: Expr) -> Expr {
    Expr::Ring(RingExpr::reporter(expr))
}

/// A gray ring around a reporter with named parameters.
pub fn ring_reporter_with(params: Vec<&str>, expr: Expr) -> Expr {
    Expr::Ring(RingExpr::reporter_with_params(
        params.into_iter().map(String::from).collect(),
        expr,
    ))
}

/// A gray ring around a predicate.
pub fn ring_predicate(expr: Expr) -> Expr {
    Expr::Ring(RingExpr::predicate(expr))
}

/// A gray ring around a script.
pub fn ring_command(body: Vec<Stmt>) -> Expr {
    Expr::Ring(RingExpr::command(body))
}

/// A gray ring around a script with named parameters.
pub fn ring_command_with(params: Vec<&str>, body: Vec<Stmt>) -> Expr {
    Expr::Ring(RingExpr::command_with_params(
        params.into_iter().map(String::from).collect(),
        body,
    ))
}

/// `call <ring> with inputs <args…>`.
pub fn call_ring(ring: Expr, args: Vec<Expr>) -> Expr {
    Expr::CallRing(Box::new(ring), args)
}

/// Call a custom reporter block.
pub fn call_custom(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    Expr::CallCustom(name.into(), args)
}

/// Snap!'s sequential `map <ring> over <list>` (paper Fig. 4).
pub fn map_over(ring: Expr, list: Expr) -> Expr {
    Expr::Map {
        ring: Box::new(ring),
        list: Box::new(list),
    }
}

/// `keep items such that <pred> from <list>`.
pub fn keep_from(pred: Expr, list: Expr) -> Expr {
    Expr::Keep {
        pred: Box::new(pred),
        list: Box::new(list),
    }
}

/// `combine <list> using <ring>`.
pub fn combine_using(list: Expr, ring: Expr) -> Expr {
    Expr::Combine {
        list: Box::new(list),
        ring: Box::new(ring),
    }
}

/// The paper's `parallelMap <ring> over <list>` with the default worker
/// count (paper Fig. 5).
pub fn parallel_map_over(ring: Expr, list: Expr) -> Expr {
    Expr::ParallelMap {
        ring: Box::new(ring),
        list: Box::new(list),
        workers: None,
    }
}

/// `parallelMap` with an explicit worker-count input (the slot revealed
/// by the right-facing arrow).
pub fn parallel_map_with_workers(ring: Expr, list: Expr, workers: Expr) -> Expr {
    Expr::ParallelMap {
        ring: Box::new(ring),
        list: Box::new(list),
        workers: Some(Box::new(workers)),
    }
}

/// The paper's `mapReduce <map fn> <reduce fn> over <list>` (Fig. 13).
pub fn map_reduce(mapper: Expr, reducer: Expr, list: Expr) -> Expr {
    Expr::MapReduce {
        mapper: Box::new(mapper),
        reducer: Box::new(reducer),
        list: Box::new(list),
    }
}

// ---------------------------------------------------------------------
// statements
// ---------------------------------------------------------------------

/// `say <text>`.
pub fn say(what: Expr) -> Stmt {
    Stmt::Say(what)
}

/// `set <var> to <value>`.
pub fn set_var(name: impl Into<String>, value: Expr) -> Stmt {
    Stmt::SetVar(name.into(), value)
}

/// `change <var> by <delta>`.
pub fn change_var(name: impl Into<String>, delta: Expr) -> Stmt {
    Stmt::ChangeVar(name.into(), delta)
}

/// `script variables <names…>`.
pub fn script_variables(names: Vec<&str>) -> Stmt {
    Stmt::DeclareLocals(names.into_iter().map(String::from).collect())
}

/// `if <cond> { … }`.
pub fn if_then(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then)
}

/// `if <cond> { … } else { … }`.
pub fn if_else(cond: Expr, then: Vec<Stmt>, otherwise: Vec<Stmt>) -> Stmt {
    Stmt::IfElse(cond, then, otherwise)
}

/// `repeat <n> { … }`.
pub fn repeat(times: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::Repeat(times, body)
}

/// `forever { … }`.
pub fn forever(body: Vec<Stmt>) -> Stmt {
    Stmt::Forever(body)
}

/// `repeat until <cond> { … }`.
pub fn repeat_until(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::RepeatUntil(cond, body)
}

/// `for <var> = <from> to <to> { … }`.
pub fn for_loop(var: impl Into<String>, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.into(),
        from,
        to,
        body,
    }
}

/// Sequential `for each <var> in <list> { … }`.
pub fn for_each(var: impl Into<String>, list: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::ForEach {
        var: var.into(),
        list,
        body,
    }
}

/// The paper's `parallelForEach` in **parallel mode** with the default
/// level of parallelism (= list length, Fig. 8a).
pub fn parallel_for_each(var: impl Into<String>, list: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::ParallelForEach {
        var: var.into(),
        list,
        body,
        parallelism: None,
        parallel: true,
    }
}

/// `parallelForEach` in parallel mode with an explicit parallelism input.
pub fn parallel_for_each_n(
    var: impl Into<String>,
    list: Expr,
    parallelism: Expr,
    body: Vec<Stmt>,
) -> Stmt {
    Stmt::ParallelForEach {
        var: var.into(),
        list,
        body,
        parallelism: Some(parallelism),
        parallel: true,
    }
}

/// `parallelForEach` with the parallel input box collapsed — sequential
/// mode (Fig. 8b).
pub fn parallel_for_each_sequential(var: impl Into<String>, list: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::ParallelForEach {
        var: var.into(),
        list,
        body,
        parallelism: None,
        parallel: false,
    }
}

/// `wait <n> timesteps`.
pub fn wait(timesteps: Expr) -> Stmt {
    Stmt::Wait(timesteps)
}

/// `wait until <cond>`.
pub fn wait_until(cond: Expr) -> Stmt {
    Stmt::WaitUntil(cond)
}

/// `broadcast <message>`.
pub fn broadcast(message: impl Into<String>) -> Stmt {
    Stmt::Broadcast(text(message))
}

/// `broadcast <message> and wait`.
pub fn broadcast_and_wait(message: impl Into<String>) -> Stmt {
    Stmt::BroadcastAndWait(text(message))
}

/// `create a clone of myself`.
pub fn clone_myself() -> Stmt {
    Stmt::CreateCloneOf(text("myself"))
}

/// `report <value>`.
pub fn report(value: Expr) -> Stmt {
    Stmt::Report(value)
}

/// `add <value> to <list>`.
pub fn add_to_list(item: Expr, list: Expr) -> Stmt {
    Stmt::AddToList { item, list }
}

/// `move <n> steps`.
pub fn move_steps(n: Expr) -> Stmt {
    Stmt::Move(n)
}

/// `warp { … }` — run atomically.
pub fn warp(body: Vec<Stmt>) -> Stmt {
    Stmt::Warp(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_reads_like_the_blocks() {
        // map (( ) × 10) over (list 3 7 8)
        let blocks = map_over(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([3.0, 7.0, 8.0]),
        );
        // map + ring + × + slot + 10 + list-block + 3 item literals = 9
        assert_eq!(blocks.block_count(), 9);
    }

    #[test]
    fn parallel_builders_set_modes() {
        let p = parallel_for_each("cup", var("cups"), vec![]);
        assert!(matches!(p, Stmt::ParallelForEach { parallel: true, .. }));
        let s = parallel_for_each_sequential("cup", var("cups"), vec![]);
        assert!(matches!(
            s,
            Stmt::ParallelForEach {
                parallel: false,
                ..
            }
        ));
    }
}
