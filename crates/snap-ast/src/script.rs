//! Scripts, hat blocks, and custom block definitions.
//!
//! A *script* is a hat block plus the stack of command blocks under it
//! (paper §2, Fig. 3). A *custom block* is a user-defined block built from
//! other blocks — the "Build Your Own Blocks" feature that gave Snap! its
//! original name.

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::stmt::Stmt;

/// The event that activates a script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HatBlock {
    /// `when green flag clicked`.
    GreenFlag,
    /// `when <key> key pressed`.
    KeyPressed(String),
    /// `when I receive <message>`.
    MessageReceived(String),
    /// `when I start as a clone`.
    StartAsClone,
    /// `when this sprite clicked`.
    SpriteClicked,
}

/// A hat block plus its stack of command blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Script {
    /// The activating event.
    pub hat: HatBlock,
    /// The command blocks under the hat, in order.
    pub body: Vec<Stmt>,
}

impl Script {
    /// A script activated by the green flag.
    pub fn on_green_flag(body: Vec<Stmt>) -> Script {
        Script {
            hat: HatBlock::GreenFlag,
            body,
        }
    }

    /// A script activated by a key press.
    pub fn on_key(key: impl Into<String>, body: Vec<Stmt>) -> Script {
        Script {
            hat: HatBlock::KeyPressed(key.into()),
            body,
        }
    }

    /// A script activated by a broadcast message.
    pub fn on_message(message: impl Into<String>, body: Vec<Stmt>) -> Script {
        Script {
            hat: HatBlock::MessageReceived(message.into()),
            body,
        }
    }

    /// A script activated when the sprite starts as a clone.
    pub fn on_clone_start(body: Vec<Stmt>) -> Script {
        Script {
            hat: HatBlock::StartAsClone,
            body,
        }
    }

    /// Total number of command blocks in the script.
    pub fn block_count(&self) -> usize {
        Stmt::block_count(&self.body)
    }
}

/// Shape of a custom block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// Puzzle-piece command block.
    Command,
    /// Oval reporter block.
    Reporter,
    /// Hexagonal predicate block.
    Predicate,
}

/// A user-defined block ("Build Your Own Blocks").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomBlock {
    /// The block's name (its label text).
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Command, reporter, or predicate.
    pub kind: BlockKind,
    /// The definition script. Reporters return via [`Stmt::Report`].
    pub body: Vec<Stmt>,
}

impl CustomBlock {
    /// Define a custom command block.
    pub fn command(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> CustomBlock {
        CustomBlock {
            name: name.into(),
            params,
            kind: BlockKind::Command,
            body,
        }
    }

    /// Define a custom reporter block.
    pub fn reporter(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> CustomBlock {
        CustomBlock {
            name: name.into(),
            params,
            kind: BlockKind::Reporter,
            body,
        }
    }

    /// Define a custom reporter that simply reports one expression.
    pub fn reporter_expr(name: impl Into<String>, params: Vec<String>, expr: Expr) -> CustomBlock {
        CustomBlock {
            name: name.into(),
            params,
            kind: BlockKind::Reporter,
            body: vec![Stmt::Report(expr)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn script_constructors_set_hats() {
        assert_eq!(Script::on_green_flag(vec![]).hat, HatBlock::GreenFlag);
        assert_eq!(
            Script::on_key("right arrow", vec![]).hat,
            HatBlock::KeyPressed("right arrow".into())
        );
        assert_eq!(
            Script::on_message("go", vec![]).hat,
            HatBlock::MessageReceived("go".into())
        );
    }

    #[test]
    fn reporter_expr_wraps_in_report() {
        let b = CustomBlock::reporter_expr("double", vec!["n".into()], add(var("n"), var("n")));
        assert_eq!(b.kind, BlockKind::Reporter);
        assert!(matches!(b.body[0], Stmt::Report(_)));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Script::on_key("left arrow", vec![Stmt::TurnLeft(num(15.0))]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Script>(&json).unwrap(), s);
    }
}
