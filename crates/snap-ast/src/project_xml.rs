//! Projects as XML documents.
//!
//! Snap! project files are XML; this module gives psnap projects the
//! same on-disk shape. The mapping is mechanical — the serde data model
//! rendered as elements — which keeps it exactly as expressive as the
//! JSON format and guarantees lossless round-trips (values are carried
//! in fully-escaped attributes, so whitespace survives).

use serde_json::Value as Json;

use crate::sprite::Project;
use crate::xml::{parse, XmlError, XmlNode};

/// A failure loading a project from XML.
#[derive(Debug)]
pub enum ProjectXmlError {
    /// The document isn't well-formed XML.
    Xml(XmlError),
    /// The document is XML but not a psnap project.
    Shape(String),
}

impl std::fmt::Display for ProjectXmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectXmlError::Xml(e) => write!(f, "malformed XML: {e}"),
            ProjectXmlError::Shape(msg) => write!(f, "not a psnap project: {msg}"),
        }
    }
}

impl std::error::Error for ProjectXmlError {}

impl From<XmlError> for ProjectXmlError {
    fn from(e: XmlError) -> Self {
        ProjectXmlError::Xml(e)
    }
}

impl Project {
    /// Serialize to the XML project format.
    pub fn to_xml(&self) -> String {
        let json = serde_json::to_value(self).expect("projects always serialize");
        let mut doc = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        doc.push_str(&json_to_xml("project", &json).to_pretty_string());
        doc
    }

    /// Load from the XML project format.
    pub fn from_xml(text: &str) -> Result<Project, ProjectXmlError> {
        let node = parse(text)?;
        if node.tag != "project" {
            return Err(ProjectXmlError::Shape(format!(
                "expected <project>, found <{}>",
                node.tag
            )));
        }
        let json = xml_to_json(&node)?;
        serde_json::from_value(json).map_err(|e| ProjectXmlError::Shape(e.to_string()))
    }
}

/// Render a serde-JSON tree as an XML element.
fn json_to_xml(tag: &str, value: &Json) -> XmlNode {
    match value {
        Json::Null => XmlNode::new(tag).attr("type", "null"),
        Json::Bool(b) => XmlNode::new(tag)
            .attr("type", "bool")
            .attr("value", b.to_string()),
        Json::Number(n) => XmlNode::new(tag)
            .attr("type", "number")
            .attr("value", n.to_string()),
        Json::String(s) => XmlNode::new(tag)
            .attr("type", "string")
            .attr("value", s.clone()),
        Json::Array(items) => {
            let mut node = XmlNode::new(tag).attr("type", "array");
            for item in items {
                node = node.child(json_to_xml("item", item));
            }
            node
        }
        Json::Object(map) => {
            let mut node = XmlNode::new(tag).attr("type", "object");
            for (key, item) in map {
                node = node.child(json_to_xml("field", item).attr("name", key.clone()));
            }
            node
        }
    }
}

/// The inverse of [`json_to_xml`].
fn xml_to_json(node: &XmlNode) -> Result<Json, ProjectXmlError> {
    let kind = node
        .get_attr("type")
        .ok_or_else(|| ProjectXmlError::Shape(format!("<{}> lacks type attribute", node.tag)))?;
    match kind {
        "null" => Ok(Json::Null),
        "bool" => Ok(Json::Bool(node.get_attr("value") == Some("true"))),
        "number" => {
            let raw = node
                .get_attr("value")
                .ok_or_else(|| ProjectXmlError::Shape("number without value".into()))?;
            let n: serde_json::Number = raw
                .parse()
                .map_err(|_| ProjectXmlError::Shape(format!("bad number {raw:?}")))?;
            Ok(Json::Number(n))
        }
        "string" => Ok(Json::String(
            node.get_attr("value").unwrap_or_default().to_owned(),
        )),
        "array" => {
            let items: Result<Vec<Json>, _> = node.children.iter().map(xml_to_json).collect();
            Ok(Json::Array(items?))
        }
        "object" => {
            let mut map = serde_json::Map::new();
            for child in &node.children {
                let name = child
                    .get_attr("name")
                    .ok_or_else(|| ProjectXmlError::Shape("object field without name".into()))?;
                map.insert(name.to_owned(), xml_to_json(child)?);
            }
            Ok(Json::Object(map))
        }
        other => Err(ProjectXmlError::Shape(format!("unknown type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::script::Script;
    use crate::sprite::SpriteDef;
    use crate::Constant;

    fn sample_project() -> Project {
        Project::new("xml demo")
            .with_global("total <weird & name>", Constant::Number(1.5))
            .with_global("padded", Constant::Text("  spaces kept  ".into()))
            .with_sprite(
                SpriteDef::new("Cat").with_script(Script::on_green_flag(vec![say(
                    parallel_map_over(
                        ring_reporter(mul(empty_slot(), num(10.0))),
                        number_list([3.0, 7.0, 8.0]),
                    ),
                )])),
            )
    }

    #[test]
    fn projects_roundtrip_through_xml() {
        let project = sample_project();
        let xml = project.to_xml();
        assert!(xml.starts_with("<?xml"));
        let back = Project::from_xml(&xml).unwrap();
        assert_eq!(back, project);
    }

    #[test]
    fn whitespace_in_text_values_survives() {
        let project = sample_project();
        let back = Project::from_xml(&project.to_xml()).unwrap();
        assert_eq!(back.globals[1].1, Constant::Text("  spaces kept  ".into()));
    }

    #[test]
    fn non_project_documents_are_rejected() {
        assert!(Project::from_xml("<sprite type=\"object\"/>").is_err());
        assert!(Project::from_xml("<project type=\"bogus\"/>").is_err());
        assert!(Project::from_xml("not xml at all").is_err());
    }

    #[test]
    fn xml_and_json_formats_agree() {
        let project = sample_project();
        let via_xml = Project::from_xml(&project.to_xml()).unwrap();
        let via_json = Project::from_json(&project.to_json()).unwrap();
        assert_eq!(via_xml, via_json);
    }
}
