//! The XML project format.
//!
//! Real Snap! saves projects as XML documents; our JSON format
//! (`Project::to_json`) is the idiomatic-Rust equivalent, and this
//! module provides the XML one for fidelity: a small self-contained XML
//! reader/writer plus a full mapping of projects onto `<project>`,
//! `<sprite>`, `<script>`, `<block>` elements. Round-tripping is exact
//! (property-tested in `tests/xml_properties.rs`).

use std::fmt;

/// A generic XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlNode {
    /// Tag name.
    pub tag: String,
    /// Attributes, in order.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Text content (mutually exclusive with children in this format).
    pub text: Option<String>,
}

impl XmlNode {
    /// An element with no attributes or children.
    pub fn new(tag: impl Into<String>) -> XmlNode {
        XmlNode {
            tag: tag.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: None,
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> XmlNode {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: XmlNode) -> XmlNode {
        self.children.push(child);
        self
    }

    /// Builder: add children.
    pub fn children(mut self, children: Vec<XmlNode>) -> XmlNode {
        self.children.extend(children);
        self
    }

    /// Builder: set text content.
    pub fn with_text(mut self, text: impl Into<String>) -> XmlNode {
        self.text = Some(text.into());
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given tag.
    pub fn find(&self, tag: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.tag == tag)
    }

    /// All children with the given tag.
    pub fn find_all<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.tag == tag)
    }

    /// Serialize with 2-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.tag);
        for (name, value) in &self.attrs {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        match (&self.text, self.children.is_empty()) {
            (Some(text), _) => {
                out.push('>');
                out.push_str(&escape(text));
                out.push_str("</");
                out.push_str(&self.tag);
                out.push_str(">\n");
            }
            (None, true) => out.push_str("/>\n"),
            (None, false) => {
                out.push_str(">\n");
                for child in &self.children {
                    child.write(out, depth + 1);
                }
                out.push_str(&pad);
                out.push_str("</");
                out.push_str(&self.tag);
                out.push_str(">\n");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';').ok_or(XmlError::BadEntity)?;
        let entity = &rest[..end];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ => {
                let code = entity
                    .strip_prefix('#')
                    .and_then(|n| n.parse::<u32>().ok())
                    .and_then(char::from_u32)
                    .ok_or(XmlError::BadEntity)?;
                code
            }
        });
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A token that doesn't belong (with position).
    Unexpected(usize),
    /// Close tag didn't match the open tag.
    MismatchedTag {
        /// The tag that was open.
        open: String,
        /// The tag that tried to close it.
        close: String,
    },
    /// Malformed `&…;` entity.
    BadEntity,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of XML"),
            XmlError::Unexpected(pos) => write!(f, "unexpected character at byte {pos}"),
            XmlError::MismatchedTag { open, close } => {
                write!(f, "<{open}> closed by </{close}>")
            }
            XmlError::BadEntity => write!(f, "malformed XML entity"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Parse one XML element (leading whitespace and an optional
/// `<?xml …?>` declaration are allowed).
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    if parser.rest().starts_with("<?") {
        let end = parser.rest().find("?>").ok_or(XmlError::UnexpectedEof)?;
        parser.pos += end + 2;
        parser.skip_ws();
    }
    let node = parser.element()?;
    parser.skip_ws();
    Ok(node)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        std::str::from_utf8(&self.input[self.pos..]).unwrap_or("")
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.input.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else if self.pos >= self.input.len() {
            Err(XmlError::UnexpectedEof)
        } else {
            Err(XmlError::Unexpected(self.pos))
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_' || *b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Unexpected(self.pos));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        self.expect(b'<')?;
        let tag = self.name()?;
        let mut node = XmlNode::new(tag);
        loop {
            self.skip_ws();
            match self.input.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(node); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let name = self.name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    self.expect(b'"')?;
                    let start = self.pos;
                    while self.input.get(self.pos).is_some_and(|&b| b != b'"') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.expect(b'"')?;
                    node.attrs.push((name, unescape(&raw)?));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
        // Content: children or text.
        let mut text = String::new();
        loop {
            self.skip_ws_preserving(&mut text);
            match self.input.get(self.pos) {
                Some(b'<') if self.input.get(self.pos + 1) == Some(&b'/') => {
                    self.pos += 2;
                    let close = self.name()?;
                    self.skip_ws();
                    self.expect(b'>')?;
                    if close != node.tag {
                        return Err(XmlError::MismatchedTag {
                            open: node.tag,
                            close,
                        });
                    }
                    let trimmed = text.trim();
                    if node.children.is_empty() && !trimmed.is_empty() {
                        node.text = Some(unescape(trimmed)?);
                    }
                    return Ok(node);
                }
                Some(b'<') => {
                    node.children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.input.get(self.pos).is_some_and(|&b| b != b'<') {
                        self.pos += 1;
                    }
                    text.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
    }

    fn skip_ws_preserving(&mut self, _text: &mut String) {
        // Whitespace between elements is insignificant in this format;
        // significant text is always adjacent to its tags.
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reparses_simple_trees() {
        let node = XmlNode::new("project")
            .attr("name", "demo")
            .child(XmlNode::new("sprite").attr("name", "Cat"))
            .child(XmlNode::new("note").with_text("hello <world> & \"friends\""));
        let text = node.to_pretty_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn self_closing_and_nested() {
        let parsed = parse("<a x=\"1\"><b/><c y=\"2\"><d/></c></a>").unwrap();
        assert_eq!(parsed.tag, "a");
        assert_eq!(parsed.get_attr("x"), Some("1"));
        assert_eq!(parsed.children.len(), 2);
        assert_eq!(parsed.find("c").unwrap().children.len(), 1);
    }

    #[test]
    fn xml_declaration_is_skipped() {
        let parsed = parse("<?xml version=\"1.0\"?>\n<root/>").unwrap();
        assert_eq!(parsed.tag, "root");
    }

    #[test]
    fn entities_roundtrip() {
        let node = XmlNode::new("t").attr("v", "a&b<c>\"d\"\ne");
        let back = parse(&node.to_pretty_string()).unwrap();
        assert_eq!(back.get_attr("v"), Some("a&b<c>\"d\"\ne"));
    }

    #[test]
    fn mismatched_tags_error() {
        assert_eq!(
            parse("<a></b>"),
            Err(XmlError::MismatchedTag {
                open: "a".into(),
                close: "b".into()
            })
        );
    }

    #[test]
    fn truncated_input_errors() {
        assert!(parse("<a ").is_err());
        assert!(parse("<a><b></b>").is_err());
        assert!(parse("").is_err());
    }
}
