//! Command blocks — the statement layer of the psnap AST.
//!
//! Each variant corresponds to a puzzle-piece command block. Control
//! blocks carry their C-shaped sub-scripts as `Vec<Stmt>`.

use serde::{Deserialize, Serialize};

use crate::expr::Expr;

/// Target of a `stop` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopKind {
    /// `stop all` — halt every process in the project.
    All,
    /// `stop this script` — halt the enclosing script.
    ThisScript,
    /// `stop this block` — return from the current custom block / ring.
    ThisBlock,
}

/// A command block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `say <text>` — show a speech bubble (also the headless VM's
    /// standard output channel).
    Say(Expr),
    /// `say <text> for <n> timesteps`.
    SayFor(Expr, Expr),
    /// `think <text>`.
    Think(Expr),
    /// `set <var> to <value>` — sets the innermost visible binding, or
    /// creates a global when none exists.
    SetVar(String, Expr),
    /// `change <var> by <delta>`.
    ChangeVar(String, Expr),
    /// `script variables <names…>` — declare script-local variables.
    DeclareLocals(Vec<String>),
    /// `add <value> to <list>`.
    AddToList {
        /// The value to append.
        item: Expr,
        /// The target list.
        list: Expr,
    },
    /// `delete <index> of <list>` (1-based).
    DeleteOfList {
        /// 1-based index.
        index: Expr,
        /// The target list.
        list: Expr,
    },
    /// `insert <value> at <index> of <list>` (1-based).
    InsertAtList {
        /// The value to insert.
        item: Expr,
        /// 1-based index.
        index: Expr,
        /// The target list.
        list: Expr,
    },
    /// `replace item <index> of <list> with <value>`.
    ReplaceItemOfList {
        /// 1-based index.
        index: Expr,
        /// The target list.
        list: Expr,
        /// The replacement value.
        item: Expr,
    },
    /// `if <cond> { … }`.
    If(Expr, Vec<Stmt>),
    /// `if <cond> { … } else { … }`.
    IfElse(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `repeat <n> { … }`.
    Repeat(Expr, Vec<Stmt>),
    /// `forever { … }` — runs until stopped (paper Fig. 3).
    Forever(Vec<Stmt>),
    /// `repeat until <cond> { … }`.
    RepeatUntil(Expr, Vec<Stmt>),
    /// `for <var> = <from> to <to> { … }`.
    For {
        /// Loop variable name.
        var: String,
        /// First value (inclusive).
        from: Expr,
        /// Last value (inclusive).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for each <var> in <list> { … }` — sequential iteration.
    ForEach {
        /// Item variable name.
        var: String,
        /// The input list.
        list: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// **`parallelForEach <var> in <list> (in parallel <n>) { … }`** —
    /// the paper's block (§3.3, Fig. 8). With `parallel: true` the runtime
    /// spawns clones of the running sprite, one per element (bounded by
    /// the optional `parallelism` input, default = list length), each
    /// executing the body concurrently; collapsing the input box
    /// (`parallel: false`) degrades it to a plain `forEach` loop.
    ParallelForEach {
        /// Item variable name.
        var: String,
        /// The input list.
        list: Expr,
        /// Loop body, run once per element.
        body: Vec<Stmt>,
        /// Optional explicit level of parallelism.
        parallelism: Option<Expr>,
        /// `true` = "in parallel" label visible (Fig. 8a), `false` =
        /// sequential mode (Fig. 8b).
        parallel: bool,
    },
    /// `wait <n> timesteps`.
    Wait(Expr),
    /// `wait until <cond>`.
    WaitUntil(Expr),
    /// `broadcast <message>` — fire and forget.
    Broadcast(Expr),
    /// `broadcast <message> and wait` — resumes when every triggered
    /// script has finished.
    BroadcastAndWait(Expr),
    /// `create a clone of <sprite>` (`"myself"` clones the running sprite).
    CreateCloneOf(Expr),
    /// `delete this clone`.
    DeleteThisClone,
    /// `run <ring> with inputs <args…>` — synchronous command-ring call.
    RunRing(Expr, Vec<Expr>),
    /// `launch <ring> with inputs <args…>` — start the ring as a new
    /// concurrent process and continue immediately.
    LaunchRing(Expr, Vec<Expr>),
    /// Call a custom command block.
    CallCustom(String, Vec<Expr>),
    /// `report <value>` — return from a custom reporter / reporter ring.
    Report(Expr),
    /// `stop <kind>`.
    Stop(StopKind),
    /// `warp { … }` — run the body atomically, without yielding.
    Warp(Vec<Stmt>),
    /// `move <n> steps`.
    Move(Expr),
    /// `turn ↻ <degrees>`.
    TurnRight(Expr),
    /// `turn ↺ <degrees>`.
    TurnLeft(Expr),
    /// `go to x: <x> y: <y>`.
    GoToXY(Expr, Expr),
    /// `point in direction <degrees>`.
    PointInDirection(Expr),
    /// `show`.
    Show,
    /// `hide`.
    Hide,
    /// `switch to costume <number>`.
    SwitchCostume(Expr),
    /// `next costume`.
    NextCostume,
    /// `reset timer`.
    ResetTimer,
    /// A comment attached to the script; ignored by the runtime.
    Comment(String),
}

impl Stmt {
    /// Call `f` on every expression directly contained in this statement
    /// (not recursing into the expressions themselves), and recurse into
    /// nested statement bodies.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.visit_exprs_inner(f, true);
    }

    /// Like [`Stmt::visit_exprs`], but does **not** descend into nested
    /// statement bodies — only this statement's own inputs. Used by
    /// scope-sensitive passes (the linter) that walk bodies themselves.
    pub fn visit_own_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.visit_exprs_inner(f, false);
    }

    fn visit_exprs_inner(&self, f: &mut impl FnMut(&Expr), recurse: bool) {
        self.visit_exprs_dyn(f, recurse);
    }

    fn visit_exprs_dyn(&self, f: &mut dyn FnMut(&Expr), recurse: bool) {
        let body = |stmts: &[Stmt], f: &mut dyn FnMut(&Expr)| {
            if !recurse {
                return;
            }
            for s in stmts {
                s.visit_exprs_dyn(f, true);
            }
        };
        match self {
            Stmt::Say(e)
            | Stmt::Think(e)
            | Stmt::SetVar(_, e)
            | Stmt::ChangeVar(_, e)
            | Stmt::Wait(e)
            | Stmt::WaitUntil(e)
            | Stmt::Broadcast(e)
            | Stmt::BroadcastAndWait(e)
            | Stmt::CreateCloneOf(e)
            | Stmt::Report(e)
            | Stmt::Move(e)
            | Stmt::TurnRight(e)
            | Stmt::TurnLeft(e)
            | Stmt::PointInDirection(e)
            | Stmt::SwitchCostume(e) => f(e),
            Stmt::SayFor(a, b) | Stmt::GoToXY(a, b) => {
                f(a);
                f(b);
            }
            Stmt::AddToList { item, list } => {
                f(item);
                f(list);
            }
            Stmt::DeleteOfList { index, list } => {
                f(index);
                f(list);
            }
            Stmt::InsertAtList { item, index, list } => {
                f(item);
                f(index);
                f(list);
            }
            Stmt::ReplaceItemOfList { index, list, item } => {
                f(index);
                f(list);
                f(item);
            }
            Stmt::If(c, b) | Stmt::Repeat(c, b) | Stmt::RepeatUntil(c, b) => {
                f(c);
                body(b, f);
            }
            Stmt::IfElse(c, t, e) => {
                f(c);
                body(t, f);
                body(e, f);
            }
            Stmt::Forever(b) | Stmt::Warp(b) => body(b, f),
            Stmt::For {
                from, to, body: b, ..
            } => {
                f(from);
                f(to);
                body(b, f);
            }
            Stmt::ForEach { list, body: b, .. } => {
                f(list);
                body(b, f);
            }
            Stmt::ParallelForEach {
                list,
                body: b,
                parallelism,
                ..
            } => {
                f(list);
                if let Some(p) = parallelism {
                    f(p);
                }
                body(b, f);
            }
            Stmt::RunRing(r, args) | Stmt::LaunchRing(r, args) => {
                f(r);
                for a in args {
                    f(a);
                }
            }
            Stmt::CallCustom(_, args) => {
                for a in args {
                    f(a);
                }
            }
            Stmt::DeclareLocals(_)
            | Stmt::DeleteThisClone
            | Stmt::Stop(_)
            | Stmt::Show
            | Stmt::Hide
            | Stmt::NextCostume
            | Stmt::ResetTimer
            | Stmt::Comment(_) => {}
        }
    }

    /// Count command blocks in a script, recursing into nested bodies.
    pub fn block_count(stmts: &[Stmt]) -> usize {
        let mut n = 0;
        for s in stmts {
            n += 1;
            match s {
                Stmt::If(_, b)
                | Stmt::Repeat(_, b)
                | Stmt::RepeatUntil(_, b)
                | Stmt::Forever(b)
                | Stmt::Warp(b)
                | Stmt::For { body: b, .. }
                | Stmt::ForEach { body: b, .. }
                | Stmt::ParallelForEach { body: b, .. } => n += Stmt::block_count(b),
                Stmt::IfElse(_, t, e) => n += Stmt::block_count(t) + Stmt::block_count(e),
                _ => {}
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn block_count_recurses() {
        let script = vec![
            Stmt::Repeat(num(3.0), vec![Stmt::Say(text("hi")), Stmt::Move(num(1.0))]),
            Stmt::ResetTimer,
        ];
        assert_eq!(Stmt::block_count(&script), 4);
    }

    #[test]
    fn visit_exprs_reaches_nested_bodies() {
        let script = Stmt::IfElse(
            boolean(true),
            vec![Stmt::Say(text("a"))],
            vec![Stmt::Say(text("b"))],
        );
        let mut count = 0;
        script.visit_exprs(&mut |_| count += 1);
        assert_eq!(count, 3); // cond + 2 says
    }

    #[test]
    fn serde_roundtrip_of_parallel_for_each() {
        let s = Stmt::ParallelForEach {
            var: "cup".into(),
            list: var("cups"),
            body: vec![Stmt::Say(var("cup"))],
            parallelism: None,
            parallel: true,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Stmt = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
