//! Sprites, the stage, and whole projects.
//!
//! A Snap! *project* is one or more sprites, each with one or more scripts
//! (paper §2). Scripts run concurrently within and across sprites. The
//! stage is a special sprite-like object that owns global state such as
//! the timer.

use serde::{Deserialize, Serialize};

use crate::constant::Constant;
use crate::script::{CustomBlock, Script};

/// The static definition of a sprite (what the project file stores; the
/// VM instantiates it, possibly many times via cloning).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpriteDef {
    /// The sprite's name (e.g. `"Pitcher"`, `"Cup"`).
    pub name: String,
    /// Initial x position on the stage.
    pub x: f64,
    /// Initial y position.
    pub y: f64,
    /// Initial heading in degrees (90 = right, like Snap!).
    pub heading: f64,
    /// Initially visible?
    pub visible: bool,
    /// Costume names; the current costume starts at 1.
    pub costumes: Vec<String>,
    /// Sprite-local variables with initial values.
    pub variables: Vec<(String, Constant)>,
    /// The sprite's scripts.
    pub scripts: Vec<Script>,
    /// Custom blocks visible to this sprite only.
    pub custom_blocks: Vec<CustomBlock>,
}

impl SpriteDef {
    /// A fresh sprite at the origin, facing right, visible, no costumes.
    pub fn new(name: impl Into<String>) -> SpriteDef {
        SpriteDef {
            name: name.into(),
            x: 0.0,
            y: 0.0,
            heading: 90.0,
            visible: true,
            costumes: Vec::new(),
            variables: Vec::new(),
            scripts: Vec::new(),
            custom_blocks: Vec::new(),
        }
    }

    /// Builder: set the initial position.
    pub fn at(mut self, x: f64, y: f64) -> SpriteDef {
        self.x = x;
        self.y = y;
        self
    }

    /// Builder: add a script.
    pub fn with_script(mut self, script: Script) -> SpriteDef {
        self.scripts.push(script);
        self
    }

    /// Builder: add a sprite-local variable.
    pub fn with_variable(mut self, name: impl Into<String>, value: Constant) -> SpriteDef {
        self.variables.push((name.into(), value));
        self
    }

    /// Builder: add a custom block.
    pub fn with_custom_block(mut self, block: CustomBlock) -> SpriteDef {
        self.custom_blocks.push(block);
        self
    }

    /// Builder: set the costume list.
    pub fn with_costumes(mut self, costumes: Vec<String>) -> SpriteDef {
        self.costumes = costumes;
        self
    }

    /// Total command-block count across all scripts (project statistics).
    pub fn block_count(&self) -> usize {
        self.scripts.iter().map(Script::block_count).sum()
    }
}

/// A complete project: the unit a user saves, loads and runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Project name.
    pub name: String,
    /// Global variables with initial values.
    pub globals: Vec<(String, Constant)>,
    /// Custom blocks visible to every sprite.
    pub global_blocks: Vec<CustomBlock>,
    /// Scripts owned by the stage itself.
    pub stage_scripts: Vec<Script>,
    /// The sprites.
    pub sprites: Vec<SpriteDef>,
}

impl Project {
    /// An empty project.
    pub fn new(name: impl Into<String>) -> Project {
        Project {
            name: name.into(),
            globals: Vec::new(),
            global_blocks: Vec::new(),
            stage_scripts: Vec::new(),
            sprites: Vec::new(),
        }
    }

    /// Builder: add a sprite.
    pub fn with_sprite(mut self, sprite: SpriteDef) -> Project {
        self.sprites.push(sprite);
        self
    }

    /// Builder: add a global variable.
    pub fn with_global(mut self, name: impl Into<String>, value: Constant) -> Project {
        self.globals.push((name.into(), value));
        self
    }

    /// Builder: add a globally visible custom block.
    pub fn with_global_block(mut self, block: CustomBlock) -> Project {
        self.global_blocks.push(block);
        self
    }

    /// Builder: add a stage script.
    pub fn with_stage_script(mut self, script: Script) -> Project {
        self.stage_scripts.push(script);
        self
    }

    /// Look up a sprite definition by name.
    pub fn sprite(&self, name: &str) -> Option<&SpriteDef> {
        self.sprites.iter().find(|s| s.name == name)
    }

    /// Total command-block count across the whole project.
    pub fn block_count(&self) -> usize {
        self.sprites
            .iter()
            .map(SpriteDef::block_count)
            .sum::<usize>()
            + self
                .stage_scripts
                .iter()
                .map(Script::block_count)
                .sum::<usize>()
    }

    /// Serialize to the JSON project format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("project serialization cannot fail")
    }

    /// Load from the JSON project format.
    pub fn from_json(json: &str) -> Result<Project, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::stmt::Stmt;

    fn dragon_project() -> Project {
        // The paper's Fig. 2/3 example: a dragon controlled by arrow keys.
        Project::new("dragon").with_sprite(
            SpriteDef::new("Dragon")
                .with_script(Script::on_green_flag(vec![Stmt::Forever(vec![
                    Stmt::Move(num(2.0)),
                ])]))
                .with_script(Script::on_key(
                    "right arrow",
                    vec![Stmt::TurnRight(num(15.0))],
                ))
                .with_script(Script::on_key(
                    "left arrow",
                    vec![Stmt::TurnLeft(num(15.0))],
                )),
        )
    }

    #[test]
    fn project_json_roundtrip() {
        let p = dragon_project();
        let json = p.to_json();
        let back = Project::from_json(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn sprite_lookup_by_name() {
        let p = dragon_project();
        assert!(p.sprite("Dragon").is_some());
        assert!(p.sprite("Cat").is_none());
    }

    #[test]
    fn block_count_sums_scripts() {
        let p = dragon_project();
        // forever + move + turn + turn = 4
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn sprite_defaults_match_snap() {
        let s = SpriteDef::new("S");
        assert_eq!(s.heading, 90.0);
        assert!(s.visible);
        assert_eq!((s.x, s.y), (0.0, 0.0));
    }
}
