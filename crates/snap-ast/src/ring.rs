//! First-class procedures — the **gray ring** of Snap!.
//!
//! Wrapping a block in a gray ring delays its evaluation and turns it into
//! a value (paper §3.1): the multiplication block inside `map (( ) × 10)`
//! is not evaluated to `0`; the *function itself* becomes the input to
//! `map`. A [`Ring`] carries the quoted expression or script, its formal
//! parameters, and — once "ringified" by the VM — a snapshot of the
//! variables it closes over.

use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::value::Value;

/// What kind of block a ring quotes.
#[derive(Debug, Clone, PartialEq)]
pub enum RingBody {
    /// A reporter ring: evaluates to a value (e.g. `( ) × 10`).
    Reporter(Expr),
    /// A predicate ring: evaluates to a boolean.
    Predicate(Expr),
    /// A command ring: a script to run for its effects.
    Command(Vec<Stmt>),
}

/// A first-class procedure value.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Formal parameter names. When empty, arguments are bound to the
    /// ring's *empty slots* positionally, exactly like Snap!'s implicit
    /// parameters.
    pub params: Vec<String>,
    /// The quoted body.
    pub body: RingBody,
    /// Variables captured at ringification time (name, value), innermost
    /// last. Empty for rings built directly from the AST.
    pub captured: Vec<(String, Value)>,
}

impl Ring {
    /// A reporter ring with implicit (empty-slot) parameters.
    pub fn reporter(expr: Expr) -> Ring {
        Ring {
            params: Vec::new(),
            body: RingBody::Reporter(expr),
            captured: Vec::new(),
        }
    }

    /// A reporter ring with named formal parameters.
    pub fn reporter_with_params(params: Vec<String>, expr: Expr) -> Ring {
        Ring {
            params,
            body: RingBody::Reporter(expr),
            captured: Vec::new(),
        }
    }

    /// A predicate ring.
    pub fn predicate(expr: Expr) -> Ring {
        Ring {
            params: Vec::new(),
            body: RingBody::Predicate(expr),
            captured: Vec::new(),
        }
    }

    /// A command ring (quoted script).
    pub fn command(body: Vec<Stmt>) -> Ring {
        Ring {
            params: Vec::new(),
            body: RingBody::Command(body),
            captured: Vec::new(),
        }
    }

    /// A command ring with named formal parameters.
    pub fn command_with_params(params: Vec<String>, body: Vec<Stmt>) -> Ring {
        Ring {
            params,
            body: RingBody::Command(body),
            captured: Vec::new(),
        }
    }

    /// Attach a captured-environment snapshot (done by the VM when the
    /// ring literal is evaluated).
    pub fn with_captured(mut self, captured: Vec<(String, Value)>) -> Ring {
        self.captured = captured;
        self
    }

    /// `true` for reporter/predicate rings.
    pub fn is_reporter(&self) -> bool {
        matches!(self.body, RingBody::Reporter(_) | RingBody::Predicate(_))
    }

    /// Short human-readable description used by `Value::to_display_string`.
    pub fn describe(&self) -> String {
        let kind = match self.body {
            RingBody::Reporter(_) => "reporter",
            RingBody::Predicate(_) => "predicate",
            RingBody::Command(_) => "command",
        };
        if self.params.is_empty() {
            kind.to_owned()
        } else {
            format!("{kind}({})", self.params.join(", "))
        }
    }

    /// Look up a captured variable, innermost binding first.
    pub fn captured_var(&self, name: &str) -> Option<&Value> {
        self.captured
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn describe_mentions_params() {
        let r = Ring::reporter_with_params(vec!["n".into()], mul(var("n"), num(10.0)));
        assert_eq!(r.describe(), "reporter(n)");
        assert_eq!(Ring::command(vec![]).describe(), "command");
    }

    #[test]
    fn captured_lookup_prefers_innermost() {
        let r = Ring::reporter(empty_slot()).with_captured(vec![
            ("x".into(), Value::Number(1.0)),
            ("x".into(), Value::Number(2.0)),
        ]);
        assert_eq!(r.captured_var("x"), Some(&Value::Number(2.0)));
        assert_eq!(r.captured_var("y"), None);
    }
}
