//! A static project linter.
//!
//! The paper's whole premise is novice programmers; the block editor
//! prevents syntax errors, but a project can still reference variables
//! that don't exist, call custom blocks with the wrong number of inputs,
//! or stack blocks after a `forever` where they can never run. This
//! linter catches those before the green flag does — the batch-oriented
//! analogue of Snap!'s red error halos.

use std::collections::HashSet;
use std::fmt;

use crate::expr::{Expr, RingExprBody};
use crate::script::{BlockKind, CustomBlock, Script};
use crate::sprite::Project;
use crate::stmt::Stmt;

/// What a lint found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintKind {
    /// A variable reporter with no visible binding anywhere.
    UndefinedVariable(String),
    /// A custom-block call with no matching definition.
    UnknownCustomBlock(String),
    /// A custom-block call with the wrong number of inputs.
    CustomBlockArity {
        /// The block's name.
        name: String,
        /// Parameters declared.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// Statements stacked under a `forever` (or after `stop this
    /// script`) — they can never run.
    UnreachableCode,
    /// A loop with an empty body.
    EmptyLoopBody,
    /// `report` in a script or custom command, where nothing receives it.
    ReportOutsideReporter,
    /// A custom reporter whose body can finish without reporting.
    MissingReport(String),
    /// An empty slot outside any ring — it evaluates to nothing.
    EmptySlotOutsideRing,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintKind::UndefinedVariable(name) => {
                write!(f, "variable '{name}' is not defined anywhere")
            }
            LintKind::UnknownCustomBlock(name) => {
                write!(f, "custom block '{name}' has no definition")
            }
            LintKind::CustomBlockArity {
                name,
                expected,
                got,
            } => write!(
                f,
                "custom block '{name}' takes {expected} input(s) but is given {got}"
            ),
            LintKind::UnreachableCode => write!(f, "blocks after this point can never run"),
            LintKind::EmptyLoopBody => write!(f, "this loop has an empty body"),
            LintKind::ReportOutsideReporter => {
                write!(f, "'report' here has nothing to report to")
            }
            LintKind::MissingReport(name) => {
                write!(f, "custom reporter '{name}' can finish without reporting")
            }
            LintKind::EmptySlotOutsideRing => {
                write!(f, "an empty input slot outside a ring evaluates to nothing")
            }
        }
    }
}

/// One finding, with where it was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Sprite name, `"stage"`, or `custom block <name>`.
    pub location: String,
    /// The finding.
    pub kind: LintKind,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.location, self.kind)
    }
}

/// Lint a whole project.
pub fn lint_project(project: &Project) -> Vec<Lint> {
    let mut lints = Vec::new();
    let globals: HashSet<&str> = project.globals.iter().map(|(n, _)| n.as_str()).collect();
    let global_blocks: Vec<&CustomBlock> = project.global_blocks.iter().collect();

    // Stage scripts.
    for script in &project.stage_scripts {
        lint_script(
            script,
            &globals,
            &HashSet::new(),
            &global_blocks,
            "stage",
            &mut lints,
        );
    }
    // Global custom blocks.
    for block in &project.global_blocks {
        lint_custom_block(block, &globals, &HashSet::new(), &global_blocks, &mut lints);
    }
    // Sprites.
    for sprite in &project.sprites {
        let sprite_vars: HashSet<&str> = sprite.variables.iter().map(|(n, _)| n.as_str()).collect();
        let mut visible_blocks = global_blocks.clone();
        visible_blocks.extend(sprite.custom_blocks.iter());
        for script in &sprite.scripts {
            lint_script(
                script,
                &globals,
                &sprite_vars,
                &visible_blocks,
                &sprite.name,
                &mut lints,
            );
        }
        for block in &sprite.custom_blocks {
            lint_custom_block(block, &globals, &sprite_vars, &visible_blocks, &mut lints);
        }
    }
    lints
}

fn lint_custom_block(
    block: &CustomBlock,
    globals: &HashSet<&str>,
    sprite_vars: &HashSet<&str>,
    blocks: &[&CustomBlock],
    lints: &mut Vec<Lint>,
) {
    let location = format!("custom block {}", block.name);
    let mut scope: Vec<String> = block.params.clone();
    let in_reporter = block.kind != BlockKind::Command;
    walk_stmts(
        &block.body,
        &mut scope,
        globals,
        sprite_vars,
        blocks,
        in_reporter,
        &location,
        lints,
    );
    if in_reporter && !always_reports(&block.body) {
        lints.push(Lint {
            location,
            kind: LintKind::MissingReport(block.name.clone()),
        });
    }
}

fn lint_script(
    script: &Script,
    globals: &HashSet<&str>,
    sprite_vars: &HashSet<&str>,
    blocks: &[&CustomBlock],
    location: &str,
    lints: &mut Vec<Lint>,
) {
    let mut scope = Vec::new();
    walk_stmts(
        &script.body,
        &mut scope,
        globals,
        sprite_vars,
        blocks,
        false,
        location,
        lints,
    );
}

/// Conservative "every path reports" check.
fn always_reports(stmts: &[Stmt]) -> bool {
    for stmt in stmts {
        match stmt {
            Stmt::Report(_) => return true,
            Stmt::IfElse(_, t, e) if always_reports(t) && always_reports(e) => {
                return true;
            }
            Stmt::Forever(_) => return true, // never falls through
            _ => {}
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn walk_stmts(
    stmts: &[Stmt],
    scope: &mut Vec<String>,
    globals: &HashSet<&str>,
    sprite_vars: &HashSet<&str>,
    blocks: &[&CustomBlock],
    in_reporter: bool,
    location: &str,
    lints: &mut Vec<Lint>,
) {
    let depth = scope.len();
    for (i, stmt) in stmts.iter().enumerate() {
        // This statement's own expressions (bodies are walked below,
        // with their scopes).
        stmt.visit_own_exprs(&mut |e| {
            walk_expr(e, scope, globals, sprite_vars, blocks, location, lints);
        });

        let subscope =
            |body: &[Stmt], extra: Option<&str>, scope: &mut Vec<String>, lints: &mut Vec<Lint>| {
                let before = scope.len();
                if let Some(name) = extra {
                    scope.push(name.to_owned());
                }
                walk_stmts(
                    body,
                    scope,
                    globals,
                    sprite_vars,
                    blocks,
                    in_reporter,
                    location,
                    lints,
                );
                scope.truncate(before);
            };

        match stmt {
            // Assignment creates the variable if missing (documented
            // VM behaviour), so record it as defined from here on.
            Stmt::SetVar(name, _) | Stmt::ChangeVar(name, _) if !scope.contains(name) => {
                scope.push(name.clone());
            }
            Stmt::DeclareLocals(names) => scope.extend(names.iter().cloned()),
            Stmt::If(_, body) | Stmt::Repeat(_, body) | Stmt::RepeatUntil(_, body) => {
                if body.is_empty() && !matches!(stmt, Stmt::If(_, _)) {
                    lints.push(Lint {
                        location: location.to_owned(),
                        kind: LintKind::EmptyLoopBody,
                    });
                }
                subscope(body, None, scope, lints);
            }
            Stmt::IfElse(_, t, e) => {
                subscope(t, None, scope, lints);
                subscope(e, None, scope, lints);
            }
            Stmt::Warp(body) => subscope(body, None, scope, lints),
            Stmt::Forever(body) => {
                if body.is_empty() {
                    lints.push(Lint {
                        location: location.to_owned(),
                        kind: LintKind::EmptyLoopBody,
                    });
                }
                subscope(body, None, scope, lints);
                if i + 1 < stmts.len() {
                    lints.push(Lint {
                        location: location.to_owned(),
                        kind: LintKind::UnreachableCode,
                    });
                }
            }
            Stmt::For { var, body, .. }
            | Stmt::ForEach { var, body, .. }
            | Stmt::ParallelForEach { var, body, .. } => {
                if body.is_empty() {
                    lints.push(Lint {
                        location: location.to_owned(),
                        kind: LintKind::EmptyLoopBody,
                    });
                }
                subscope(body, Some(var), scope, lints);
            }
            Stmt::CallCustom(name, args) => match blocks.iter().find(|b| &b.name == name) {
                None => lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::UnknownCustomBlock(name.clone()),
                }),
                Some(block) if block.params.len() != args.len() => lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::CustomBlockArity {
                        name: name.clone(),
                        expected: block.params.len(),
                        got: args.len(),
                    },
                }),
                Some(_) => {}
            },
            Stmt::Report(_) if !in_reporter => lints.push(Lint {
                location: location.to_owned(),
                kind: LintKind::ReportOutsideReporter,
            }),
            Stmt::Stop(crate::stmt::StopKind::ThisScript) if i + 1 < stmts.len() => {
                lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::UnreachableCode,
                });
            }
            _ => {}
        }
    }
    scope.truncate(depth);
}

fn walk_expr(
    e: &Expr,
    scope: &[String],
    globals: &HashSet<&str>,
    sprite_vars: &HashSet<&str>,
    blocks: &[&CustomBlock],
    location: &str,
    lints: &mut Vec<Lint>,
) {
    match e {
        Expr::Var(name) => {
            let known = scope.iter().any(|s| s == name)
                || globals.contains(name.as_str())
                || sprite_vars.contains(name.as_str());
            if !known {
                lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::UndefinedVariable(name.clone()),
                });
            }
        }
        Expr::EmptySlot => lints.push(Lint {
            location: location.to_owned(),
            kind: LintKind::EmptySlotOutsideRing,
        }),
        Expr::CallCustom(name, args) => {
            match blocks.iter().find(|b| &b.name == name) {
                None => lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::UnknownCustomBlock(name.clone()),
                }),
                Some(block) if block.params.len() != args.len() => lints.push(Lint {
                    location: location.to_owned(),
                    kind: LintKind::CustomBlockArity {
                        name: name.clone(),
                        expected: block.params.len(),
                        got: args.len(),
                    },
                }),
                Some(_) => {}
            }
            for arg in args {
                walk_expr(arg, scope, globals, sprite_vars, blocks, location, lints);
            }
        }
        Expr::Ring(ring) => {
            // A ring opens a new scope with its parameters; its empty
            // slots are legitimate. Variables it references must still
            // resolve (against the scope at ring creation).
            let mut ring_scope: Vec<String> = scope.to_vec();
            ring_scope.extend(ring.params.iter().cloned());
            match &ring.body {
                RingExprBody::Reporter(body) | RingExprBody::Predicate(body) => {
                    walk_ring_expr(
                        body,
                        &ring_scope,
                        globals,
                        sprite_vars,
                        blocks,
                        location,
                        lints,
                    );
                }
                RingExprBody::Command(stmts) => {
                    // `report` inside a command ring legitimately stops
                    // the block, so treat it as a reporting context.
                    let mut inner = ring_scope;
                    walk_stmts(
                        stmts,
                        &mut inner,
                        globals,
                        sprite_vars,
                        blocks,
                        true,
                        location,
                        lints,
                    );
                }
            }
        }
        // Everything else: recurse into direct children, but let the
        // generic visitor skip Var/EmptySlot handled above.
        Expr::Binary(_, a, b)
        | Expr::Item(a, b)
        | Expr::Contains(a, b)
        | Expr::Split(a, b)
        | Expr::LetterOf(a, b)
        | Expr::PickRandom(a, b)
        | Expr::NumbersFromTo(a, b) => {
            walk_expr(a, scope, globals, sprite_vars, blocks, location, lints);
            walk_expr(b, scope, globals, sprite_vars, blocks, location, lints);
        }
        Expr::Unary(_, a) | Expr::LengthOf(a) | Expr::TextLength(a) => {
            walk_expr(a, scope, globals, sprite_vars, blocks, location, lints);
        }
        Expr::MakeList(items) | Expr::Join(items) => {
            for item in items {
                walk_expr(item, scope, globals, sprite_vars, blocks, location, lints);
            }
        }
        Expr::CallRing(r, args) => {
            walk_expr(r, scope, globals, sprite_vars, blocks, location, lints);
            for arg in args {
                walk_expr(arg, scope, globals, sprite_vars, blocks, location, lints);
            }
        }
        Expr::Map { ring, list } | Expr::Keep { pred: ring, list } => {
            walk_expr(ring, scope, globals, sprite_vars, blocks, location, lints);
            walk_expr(list, scope, globals, sprite_vars, blocks, location, lints);
        }
        Expr::Combine { list, ring } => {
            walk_expr(list, scope, globals, sprite_vars, blocks, location, lints);
            walk_expr(ring, scope, globals, sprite_vars, blocks, location, lints);
        }
        Expr::ParallelMap {
            ring,
            list,
            workers,
        } => {
            walk_expr(ring, scope, globals, sprite_vars, blocks, location, lints);
            walk_expr(list, scope, globals, sprite_vars, blocks, location, lints);
            if let Some(w) = workers {
                walk_expr(w, scope, globals, sprite_vars, blocks, location, lints);
            }
        }
        Expr::MapReduce {
            mapper,
            reducer,
            list,
        } => {
            walk_expr(mapper, scope, globals, sprite_vars, blocks, location, lints);
            walk_expr(
                reducer,
                scope,
                globals,
                sprite_vars,
                blocks,
                location,
                lints,
            );
            walk_expr(list, scope, globals, sprite_vars, blocks, location, lints);
        }
        Expr::Literal(_) | Expr::Attribute(_) => {}
    }
}

/// Inside a ring body the empty slots are parameters, not mistakes.
#[allow(clippy::too_many_arguments)]
fn walk_ring_expr(
    e: &Expr,
    scope: &[String],
    globals: &HashSet<&str>,
    sprite_vars: &HashSet<&str>,
    blocks: &[&CustomBlock],
    location: &str,
    lints: &mut Vec<Lint>,
) {
    // Substitute own-level empty slots away, then reuse the main walker
    // (nested rings keep their own slots and are handled recursively).
    let sanitized = e.map_own_empty_slots(&mut |_| Expr::Literal(crate::Constant::Nothing));
    walk_expr(
        &sanitized,
        scope,
        globals,
        sprite_vars,
        blocks,
        location,
        lints,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::sprite::SpriteDef;
    use crate::Constant;

    fn project_with_script(body: Vec<Stmt>) -> Project {
        Project::new("t").with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(body)))
    }

    fn kinds(project: &Project) -> Vec<LintKind> {
        lint_project(project).into_iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_project_has_no_lints() {
        let project = Project::new("t")
            .with_global("score", Constant::Number(0.0))
            .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                set_var("x", num(1.0)),
                say(add(var("x"), var("score"))),
                repeat(num(3.0), vec![change_var("x", num(1.0))]),
            ])));
        assert!(kinds(&project).is_empty(), "{:?}", lint_project(&project));
    }

    #[test]
    fn undefined_variable_is_caught() {
        let project = project_with_script(vec![say(var("ghost"))]);
        assert_eq!(
            kinds(&project),
            vec![LintKind::UndefinedVariable("ghost".into())]
        );
    }

    #[test]
    fn assignment_defines_for_later_statements() {
        let project = project_with_script(vec![set_var("x", num(1.0)), say(var("x"))]);
        assert!(kinds(&project).is_empty());
    }

    #[test]
    fn loop_variables_are_in_scope_inside_only() {
        let ok = project_with_script(vec![for_each("w", number_list([1.0]), vec![say(var("w"))])]);
        assert!(kinds(&ok).is_empty());
        let bad = project_with_script(vec![
            for_each("w", number_list([1.0]), vec![say(var("w"))]),
            say(var("w")),
        ]);
        assert_eq!(kinds(&bad), vec![LintKind::UndefinedVariable("w".into())]);
    }

    #[test]
    fn ring_params_and_slots_are_fine() {
        let project = project_with_script(vec![say(map_over(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([1.0, 2.0]),
        ))]);
        assert!(kinds(&project).is_empty());
    }

    #[test]
    fn empty_slot_outside_ring_is_flagged() {
        let project = project_with_script(vec![say(add(empty_slot(), num(1.0)))]);
        assert_eq!(kinds(&project), vec![LintKind::EmptySlotOutsideRing]);
    }

    #[test]
    fn unknown_custom_block_and_arity() {
        let project = Project::new("t")
            .with_global_block(CustomBlock::reporter_expr(
                "double",
                vec!["n".into()],
                add(var("n"), var("n")),
            ))
            .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                say(call_custom("nope", vec![])),
                say(call_custom("double", vec![num(1.0), num(2.0)])),
            ])));
        let found = kinds(&project);
        assert!(found.contains(&LintKind::UnknownCustomBlock("nope".into())));
        assert!(found.contains(&LintKind::CustomBlockArity {
            name: "double".into(),
            expected: 1,
            got: 2
        }));
    }

    #[test]
    fn unreachable_after_forever() {
        let project =
            project_with_script(vec![forever(vec![say(text("tick"))]), say(text("never"))]);
        assert_eq!(kinds(&project), vec![LintKind::UnreachableCode]);
    }

    #[test]
    fn empty_loop_bodies_are_flagged() {
        let project = project_with_script(vec![repeat(num(3.0), vec![]), forever(vec![])]);
        let found = kinds(&project);
        assert_eq!(
            found
                .iter()
                .filter(|k| **k == LintKind::EmptyLoopBody)
                .count(),
            2
        );
    }

    #[test]
    fn reporter_that_may_not_report_is_flagged() {
        let project = Project::new("t").with_global_block(CustomBlock::reporter(
            "maybe",
            vec!["n".into()],
            vec![if_then(gt(var("n"), num(0.0)), vec![report(var("n"))])],
        ));
        assert!(kinds(&project).contains(&LintKind::MissingReport("maybe".into())));
        // Both branches reporting is fine.
        let ok = Project::new("t").with_global_block(CustomBlock::reporter(
            "sign",
            vec!["n".into()],
            vec![if_else(
                gt(var("n"), num(0.0)),
                vec![report(num(1.0))],
                vec![report(num(-1.0))],
            )],
        ));
        assert!(kinds(&ok).is_empty());
    }

    #[test]
    fn report_in_plain_script_is_flagged() {
        let project = project_with_script(vec![report(num(1.0))]);
        assert_eq!(kinds(&project), vec![LintKind::ReportOutsideReporter]);
    }

    #[test]
    fn sprite_locals_shadow_nothing_but_resolve() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_variable("lives", Constant::Number(3.0))
                .with_script(Script::on_green_flag(vec![say(var("lives"))])),
        );
        assert!(kinds(&project).is_empty());
    }

    #[test]
    fn lints_display_readably() {
        let lint = Lint {
            location: "S".into(),
            kind: LintKind::UndefinedVariable("x".into()),
        };
        assert_eq!(lint.to_string(), "[S] variable 'x' is not defined anywhere");
    }
}
