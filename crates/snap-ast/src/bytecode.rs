//! Ring bytecode: flat, register-based programs compiled from pure rings.
//!
//! The tree-walking evaluator in [`crate::pure`] re-dispatches on the
//! `Expr` enum and re-resolves names against a `(String, Value)` binding
//! list on *every item* of a parallel map. This module is the next step
//! of the paper's `mappedCode()` → `new Function(...)` pipeline (§4.1,
//! Listing 2): a ring is lowered **once** into a linear instruction
//! stream over single-assignment virtual registers, with parameters,
//! empty slots, and captured variables resolved to register loads at
//! compile time — no per-item `HashMap` or name lookups remain.
//!
//! Two programs can come out of lowering:
//!
//! * [`Program`] — boxed bytecode over [`Value`] registers. Covers every
//!   strict, non-higher-order block (arithmetic, comparisons, logic,
//!   text, list accessors). Semantics are bit-for-bit those of the tree
//!   walk: instructions are emitted in exactly the evaluator's
//!   evaluation order, so coercions, errors, and the empty-slot cursor
//!   behave identically.
//! * [`NumProgram`] — the **numeric fast path** over unboxed `f64`
//!   registers. A cheap type pass proves the ring numeric: every
//!   argument use sits in a position the evaluator coerces with
//!   `to_number`, and the root always produces a `Value::Number`. Then
//!   the whole body runs on a stack-allocated `f64` array with zero
//!   heap traffic per call.
//!
//! Rings using higher-order or non-strict blocks (nested rings, `call`,
//! `map`, `combine`, …) and rings referencing unbound variables are not
//! lowered; [`crate::pure::PureFn`] keeps tree-walking those (and serves
//! as the differential-testing oracle for the compiled paths).
//!
//! Constant folding happens during lowering: literal scalars, captured
//! variables (immutable for the life of a ring), and operator nodes
//! whose operands folded are evaluated at compile time with the same
//! `eval_binop` / `eval_unop` the interpreter uses, so folded results
//! cannot diverge from unfolded ones.

use crate::constant::Constant;
use crate::error::EvalError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::pure::{eval_binop, eval_unop, numbers_from_to};
use crate::ring::{Ring, RingBody};
use crate::value::{List, Value};

/// The unboxed arithmetic core shared by [`eval_binop`] and the numeric
/// fast path: the `f64` result for the arithmetic operators, `None` for
/// comparison/logic/equality operators (those need full Snap! value
/// semantics). Keeping one definition is what makes the fast path
/// bit-for-bit faithful to the interpreter.
#[inline]
pub fn num_binop(op: BinOp, x: f64, y: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        // Snap!'s mod: result takes the sign of the divisor.
        BinOp::Mod => x - y * (x / y).floor(),
        BinOp::Pow => x.powf(y),
        _ => return None,
    })
}

/// The unboxed core of [`eval_unop`] (see [`num_binop`]); `None` for
/// `not`, the only non-numeric unary block.
#[inline]
pub fn num_unop(op: UnOp, x: f64) -> Option<f64> {
    Some(match op {
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Round => x.round(),
        UnOp::Floor => x.floor(),
        UnOp::Ceil => x.ceil(),
        UnOp::Sin => x.to_radians().sin(),
        UnOp::Cos => x.to_radians().cos(),
        UnOp::Ln => x.ln(),
        UnOp::Exp => x.exp(),
        UnOp::Not => return None,
    })
}

/// The empty-slot value for slot `i`: Snap!'s binding rule, precomputed.
/// No arguments → Nothing; exactly one argument fills *every* slot;
/// otherwise slots take arguments positionally (missing → Nothing).
#[inline]
fn slot_value(args: &[Value], i: usize) -> Value {
    match args.len() {
        0 => Value::Nothing,
        1 => args[0].clone(),
        _ => args.get(i).cloned().unwrap_or(Value::Nothing),
    }
}

/// Register index. Programs with more than `u16::MAX` nodes fall back
/// to the tree walk (no real ring comes close).
type Reg = u16;

/// One boxed-bytecode instruction. Registers are single-assignment and
/// single-use (the program is a linearized expression tree), so the
/// interpreter may move values out of source registers.
#[derive(Debug, Clone)]
enum Instr {
    /// `consts[src]` (cloned — list constants share storage the same way
    /// a re-evaluated captured variable would) → `dst`.
    Const(u16, Reg),
    /// Materialize `fresh[src]` into a brand-new value (list literals
    /// produce fresh storage on every evaluation) → `dst`.
    Fresh(u16, Reg),
    /// `args[src]` (cloned) → `dst`.
    Arg(u16, Reg),
    /// Empty-slot argument `src` (see [`slot_value`]) → `dst`.
    Slot(u16, Reg),
    /// `eval_binop(op, a, b)` → `dst`.
    Bin(BinOp, Reg, Reg, Reg),
    /// `eval_unop(op, a)` → `dst`.
    Un(UnOp, Reg, Reg),
    /// `item <a> of <b>` (1-based) → `dst`.
    Item(Reg, Reg, Reg),
    /// `length of <a>` (list length) → `dst`.
    Len(Reg, Reg),
    /// `<a> contains <b>` → `dst`.
    Contains(Reg, Reg, Reg),
    /// Fail with the tree walk's `TypeMismatch` unless `src` holds a
    /// list, *without* consuming the register. `contains` type-checks
    /// its list operand before evaluating its value operand; this
    /// reproduces that error ordering in the flat stream.
    CheckList(Reg),
    /// `join` the display strings of `srcs` → `dst`.
    Join(Box<[Reg]>, Reg),
    /// `split <a> by <b>` → `dst`.
    Split(Reg, Reg, Reg),
    /// `letter <a> of <b>` → `dst`.
    Letter(Reg, Reg, Reg),
    /// text `length of <a>` (characters) → `dst`.
    TextLen(Reg, Reg),
    /// `numbers from <a> to <b>` → `dst`.
    Range(Reg, Reg, Reg),
    /// fresh list of `srcs` → `dst`.
    MakeList(Box<[Reg]>, Reg),
}

/// A lowered ring body over boxed [`Value`] registers.
#[derive(Debug)]
pub struct Program {
    /// `Some(n)` when the ring has named parameters: calls must pass
    /// exactly `n` arguments (the tree walk's arity check).
    arity: Option<usize>,
    consts: Vec<Value>,
    fresh: Vec<Constant>,
    instrs: Vec<Instr>,
    regs: usize,
    out: Reg,
}

impl Program {
    /// Execute against `args`, reproducing `PureFn::call` exactly.
    pub fn call(&self, args: &[Value]) -> Result<Value, EvalError> {
        if let Some(expected) = self.arity {
            if args.len() != expected {
                return Err(EvalError::ArityMismatch {
                    expected,
                    got: args.len(),
                });
            }
        }
        let mut regs = vec![Value::Nothing; self.regs];
        // Registers are single-use, so operands are *moved* out below.
        let take = |regs: &mut [Value], r: Reg| std::mem::take(&mut regs[r as usize]);
        for instr in &self.instrs {
            let (value, dst) = match instr {
                Instr::Const(i, dst) => (self.consts[*i as usize].clone(), *dst),
                Instr::Fresh(i, dst) => (self.fresh[*i as usize].to_value(), *dst),
                Instr::Arg(i, dst) => (args[*i as usize].clone(), *dst),
                Instr::Slot(i, dst) => (slot_value(args, *i as usize), *dst),
                Instr::Bin(op, a, b, dst) => {
                    let a = take(&mut regs, *a);
                    let b = take(&mut regs, *b);
                    (eval_binop(*op, &a, &b), *dst)
                }
                Instr::Un(op, a, dst) => {
                    let a = take(&mut regs, *a);
                    (eval_unop(*op, &a), *dst)
                }
                Instr::Item(a, b, dst) => {
                    let idx = take(&mut regs, *a).to_number();
                    let list = expect_list(take(&mut regs, *b))?;
                    let i = idx as usize;
                    let item = list.item(i).ok_or(EvalError::IndexOutOfRange {
                        index: i,
                        len: list.len(),
                    })?;
                    (item, *dst)
                }
                Instr::Len(a, dst) => {
                    let list = expect_list(take(&mut regs, *a))?;
                    (Value::Number(list.len() as f64), *dst)
                }
                Instr::Contains(a, b, dst) => {
                    let list = expect_list(take(&mut regs, *a))?;
                    let value = take(&mut regs, *b);
                    (Value::Bool(list.contains(&value)), *dst)
                }
                Instr::CheckList(src) => {
                    if !matches!(regs[*src as usize], Value::List(_)) {
                        return Err(EvalError::TypeMismatch {
                            expected: "list",
                            got: regs[*src as usize].to_display_string(),
                        });
                    }
                    continue;
                }
                Instr::Join(srcs, dst) => {
                    let mut out = String::new();
                    for src in srcs.iter() {
                        out.push_str(&take(&mut regs, *src).to_display_string());
                    }
                    (Value::Text(out), *dst)
                }
                Instr::Split(a, b, dst) => {
                    let text = take(&mut regs, *a).to_display_string();
                    let delim = take(&mut regs, *b).to_display_string();
                    let items: Vec<Value> = if delim.is_empty() {
                        text.chars().map(|c| Value::Text(c.to_string())).collect()
                    } else {
                        text.split(&delim)
                            .filter(|s| !s.is_empty())
                            .map(|s| Value::Text(s.to_owned()))
                            .collect()
                    };
                    (Value::list(items), *dst)
                }
                Instr::Letter(a, b, dst) => {
                    let i = take(&mut regs, *a).to_number() as usize;
                    let text = take(&mut regs, *b).to_display_string();
                    let letter = text
                        .chars()
                        .nth(i.saturating_sub(1))
                        .map(|c| c.to_string())
                        .unwrap_or_default();
                    (Value::Text(letter), *dst)
                }
                Instr::TextLen(a, dst) => {
                    let text = take(&mut regs, *a).to_display_string();
                    (Value::Number(text.chars().count() as f64), *dst)
                }
                Instr::Range(a, b, dst) => {
                    let a = take(&mut regs, *a).to_number();
                    let b = take(&mut regs, *b).to_number();
                    (numbers_from_to(a, b), *dst)
                }
                Instr::MakeList(srcs, dst) => {
                    let mut items = Vec::with_capacity(srcs.len());
                    for src in srcs.iter() {
                        items.push(take(&mut regs, *src));
                    }
                    (Value::list(items), *dst)
                }
            };
            regs[dst as usize] = value;
        }
        Ok(std::mem::take(&mut regs[self.out as usize]))
    }

    /// Instruction count (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program folded to a single constant load.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

fn expect_list(v: Value) -> Result<List, EvalError> {
    match v {
        Value::List(l) => Ok(l),
        other => Err(EvalError::TypeMismatch {
            expected: "list",
            got: other.to_display_string(),
        }),
    }
}

/// One numeric-fast-path instruction over `f64` registers.
#[derive(Debug, Clone, Copy)]
enum NumInstr {
    /// Immediate → `dst`.
    Const(f64, Reg),
    /// `args[src].to_number()` → `dst`.
    Arg(u16, Reg),
    /// `slot_value(args, src).to_number()` → `dst`.
    Slot(u16, Reg),
    /// Arithmetic op (see [`num_binop`]) → `dst`.
    Bin(BinOp, Reg, Reg, Reg),
    /// Numeric unary op (see [`num_unop`]) → `dst`.
    Un(UnOp, Reg, Reg),
}

/// Register-file width of the numeric fast path. Numeric lowering
/// *declines* programs wider than this (they fall back to boxed
/// bytecode), so both [`NumProgram::call`] and [`NumProgram::eval_batch`]
/// run on fixed-size stack arrays with no heap branch.
const NUM_STACK_REGS: usize = 32;

/// Elements per batch block in [`NumProgram::eval_batch`]. The register
/// file is `NUM_STACK_REGS × BATCH_LANES` `f64`s (16 KiB) — small enough
/// for worker stacks, wide enough that the lane loops amortize the
/// per-instruction dispatch and autovectorize.
pub const BATCH_LANES: usize = 64;

/// A lowered ring body proven numeric: executes entirely in unboxed
/// `f64` registers and always reports a `Value::Number`.
#[derive(Debug)]
pub struct NumProgram {
    arity: Option<usize>,
    instrs: Vec<NumInstr>,
    regs: usize,
    out: Reg,
}

/// One lane loop of a batch binary op. Dispatching on `op` **once**,
/// outside the element loop, is what lets the optimizer turn each arm's
/// plain indexed loop into SIMD; every arm still computes through
/// [`num_binop`], so batch results cannot diverge from the scalar path.
#[inline]
fn batch_binop(op: BinOp, a: &[f64], b: &[f64], dst: &mut [f64]) {
    #[inline(always)]
    fn lanes(a: &[f64], b: &[f64], dst: &mut [f64], f: impl Fn(f64, f64) -> f64) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
    }
    // One macro expansion per arm: each closure is a distinct type, so
    // every operator gets its own monomorphized lane loop with the op
    // folded to a constant.
    macro_rules! arm {
        ($op:expr) => {
            lanes(a, b, dst, |x, y| num_binop($op, x, y).expect("arith op"))
        };
    }
    match op {
        BinOp::Add => arm!(BinOp::Add),
        BinOp::Sub => arm!(BinOp::Sub),
        BinOp::Mul => arm!(BinOp::Mul),
        BinOp::Div => arm!(BinOp::Div),
        BinOp::Mod => arm!(BinOp::Mod),
        BinOp::Pow => arm!(BinOp::Pow),
        _ => unreachable!("non-arithmetic op in a numeric program"),
    }
}

/// One lane loop of a batch unary op (see [`batch_binop`]).
#[inline]
fn batch_unop(op: UnOp, a: &[f64], dst: &mut [f64]) {
    #[inline(always)]
    fn lanes(a: &[f64], dst: &mut [f64], f: impl Fn(f64) -> f64) {
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = f(x);
        }
    }
    macro_rules! arm {
        ($op:expr) => {
            lanes(a, dst, |x| num_unop($op, x).expect("numeric op"))
        };
    }
    match op {
        UnOp::Neg => arm!(UnOp::Neg),
        UnOp::Abs => arm!(UnOp::Abs),
        UnOp::Sqrt => arm!(UnOp::Sqrt),
        UnOp::Round => arm!(UnOp::Round),
        UnOp::Floor => arm!(UnOp::Floor),
        UnOp::Ceil => arm!(UnOp::Ceil),
        UnOp::Sin => arm!(UnOp::Sin),
        UnOp::Cos => arm!(UnOp::Cos),
        UnOp::Ln => arm!(UnOp::Ln),
        UnOp::Exp => arm!(UnOp::Exp),
        UnOp::Not => unreachable!("non-numeric op in a numeric program"),
    }
}

impl NumProgram {
    /// Execute against `args`, reproducing `PureFn::call` exactly.
    pub fn call(&self, args: &[Value]) -> Result<Value, EvalError> {
        if let Some(expected) = self.arity {
            if args.len() != expected {
                return Err(EvalError::ArityMismatch {
                    expected,
                    got: args.len(),
                });
            }
        }
        // Lowering declines programs wider than NUM_STACK_REGS, so the
        // register file is always this fixed stack array.
        debug_assert!(self.regs <= NUM_STACK_REGS);
        let mut stack = [0.0f64; NUM_STACK_REGS];
        let regs: &mut [f64] = &mut stack[..self.regs];
        for instr in &self.instrs {
            match *instr {
                NumInstr::Const(v, dst) => regs[dst as usize] = v,
                NumInstr::Arg(i, dst) => regs[dst as usize] = args[i as usize].to_number(),
                NumInstr::Slot(i, dst) => {
                    regs[dst as usize] = match args.len() {
                        0 => 0.0,
                        1 => args[0].to_number(),
                        _ => args.get(i as usize).map(Value::to_number).unwrap_or(0.0),
                    }
                }
                NumInstr::Bin(op, a, b, dst) => {
                    let (x, y) = (regs[a as usize], regs[b as usize]);
                    regs[dst as usize] = num_binop(op, x, y).expect("arith op");
                }
                NumInstr::Un(op, a, dst) => {
                    let x = regs[a as usize];
                    regs[dst as usize] = num_unop(op, x).expect("numeric op");
                }
            }
        }
        Ok(Value::Number(regs[self.out as usize]))
    }

    /// `true` when [`NumProgram::eval_batch`] covers this program: every
    /// element of a batch is the program's **single** numeric argument.
    /// That holds for slot-style rings (`arity == None` — with exactly
    /// one argument, every empty slot receives it) and one-parameter
    /// rings (`arity == Some(1)` — `Arg(0)` is the element). Multi-arg
    /// rings keep the scalar path.
    pub fn batchable(&self) -> bool {
        matches!(self.arity, None | Some(1))
    }

    /// Evaluate the program over every element of `inputs`, appending
    /// one output per element to `out` — the columnar batch tier.
    ///
    /// Each `inputs[i]` is treated exactly as `call(&[Value::Number(
    /// inputs[i])])` would treat its argument (`to_number` of a `Number`
    /// is the identity, so results are bit-identical, -0.0/±inf/
    /// subnormals included — enforced by the `batch_diff` differential
    /// suite). NaN *payload* bits are the one exemption: when two NaNs
    /// meet at a commutable op, operand order decides which payload
    /// propagates, and the optimizer may order the scalar and batch
    /// loops differently (IEEE 754 only requires *a* quiet NaN).
    /// The loop structure is instruction-outer / element-inner over
    /// [`BATCH_LANES`]-wide blocks: per-element dispatch disappears and
    /// the plain indexed lane loops autovectorize.
    ///
    /// # Panics
    /// Debug-asserts [`NumProgram::batchable`]; on a non-batchable
    /// program the per-element semantics would be wrong, so callers must
    /// check first.
    pub fn eval_batch(&self, inputs: &[f64], out: &mut Vec<f64>) {
        debug_assert!(self.batchable(), "eval_batch on a non-batchable program");
        out.reserve(inputs.len());
        // Lane-contiguous, register-major file: register r's lanes are
        // `file[r*BATCH_LANES .. r*BATCH_LANES + n]`.
        let mut file = [0.0f64; NUM_STACK_REGS * BATCH_LANES];
        for block in inputs.chunks(BATCH_LANES) {
            let n = block.len();
            for instr in &self.instrs {
                match *instr {
                    NumInstr::Const(v, dst) => {
                        file[dst as usize * BATCH_LANES..][..n].fill(v);
                    }
                    // The whole block is the single argument: parameter
                    // loads and every empty slot read the element.
                    NumInstr::Arg(_, dst) | NumInstr::Slot(_, dst) => {
                        file[dst as usize * BATCH_LANES..][..n].copy_from_slice(block);
                    }
                    NumInstr::Bin(op, a, b, dst) => {
                        // Operand registers are always allocated before
                        // their consumer, so dst strictly exceeds a and
                        // b: split_at_mut yields disjoint slices without
                        // aliasing checks in the lane loop.
                        let (src, rest) = file.split_at_mut(dst as usize * BATCH_LANES);
                        batch_binop(
                            op,
                            &src[a as usize * BATCH_LANES..][..n],
                            &src[b as usize * BATCH_LANES..][..n],
                            &mut rest[..n],
                        );
                    }
                    NumInstr::Un(op, a, dst) => {
                        let (src, rest) = file.split_at_mut(dst as usize * BATCH_LANES);
                        batch_unop(op, &src[a as usize * BATCH_LANES..][..n], &mut rest[..n]);
                    }
                }
            }
            out.extend_from_slice(&file[self.out as usize * BATCH_LANES..][..n]);
        }
    }

    /// Instruction count (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program folded to a single constant load.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// The result of lowering a ring.
#[derive(Debug)]
pub enum Lowered {
    /// Proven numeric: unboxed fast path.
    Numeric(NumProgram),
    /// Compilable, but not numeric: boxed bytecode.
    Boxed(Program),
}

/// Lower a reporter/predicate ring to bytecode. Returns `None` when the
/// body uses a construct only the tree walk supports (nested rings,
/// ring calls, higher-order list blocks, unbound variables) — the
/// caller keeps tree-walking those.
pub fn lower(ring: &Ring) -> Option<Lowered> {
    let expr = match &ring.body {
        RingBody::Reporter(e) | RingBody::Predicate(e) => e,
        RingBody::Command(_) => return None,
    };
    if let Some(p) = lower_numeric(ring, expr) {
        return Some(Lowered::Numeric(p));
    }
    lower_boxed(ring, expr).map(Lowered::Boxed)
}

fn arity_of(ring: &Ring) -> Option<usize> {
    if ring.params.is_empty() {
        None
    } else {
        Some(ring.params.len())
    }
}

/// Resolve a variable name the way the tree walk does: innermost
/// parameter first (last duplicate wins), then the captured environment
/// (innermost = last). `None` means unbound — not compilable, so the
/// runtime `UnboundVariable` error surfaces identically at call time.
fn resolve_var<'a>(ring: &'a Ring, name: &str) -> Option<Resolved<'a>> {
    if let Some(pos) = ring.params.iter().rposition(|p| p == name) {
        return Some(Resolved::Param(pos));
    }
    ring.captured
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| Resolved::Captured(v))
}

enum Resolved<'a> {
    Param(usize),
    Captured(&'a Value),
}

// ---------------------------------------------------------------------
// Boxed lowering
// ---------------------------------------------------------------------

struct Builder<'a> {
    ring: &'a Ring,
    consts: Vec<Value>,
    fresh: Vec<Constant>,
    instrs: Vec<Instr>,
    next_reg: usize,
    next_slot: usize,
}

impl<'a> Builder<'a> {
    fn reg(&mut self) -> Option<Reg> {
        let r = self.next_reg;
        if r > Reg::MAX as usize {
            return None;
        }
        self.next_reg = r + 1;
        Some(r as Reg)
    }

    fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    fn emit_const(&mut self, v: Value) -> Option<Reg> {
        let dst = self.reg()?;
        let idx = self.consts.len();
        if idx > u16::MAX as usize {
            return None;
        }
        self.consts.push(v);
        self.push(Instr::Const(idx as u16, dst));
        Some(dst)
    }

    /// Compile-time evaluation for constant folding. Only scalar
    /// results fold (lists have identity and fresh-storage semantics);
    /// operator folds reuse the interpreter's own `eval_binop` /
    /// `eval_unop`, so a folded node cannot diverge from an unfolded
    /// one. Returns `None` for anything not provably constant.
    fn fold(&self, e: &Expr) -> Option<Value> {
        let scalar = |v: Value| match v {
            Value::Nothing | Value::Number(_) | Value::Text(_) | Value::Bool(_) => Some(v),
            _ => None,
        };
        match e {
            Expr::Literal(c) => match c {
                Constant::List(_) => None,
                _ => scalar(c.to_value()),
            },
            Expr::Var(name) => match resolve_var(self.ring, name)? {
                // Captured values never change for the life of a ring.
                Resolved::Captured(v) => scalar(v.clone()),
                Resolved::Param(_) => None,
            },
            Expr::Binary(op, a, b) => {
                let a = self.fold(a)?;
                let b = self.fold(b)?;
                scalar(eval_binop(*op, &a, &b))
            }
            Expr::Unary(op, a) => {
                let a = self.fold(a)?;
                scalar(eval_unop(*op, &a))
            }
            _ => None,
        }
    }

    /// Emit instructions computing `e`, returning its result register.
    /// Emission follows the tree walk's evaluation order exactly — in
    /// particular the empty-slot cursor advances in evaluation order —
    /// so coercions and error precedence are preserved. `None` aborts
    /// the whole lowering (unsupported construct).
    fn emit(&mut self, e: &Expr) -> Option<Reg> {
        if let Some(v) = self.fold(e) {
            return self.emit_const(v);
        }
        match e {
            Expr::Literal(c) => {
                // Non-scalar literal (fold handles scalars): list
                // constants materialize fresh storage per call.
                let dst = self.reg()?;
                let idx = self.fresh.len();
                if idx > u16::MAX as usize {
                    return None;
                }
                self.fresh.push(c.clone());
                self.push(Instr::Fresh(idx as u16, dst));
                Some(dst)
            }
            Expr::Var(name) => match resolve_var(self.ring, name)? {
                Resolved::Param(pos) => {
                    let dst = self.reg()?;
                    self.push(Instr::Arg(pos as u16, dst));
                    Some(dst)
                }
                // Non-scalar captured (list/ring): cloning the pooled
                // value per call shares storage exactly like the tree
                // walk's `lookup` clone.
                Resolved::Captured(v) => self.emit_const(v.clone()),
            },
            Expr::EmptySlot => {
                let i = self.next_slot;
                if i > u16::MAX as usize {
                    return None;
                }
                self.next_slot = i + 1;
                let dst = self.reg()?;
                self.push(Instr::Slot(i as u16, dst));
                Some(dst)
            }
            Expr::Binary(op, a, b) => {
                let a = self.emit(a)?;
                let b = self.emit(b)?;
                let dst = self.reg()?;
                self.push(Instr::Bin(*op, a, b, dst));
                Some(dst)
            }
            Expr::Unary(op, a) => {
                let a = self.emit(a)?;
                let dst = self.reg()?;
                self.push(Instr::Un(*op, a, dst));
                Some(dst)
            }
            Expr::Item(index, list) => {
                let i = self.emit(index)?;
                let l = self.emit(list)?;
                let dst = self.reg()?;
                self.push(Instr::Item(i, l, dst));
                Some(dst)
            }
            Expr::LengthOf(list) => {
                let l = self.emit(list)?;
                let dst = self.reg()?;
                self.push(Instr::Len(l, dst));
                Some(dst)
            }
            Expr::Contains(list, value) => {
                let l = self.emit(list)?;
                // The tree walk type-checks the list *before* evaluating
                // the value operand; keep that error order.
                self.push(Instr::CheckList(l));
                let v = self.emit(value)?;
                let dst = self.reg()?;
                self.push(Instr::Contains(l, v, dst));
                Some(dst)
            }
            Expr::Join(parts) => {
                let srcs: Option<Vec<Reg>> = parts.iter().map(|p| self.emit(p)).collect();
                let dst = self.reg()?;
                self.push(Instr::Join(srcs?.into_boxed_slice(), dst));
                Some(dst)
            }
            Expr::Split(text, delim) => {
                let t = self.emit(text)?;
                let d = self.emit(delim)?;
                let dst = self.reg()?;
                self.push(Instr::Split(t, d, dst));
                Some(dst)
            }
            Expr::LetterOf(index, text) => {
                let i = self.emit(index)?;
                let t = self.emit(text)?;
                let dst = self.reg()?;
                self.push(Instr::Letter(i, t, dst));
                Some(dst)
            }
            Expr::TextLength(text) => {
                let t = self.emit(text)?;
                let dst = self.reg()?;
                self.push(Instr::TextLen(t, dst));
                Some(dst)
            }
            Expr::NumbersFromTo(a, b) => {
                let a = self.emit(a)?;
                let b = self.emit(b)?;
                let dst = self.reg()?;
                self.push(Instr::Range(a, b, dst));
                Some(dst)
            }
            Expr::MakeList(items) => {
                let srcs: Option<Vec<Reg>> = items.iter().map(|i| self.emit(i)).collect();
                let dst = self.reg()?;
                self.push(Instr::MakeList(srcs?.into_boxed_slice(), dst));
                Some(dst)
            }
            // Higher-order / non-strict / impure constructs: tree walk.
            Expr::Ring(_)
            | Expr::CallRing(_, _)
            | Expr::Map { .. }
            | Expr::Keep { .. }
            | Expr::Combine { .. }
            | Expr::ParallelMap { .. }
            | Expr::MapReduce { .. }
            | Expr::PickRandom(_, _)
            | Expr::Attribute(_)
            | Expr::CallCustom(_, _) => None,
        }
    }
}

fn lower_boxed(ring: &Ring, expr: &Expr) -> Option<Program> {
    let mut b = Builder {
        ring,
        consts: Vec::new(),
        fresh: Vec::new(),
        instrs: Vec::new(),
        next_reg: 0,
        next_slot: 0,
    };
    let out = b.emit(expr)?;
    Some(Program {
        arity: arity_of(ring),
        consts: b.consts,
        fresh: b.fresh,
        instrs: b.instrs,
        regs: b.next_reg,
        out,
    })
}

// ---------------------------------------------------------------------
// Numeric lowering
// ---------------------------------------------------------------------

/// A numeric operand during lowering: either a compile-time constant
/// (folded) or a register holding a runtime value.
#[derive(Clone, Copy)]
enum NumVal {
    Const(f64),
    Reg(Reg),
}

struct NumBuilder<'a> {
    ring: &'a Ring,
    instrs: Vec<NumInstr>,
    next_reg: usize,
    next_slot: usize,
}

impl<'a> NumBuilder<'a> {
    fn reg(&mut self) -> Option<Reg> {
        let r = self.next_reg;
        if r > Reg::MAX as usize {
            return None;
        }
        self.next_reg = r + 1;
        Some(r as Reg)
    }

    fn materialize(&mut self, v: NumVal) -> Option<Reg> {
        match v {
            NumVal::Reg(r) => Some(r),
            NumVal::Const(c) => {
                let dst = self.reg()?;
                self.instrs.push(NumInstr::Const(c, dst));
                Some(dst)
            }
        }
    }

    /// Lower `e` in a **coercing operand position**: the consumer will
    /// apply `to_number`, so any value-producing node is admissible as
    /// long as its coercion is compile-time-known or register-loadable.
    /// Returns `None` when the node could observe non-numeric semantics.
    fn emit(&mut self, e: &Expr) -> Option<NumVal> {
        match e {
            // `to_number` of any literal is a compile-time constant.
            Expr::Literal(c) => Some(NumVal::Const(c.to_value().to_number())),
            Expr::Var(name) => match resolve_var(self.ring, name)? {
                Resolved::Param(pos) => {
                    if pos > u16::MAX as usize {
                        return None;
                    }
                    let dst = self.reg()?;
                    self.instrs.push(NumInstr::Arg(pos as u16, dst));
                    Some(NumVal::Reg(dst))
                }
                // Captured bindings are immutable; even a captured list
                // coerces to a constant (to_number of a list is 0).
                Resolved::Captured(v) => Some(NumVal::Const(v.to_number())),
            },
            Expr::EmptySlot => {
                let i = self.next_slot;
                if i > u16::MAX as usize {
                    return None;
                }
                self.next_slot = i + 1;
                let dst = self.reg()?;
                self.instrs.push(NumInstr::Slot(i as u16, dst));
                Some(NumVal::Reg(dst))
            }
            Expr::Binary(op, a, b) => {
                num_binop(*op, 0.0, 0.0)?;
                let a = self.emit(a)?;
                let b = self.emit(b)?;
                if let (NumVal::Const(x), NumVal::Const(y)) = (a, b) {
                    // Constant folding with the runtime's own arithmetic.
                    return Some(NumVal::Const(num_binop(*op, x, y)?));
                }
                let a = self.materialize(a)?;
                let b = self.materialize(b)?;
                let dst = self.reg()?;
                self.instrs.push(NumInstr::Bin(*op, a, b, dst));
                Some(NumVal::Reg(dst))
            }
            Expr::Unary(op, a) => {
                num_unop(*op, 0.0)?;
                let a = self.emit(a)?;
                if let NumVal::Const(x) = a {
                    return Some(NumVal::Const(num_unop(*op, x)?));
                }
                let a = self.materialize(a)?;
                let dst = self.reg()?;
                self.instrs.push(NumInstr::Un(*op, a, dst));
                Some(NumVal::Reg(dst))
            }
            // Everything else (comparisons produce Bools, text/list
            // blocks produce non-numbers, higher-order blocks are not
            // lowered at all): leave to the boxed path or tree walk.
            _ => None,
        }
    }
}

/// The numeric type pass + lowering. Succeeds only when the **root**
/// always produces a `Value::Number` (an arithmetic operator, a numeric
/// unary, or a number literal) and every reachable argument use sits in
/// a coercing operand position.
fn lower_numeric(ring: &Ring, expr: &Expr) -> Option<NumProgram> {
    let root_is_numeric = match expr {
        Expr::Binary(op, _, _) => num_binop(*op, 0.0, 0.0).is_some(),
        Expr::Unary(op, _) => num_unop(*op, 0.0).is_some(),
        Expr::Literal(Constant::Number(_)) => true,
        _ => false,
    };
    if !root_is_numeric {
        return None;
    }
    let mut b = NumBuilder {
        ring,
        instrs: Vec::new(),
        next_reg: 0,
        next_slot: 0,
    };
    let out = b.emit(expr)?;
    let out = b.materialize(out)?;
    // Wider than the fixed register file → decline; the ring still
    // compiles, as boxed bytecode (the fallback ladder's next tier), so
    // the scalar and batch executors never need a heap register branch.
    if b.next_reg > NUM_STACK_REGS {
        return None;
    }
    Some(NumProgram {
        arity: arity_of(ring),
        instrs: b.instrs,
        regs: b.next_reg,
        out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn lower_ring(ring: Ring) -> Option<Lowered> {
        lower(&ring)
    }

    #[test]
    fn numeric_ring_takes_the_fast_path() {
        let lowered = lower_ring(Ring::reporter(mul(empty_slot(), num(10.0)))).unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        assert_eq!(p.call(&[Value::Number(7.0)]).unwrap(), Value::Number(70.0));
    }

    #[test]
    fn constant_subtrees_fold() {
        // (2 + 3) × x lowers to a single multiply against an immediate.
        let lowered = lower_ring(Ring::reporter_with_params(
            vec!["x".into()],
            mul(add(num(2.0), num(3.0)), var("x")),
        ))
        .unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        // Const, Arg, Bin — the add folded away.
        assert_eq!(p.len(), 3);
        assert_eq!(p.call(&[Value::Number(4.0)]).unwrap(), Value::Number(20.0));
    }

    #[test]
    fn textual_ring_takes_the_boxed_path() {
        let lowered = lower_ring(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ))
        .unwrap();
        let p = match lowered {
            Lowered::Boxed(p) => p,
            Lowered::Numeric(_) => panic!("expected boxed"),
        };
        let out = p.call(&[Value::text("fox")]).unwrap();
        assert_eq!(out, Value::list(vec!["fox".into(), 1.into()]));
    }

    #[test]
    fn nested_rings_are_not_lowered() {
        let body = Expr::Combine {
            list: Box::new(var("xs")),
            ring: Box::new(Expr::Ring(crate::expr::RingExpr::reporter(add(
                empty_slot(),
                empty_slot(),
            )))),
        };
        assert!(lower_ring(Ring::reporter_with_params(vec!["xs".into()], body)).is_none());
    }

    #[test]
    fn unbound_variables_are_not_lowered() {
        // The tree walk reports UnboundVariable at call time; lowering
        // must decline so that behavior is preserved.
        assert!(lower_ring(Ring::reporter(add(var("nope"), num(1.0)))).is_none());
    }

    #[test]
    fn arity_is_enforced() {
        let lowered = lower_ring(Ring::reporter_with_params(
            vec!["a".into(), "b".into()],
            add(var("a"), var("b")),
        ))
        .unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        assert_eq!(
            p.call(&[Value::Number(1.0)]),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn single_argument_fills_every_slot() {
        let lowered = lower_ring(Ring::reporter(add(empty_slot(), empty_slot()))).unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        assert_eq!(p.call(&[Value::Number(4.0)]).unwrap(), Value::Number(8.0));
        assert_eq!(
            p.call(&[Value::Number(10.0), Value::Number(3.0)]).unwrap(),
            Value::Number(13.0)
        );
        assert_eq!(p.call(&[]).unwrap(), Value::Number(0.0));
    }

    #[test]
    fn list_literals_materialize_fresh_storage() {
        let lowered = lower_ring(Ring::reporter(Expr::Literal(Constant::List(
            vec![1.into()],
        ))))
        .unwrap();
        let p = match lowered {
            Lowered::Boxed(p) => p,
            Lowered::Numeric(_) => panic!("expected boxed"),
        };
        let a = p.call(&[]).unwrap();
        let b = p.call(&[]).unwrap();
        a.as_list().unwrap().add(2.into());
        assert_eq!(b.as_list().unwrap().len(), 1);
    }

    #[test]
    fn captured_lists_share_storage_across_calls() {
        // The tree walk clones the captured binding per call — which
        // shares list storage. The bytecode must do the same.
        let shared = Value::list(vec![1.into()]);
        let ring = Ring::reporter(var("xs")).with_captured(vec![("xs".into(), shared.clone())]);
        let lowered = lower_ring(ring).unwrap();
        let p = match lowered {
            Lowered::Boxed(p) => p,
            Lowered::Numeric(_) => panic!("expected boxed"),
        };
        let out = p.call(&[]).unwrap();
        assert!(out
            .as_list()
            .unwrap()
            .same_identity(shared.as_list().unwrap()));
    }

    #[test]
    fn comparison_roots_are_boxed_not_numeric() {
        let lowered = lower_ring(Ring::reporter(Expr::Binary(
            BinOp::Lt,
            Box::new(empty_slot()),
            Box::new(num(5.0)),
        )))
        .unwrap();
        let p = match lowered {
            Lowered::Boxed(p) => p,
            Lowered::Numeric(_) => panic!("comparisons must not take the numeric path"),
        };
        assert_eq!(p.call(&[Value::Number(3.0)]).unwrap(), Value::Bool(true));
        // snap_cmp semantics, not to_number: text compares textually.
        assert_eq!(p.call(&[Value::text("zebra")]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn eval_batch_matches_scalar_calls_bitwise() {
        // The a5 bench ring: ((x × 2) + (x mod 7)) ÷ 3, slot-style.
        let lowered = lower_ring(Ring::reporter(div(
            add(mul(empty_slot(), num(2.0)), modulo(empty_slot(), num(7.0))),
            num(3.0),
        )))
        .unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        assert!(p.batchable());
        // Cross a block boundary (> BATCH_LANES elements) and include
        // the awkward values.
        let mut inputs: Vec<f64> = (0..(BATCH_LANES * 2 + 17))
            .map(|i| i as f64 * 0.37)
            .collect();
        inputs.extend([
            f64::NAN,
            -0.0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
        ]);
        let mut batch = Vec::new();
        p.eval_batch(&inputs, &mut batch);
        assert_eq!(batch.len(), inputs.len());
        for (&x, &got) in inputs.iter().zip(&batch) {
            let scalar = match p.call(&[Value::Number(x)]).unwrap() {
                Value::Number(n) => n,
                other => panic!("non-number: {other:?}"),
            };
            // NaN payloads are exempt: operand order at a commutable op
            // decides which payload propagates, and the optimizer may
            // pick differently for the scalar and batch loops.
            assert!(
                got.to_bits() == scalar.to_bits() || (got.is_nan() && scalar.is_nan()),
                "input {x}: batch {got:?} vs scalar {scalar:?}"
            );
        }
    }

    #[test]
    fn eval_batch_handles_empty_input() {
        let lowered = lower_ring(Ring::reporter(mul(empty_slot(), num(10.0)))).unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        let mut out = Vec::new();
        p.eval_batch(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_parameter_programs_are_not_batchable() {
        let lowered = lower_ring(Ring::reporter_with_params(
            vec!["a".into(), "b".into()],
            add(var("a"), var("b")),
        ))
        .unwrap();
        let p = match lowered {
            Lowered::Numeric(p) => p,
            Lowered::Boxed(_) => panic!("expected numeric"),
        };
        assert!(!p.batchable());
    }

    #[test]
    fn wide_numeric_rings_decline_to_boxed_bytecode() {
        // A 40-term chain of x + x + … needs ~40 live registers — over
        // the NUM_STACK_REGS file. Numeric lowering must decline (not
        // fail), leaving boxed bytecode with identical results.
        let mut expr = var("x");
        for _ in 0..40 {
            expr = add(expr, var("x"));
        }
        let lowered = lower_ring(Ring::reporter_with_params(vec!["x".into()], expr)).unwrap();
        let p = match lowered {
            Lowered::Boxed(p) => p,
            Lowered::Numeric(_) => panic!("40-term chain cannot fit the numeric register file"),
        };
        assert_eq!(p.call(&[Value::Number(1.0)]).unwrap(), Value::Number(41.0));
    }

    #[test]
    fn num_cores_match_eval_ops() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Pow,
        ] {
            for (x, y) in [
                (7.5, 3.25),
                (-7.0, 3.0),
                (7.0, -3.0),
                (0.0, 0.0),
                (1e300, 2.0),
            ] {
                // black_box keeps the optimizer from constant-folding
                // either side (LLVM's folded 0/0 NaN sign differs from
                // the hardware divide's) — the point is to compare the
                // *runtime* cores.
                let (x, y) = (std::hint::black_box(x), std::hint::black_box(y));
                let folded = num_binop(op, x, y).unwrap();
                let evaled = match eval_binop(op, &Value::Number(x), &Value::Number(y)) {
                    Value::Number(n) => n,
                    other => panic!("non-number from {op:?}: {other:?}"),
                };
                // Bit-exact, so NaN results also count as equal.
                assert_eq!(folded.to_bits(), evaled.to_bits(), "{op:?} {x} {y}");
            }
        }
    }
}
