//! Error types shared by the evaluators.

use std::fmt;

/// An error raised while evaluating blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable reporter found no binding in any visible scope.
    UnboundVariable(String),
    /// A block needed a value of one type but got another.
    TypeMismatch {
        /// What the block expected (e.g. `"list"`).
        expected: &'static str,
        /// A rendering of what it got.
        got: String,
    },
    /// A 1-based index fell outside the list/text.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The length of the collection.
        len: usize,
    },
    /// A block that requires the full VM was evaluated in a pure context
    /// (e.g. inside a worker function). Names the offending block.
    NotPure(&'static str),
    /// A ring was called with the wrong number of arguments.
    ArityMismatch {
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A command ring was used where a reporter was required.
    NotAReporter,
    /// A custom block was called but no definition is visible.
    UnknownCustomBlock(String),
    /// Anything else, with a message.
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => {
                write!(
                    f,
                    "a variable of name '{name}' does not exist in this context"
                )
            }
            EvalError::TypeMismatch { expected, got } => {
                write!(f, "expected a {expected}, got {got}")
            }
            EvalError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} is out of range for length {len}")
            }
            EvalError::NotPure(block) => {
                write!(f, "the '{block}' block cannot run inside a worker function")
            }
            EvalError::ArityMismatch { expected, got } => {
                write!(f, "ring expects {expected} inputs but got {got}")
            }
            EvalError::NotAReporter => write!(f, "a reporter ring is required here"),
            EvalError::UnknownCustomBlock(name) => {
                write!(f, "no definition for custom block '{name}'")
            }
            EvalError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for EvalError {}
