//! Runtime values of the psnap language.
//!
//! Snap! distinguishes itself from Scratch by making **lists** and
//! **procedures (rings)** first-class: they can be stored in variables,
//! passed to blocks and returned from reporters (paper §2). [`Value`]
//! captures that: a value is a number, a piece of text, a boolean, a
//! *shared, mutable* list, or a ring.
//!
//! Lists have reference semantics exactly as in Snap!: two variables can
//! hold the *same* list, and a mutation through one is visible through the
//! other. Crossing a worker boundary instead performs a *structured clone*
//! ([`Value::deep_copy`]), mirroring how HTML5 Web Workers copy message
//! payloads (paper §4.1).

use std::fmt;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::ring::Ring;

/// Shared, mutable, 1-indexed list — Snap!'s first-class list type.
///
/// Cloning a `List` clones the *handle*, not the storage; use
/// [`List::deep_copy`] for a structural copy.
#[derive(Clone, Default)]
pub struct List(Arc<RwLock<Vec<Value>>>);

impl List {
    /// Create an empty list.
    pub fn new() -> Self {
        List(Arc::new(RwLock::new(Vec::new())))
    }

    /// Read-lock the storage. A poisoned lock (a panic while some other
    /// thread held the guard) is recovered: list operations never leave
    /// the `Vec` in a torn state, so the data is still coherent.
    fn read(&self) -> RwLockReadGuard<'_, Vec<Value>> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-lock the storage, recovering from poison (see [`List::read`]).
    fn write(&self) -> RwLockWriteGuard<'_, Vec<Value>> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Create a list from existing items.
    pub fn from_vec(items: Vec<Value>) -> Self {
        List(Arc::new(RwLock::new(items)))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// `true` when the list has no items.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// `item <index> of <list>` — **1-based**, like every Snap! list block.
    /// Returns `None` when the index is out of range.
    pub fn item(&self, index: usize) -> Option<Value> {
        if index == 0 {
            return None;
        }
        self.read().get(index - 1).cloned()
    }

    /// `replace item <index> of <list> with <value>` (1-based).
    /// Returns `false` when the index is out of range.
    pub fn set_item(&self, index: usize, value: Value) -> bool {
        if index == 0 {
            return false;
        }
        let mut guard = self.write();
        match guard.get_mut(index - 1) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// `add <value> to <list>` — append.
    pub fn add(&self, value: Value) {
        self.write().push(value);
    }

    /// `insert <value> at <index> of <list>` (1-based). Index `len+1`
    /// appends; anything larger is clamped to append, matching Snap!'s
    /// forgiving semantics.
    pub fn insert(&self, index: usize, value: Value) {
        let mut guard = self.write();
        let idx = index.saturating_sub(1).min(guard.len());
        guard.insert(idx, value);
    }

    /// `delete <index> of <list>` (1-based). Returns the removed item.
    pub fn delete(&self, index: usize) -> Option<Value> {
        if index == 0 {
            return None;
        }
        let mut guard = self.write();
        if index <= guard.len() {
            Some(guard.remove(index - 1))
        } else {
            None
        }
    }

    /// Remove every item.
    pub fn clear(&self) {
        self.write().clear();
    }

    /// `<list> contains <value>` using Snap!'s loose equality.
    pub fn contains(&self, value: &Value) -> bool {
        self.read().iter().any(|v| v.loose_eq(value))
    }

    /// Snapshot of the current items (shallow copies: nested lists still
    /// share storage).
    pub fn to_vec(&self) -> Vec<Value> {
        self.read().clone()
    }

    /// Replace the entire contents.
    pub fn replace_all(&self, items: Vec<Value>) {
        *self.write() = items;
    }

    /// Structured clone: recursively copies nested lists so the result
    /// shares no storage with `self`.
    pub fn deep_copy(&self) -> List {
        List::from_vec(self.read().iter().map(Value::deep_copy).collect())
    }

    /// `true` when both handles point at the same storage.
    pub fn same_identity(&self, other: &List) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Run `f` over a read-locked view of the items without copying.
    pub fn with_items<R>(&self, f: impl FnOnce(&[Value]) -> R) -> R {
        f(&self.read())
    }

    /// Sort the list in place with Snap!'s default ordering
    /// (numeric when both sides are numeric, else textual).
    pub fn sort(&self) {
        self.write().sort_by(Value::snap_cmp);
    }
}

impl fmt::Debug for List {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.read().iter()).finish()
    }
}

impl PartialEq for List {
    fn eq(&self, other: &Self) -> bool {
        if self.same_identity(other) {
            return true;
        }
        let a = self.read();
        let b = other.read();
        *a == *b
    }
}

impl FromIterator<Value> for List {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        List::from_vec(iter.into_iter().collect())
    }
}

/// A first-class psnap value.
#[derive(Clone, Default)]
pub enum Value {
    /// The value of an empty slot / a reporter that reported nothing.
    #[default]
    Nothing,
    /// IEEE-754 double, like every Snap! number.
    Number(f64),
    /// A piece of text.
    Text(String),
    /// A boolean.
    Bool(bool),
    /// A first-class shared list.
    List(List),
    /// A first-class procedure (gray ring).
    Ring(Arc<Ring>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for a list value from items.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(List::from_vec(items))
    }

    /// Convenience constructor for a list of numbers.
    pub fn number_list<I: IntoIterator<Item = f64>>(items: I) -> Value {
        Value::List(items.into_iter().map(Value::Number).collect())
    }

    /// `true` when this is [`Value::Nothing`].
    pub fn is_nothing(&self) -> bool {
        matches!(self, Value::Nothing)
    }

    /// Coerce to a number the way Snap! arithmetic blocks do:
    /// numbers pass through, numeric text parses, booleans map to 1/0,
    /// everything else (including unparsable text) is 0.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Text(s) => s.trim().parse::<f64>().unwrap_or(0.0),
            Value::Bool(b) => f64::from(*b),
            _ => 0.0,
        }
    }

    /// Coerce to a boolean: booleans pass through, `"true"`/`"false"`
    /// text parses (case-insensitively), non-zero numbers are true,
    /// everything else is false.
    pub fn to_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0,
            Value::Text(s) => s.eq_ignore_ascii_case("true"),
            _ => false,
        }
    }

    /// Borrow the list payload, if this value is a list.
    pub fn as_list(&self) -> Option<&List> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow the ring payload, if this value is a ring.
    pub fn as_ring(&self) -> Option<&Arc<Ring>> {
        match self {
            Value::Ring(r) => Some(r),
            _ => None,
        }
    }

    /// Render a number the way Snap! displays it: integral values print
    /// without a decimal point.
    pub fn format_number(n: f64) -> String {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            format!("{}", n as i64)
        } else {
            format!("{n}")
        }
    }

    /// Structured clone (recursive copy of nested lists). This is what a
    /// value undergoes when posted to a worker, mirroring the structured
    /// clone of `postMessage` in HTML5 Web Workers.
    pub fn deep_copy(&self) -> Value {
        match self {
            Value::List(l) => Value::List(l.deep_copy()),
            other => other.clone(),
        }
    }

    /// Snap!'s `=` block: loose equality. Numbers and numeric text compare
    /// numerically; text compares case-insensitively; lists compare
    /// element-wise loosely.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Nothing, Nothing) => true,
            (Number(a), Number(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Text(a), Text(b)) => {
                if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    x == y
                } else {
                    a.eq_ignore_ascii_case(b)
                }
            }
            (Number(a), Text(t)) | (Text(t), Number(a)) => {
                t.trim().parse::<f64>().map(|x| x == *a).unwrap_or(false)
            }
            (Bool(b), v) | (v, Bool(b)) => *b == v.to_bool(),
            (List(a), List(b)) => {
                a.same_identity(b) || {
                    let av = a.to_vec();
                    let bv = b.to_vec();
                    av.len() == bv.len() && av.iter().zip(&bv).all(|(x, y)| x.loose_eq(y))
                }
            }
            (Ring(a), Ring(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Ordering used by `<`/`>` blocks and list sorting: numeric when both
    /// sides coerce to numbers, otherwise case-insensitive textual.
    pub fn snap_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let numeric = |v: &Value| -> Option<f64> {
            match v {
                Value::Number(n) => Some(*n),
                Value::Text(s) => s.trim().parse::<f64>().ok(),
                Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
                _ => None,
            }
        };
        match (numeric(self), numeric(other)) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            _ => self
                .to_display_string()
                .to_ascii_lowercase()
                .cmp(&other.to_display_string().to_ascii_lowercase()),
        }
    }

    /// The string a `say` bubble or a watcher would show.
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Nothing => String::new(),
            Value::Number(n) => Value::format_number(*n),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::List(l) => {
                let items: Vec<String> = l.to_vec().iter().map(Value::to_display_string).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Ring(r) => format!("<ring {}>", r.describe()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nothing => write!(f, "Nothing"),
            Value::Number(n) => write!(f, "Number({n})"),
            Value::Text(s) => write!(f, "Text({s:?})"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::List(l) => write!(f, "List({l:?})"),
            Value::Ring(r) => write!(f, "Ring({})", r.describe()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

impl PartialEq for Value {
    /// Strict structural equality (used by tests); the `=` block uses
    /// [`Value::loose_eq`] instead.
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Nothing, Nothing) => true,
            (Number(a), Number(b)) => a == b,
            (Text(a), Text(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (List(a), List(b)) => a == b,
            (Ring(a), Ring(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::list(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_one_indexed() {
        let l = List::from_vec(vec![1.into(), 2.into(), 3.into()]);
        assert_eq!(l.item(1), Some(Value::Number(1.0)));
        assert_eq!(l.item(3), Some(Value::Number(3.0)));
        assert_eq!(l.item(0), None);
        assert_eq!(l.item(4), None);
    }

    #[test]
    fn list_has_reference_semantics() {
        let a = List::from_vec(vec![1.into()]);
        let b = a.clone();
        b.add(2.into());
        assert_eq!(a.len(), 2);
        assert!(a.same_identity(&b));
    }

    #[test]
    fn deep_copy_shares_nothing() {
        let inner = List::from_vec(vec![1.into()]);
        let outer = List::from_vec(vec![Value::List(inner.clone())]);
        let copy = outer.deep_copy();
        inner.add(2.into());
        let copied_inner = copy.item(1).unwrap();
        assert_eq!(copied_inner.as_list().unwrap().len(), 1);
    }

    #[test]
    fn insert_and_delete_are_one_based() {
        let l = List::from_vec(vec![1.into(), 3.into()]);
        l.insert(2, 2.into());
        assert_eq!(l.to_vec(), vec![1.into(), 2.into(), 3.into()]);
        assert_eq!(l.delete(1), Some(Value::Number(1.0)));
        assert_eq!(l.to_vec(), vec![2.into(), 3.into()]);
        assert_eq!(l.delete(99), None);
    }

    #[test]
    fn insert_past_end_appends() {
        let l = List::from_vec(vec![1.into()]);
        l.insert(100, 2.into());
        assert_eq!(l.to_vec(), vec![1.into(), 2.into()]);
    }

    #[test]
    fn loose_equality_coerces() {
        assert!(Value::text("5").loose_eq(&Value::Number(5.0)));
        assert!(Value::text("Hello").loose_eq(&Value::text("hello")));
        assert!(!Value::text("hello").loose_eq(&Value::Number(0.0)));
        assert!(Value::Bool(true).loose_eq(&Value::Number(1.0)));
    }

    #[test]
    fn loose_equality_on_lists_is_elementwise() {
        let a = Value::list(vec!["5".into(), "x".into()]);
        let b = Value::list(vec![5.into(), "X".into()]);
        assert!(a.loose_eq(&b));
        let c = Value::list(vec![5.into()]);
        assert!(!a.loose_eq(&c));
    }

    #[test]
    fn number_formatting_matches_snap() {
        assert_eq!(Value::format_number(30.0), "30");
        assert_eq!(Value::format_number(1.5), "1.5");
        assert_eq!(Value::Number(70.0).to_display_string(), "70");
    }

    #[test]
    fn to_number_coercions() {
        assert_eq!(Value::text(" 42 ").to_number(), 42.0);
        assert_eq!(Value::text("nope").to_number(), 0.0);
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Nothing.to_number(), 0.0);
    }

    #[test]
    fn snap_cmp_sorts_numbers_then_text() {
        let mut v = [
            Value::text("banana"),
            Value::Number(10.0),
            Value::Number(2.0),
            Value::text("Apple"),
        ];
        v.sort_by(Value::snap_cmp);
        assert_eq!(v[0], Value::Number(2.0));
        assert_eq!(v[1], Value::Number(10.0));
        assert_eq!(v[2], Value::text("Apple"));
        assert_eq!(v[3], Value::text("banana"));
    }

    #[test]
    fn contains_uses_loose_equality() {
        let l = List::from_vec(vec!["Apple".into()]);
        assert!(l.contains(&Value::text("apple")));
        assert!(!l.contains(&Value::text("pear")));
    }

    #[test]
    fn sort_is_numeric_for_numbers() {
        let l = List::from_vec(vec![10.into(), 2.into(), 33.into()]);
        l.sort();
        assert_eq!(l.to_vec(), vec![2.into(), 10.into(), 33.into()]);
    }
}
