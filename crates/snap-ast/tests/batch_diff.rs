//! Differential tests for the columnar batch tier: `eval_batch` against
//! the scalar fast path against the tree-walk oracle, **bit for bit** —
//! except NaN payloads, which compare as "both NaN". All tiers run the
//! same `num_binop`/`num_unop` cores, but when two NaNs with different
//! payloads meet at a commutable op, which payload propagates is decided
//! by instruction operand order — something LLVM is free to pick
//! differently for the scalar call and the vectorized batch loop (IEEE
//! 754 only requires *a* quiet NaN). Signed zeros, infinities and
//! subnormals stay exact.
//!
//! Random numeric rings (arithmetic-rooted, over empty slots or a named
//! parameter) are evaluated three ways over random `f64` inputs covering
//! NaN (payloads included), ±0.0, ±inf, and subnormals. Deep expressions
//! occasionally exceed the numeric register file, in which case lowering
//! declines to boxed bytecode: `eval_batch` must then report
//! non-batchable rather than mis-evaluate, and the scalar paths must
//! still agree — the whole fallback ladder is exercised from one
//! generator.

use proptest::prelude::*;

use snap_ast::{CompiledStrategy, Constant, Expr, PureFn, Ring, UnOp, Value};
use std::sync::Arc;

/// Bit-exact number equality, modulo NaN payloads (any NaN == any NaN;
/// -0.0 ≠ 0.0). See the module doc for why payloads are exempt.
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => {
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
        }
        _ => a == b,
    }
}

/// Evaluate `ring` over `inputs` on every tier and assert agreement.
fn assert_batch_matches(ring: Arc<Ring>, inputs: &[f64]) {
    let f = PureFn::compile(ring).expect("generated ring must be pure");
    let mut batch = Vec::new();
    let batched = f.eval_batch(inputs, &mut batch);
    if batched {
        assert_eq!(f.strategy(), CompiledStrategy::Numeric);
        assert_eq!(batch.len(), inputs.len());
    } else {
        assert!(
            batch.is_empty(),
            "a declined eval_batch must append nothing"
        );
    }
    for (i, &x) in inputs.iter().enumerate() {
        let arg = Value::Number(x);
        let scalar = f.call1(arg.clone()).expect("scalar call");
        let oracle = f
            .call_treewalk(std::slice::from_ref(&arg))
            .expect("tree walk");
        assert!(
            bits_eq(&scalar, &oracle),
            "strategy {:?}: scalar {scalar:?} vs oracle {oracle:?} on input {x:?}",
            f.strategy()
        );
        if batched {
            let got = Value::Number(batch[i]);
            assert!(
                bits_eq(&got, &scalar),
                "batch element {i} diverged: batch {got:?} vs scalar {scalar:?} on input {x:?}"
            );
        }
    }
}

/// Batch inputs: ordinary magnitudes plus every special the IEEE grid
/// offers — NaN with a non-default payload, signed zeros, infinities,
/// and subnormals.
fn input_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e6f64..1e6,
        Just(f64::NAN),
        Just(f64::from_bits(0x7ff8_0000_dead_beef)), // NaN payload
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(5e-324),                      // smallest positive subnormal
        Just(-2.225_073_858_507_201e-308), // near the subnormal boundary
    ]
}

fn numeric_unop_strategy() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Abs),
        Just(UnOp::Sqrt),
        Just(UnOp::Round),
        Just(UnOp::Floor),
        Just(UnOp::Ceil),
        Just(UnOp::Sin),
        Just(UnOp::Cos),
        Just(UnOp::Ln),
        Just(UnOp::Exp),
    ]
}

fn arith_binop_strategy() -> impl Strategy<Value = snap_ast::BinOp> {
    use snap_ast::BinOp;
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
    ]
}

/// Numeric expression bodies. `use_var` picks the element leaf: the
/// named parameter `x`, or an empty slot. The root combinator below
/// guarantees an arithmetic root, so every generated ring passes the
/// numeric type pass (unless it outgrows the register file — also a
/// case worth hitting).
fn numeric_expr_strategy(use_var: bool) -> impl Strategy<Value = Expr> {
    let element: Expr = if use_var {
        Expr::Var("x".into())
    } else {
        Expr::EmptySlot
    };
    let leaf = prop_oneof![
        (-100f64..100.0).prop_map(|n| Expr::Literal(Constant::Number(n))),
        Just(element),
    ];
    let tree = leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            (arith_binop_strategy(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b))),
            (numeric_unop_strategy(), inner).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
        ]
    });
    // Force an arithmetic root so the ring is always numeric-rooted.
    (arith_binop_strategy(), tree.clone(), tree)
        .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Slot-style rings: each batch element fills every empty slot.
    #[test]
    fn slot_rings_batch_matches_scalar_and_oracle(
        body in numeric_expr_strategy(false),
        inputs in prop::collection::vec(input_f64(), 0..150),
    ) {
        assert_batch_matches(Arc::new(Ring::reporter(body)), &inputs);
    }

    /// One-parameter rings: each batch element binds the parameter (and
    /// any empty slots, per the single-argument rule).
    #[test]
    fn param_rings_batch_matches_scalar_and_oracle(
        body in numeric_expr_strategy(true),
        inputs in prop::collection::vec(input_f64(), 0..150),
    ) {
        let ring = Ring::reporter_with_params(vec!["x".into()], body);
        assert_batch_matches(Arc::new(ring), &inputs);
    }
}

/// The register-spill ladder, deterministically: a provably-numeric ring
/// too wide for the fixed register file must land on boxed bytecode (not
/// fail, not tree-walk), refuse `eval_batch`, and still agree with the
/// oracle.
#[test]
fn register_spill_falls_back_to_boxed_bytecode() {
    use snap_ast::builder::*;
    let mut expr = var("x");
    for _ in 0..40 {
        expr = add(expr, var("x"));
    }
    let ring = Arc::new(Ring::reporter_with_params(vec!["x".into()], expr));
    let bytecode_before = snap_trace::well_known::RING_BYTECODE_CALLS.get();
    let f = PureFn::compile(ring).unwrap();
    assert_eq!(
        f.strategy(),
        CompiledStrategy::Bytecode,
        "a >32-register numeric ring must decline to boxed bytecode"
    );
    assert!(!f.is_batchable());
    let mut out = Vec::new();
    assert!(!f.eval_batch(&[1.0, 2.0], &mut out));
    assert!(out.is_empty());
    let result = f.call1(Value::Number(1.5)).unwrap();
    let oracle = f.call_treewalk(&[Value::Number(1.5)]).unwrap();
    assert!(bits_eq(&result, &oracle));
    assert_eq!(result, Value::Number(41.0 * 1.5));
    // The tier counter proves which executor ran the call above.
    let bytecode_delta = snap_trace::well_known::RING_BYTECODE_CALLS.get() - bytecode_before;
    assert!(bytecode_delta >= 1, "boxed bytecode executor did not run");
}
