//! Differential tests: the ring bytecode VM against the tree-walk oracle.
//!
//! `PureFn::call` dispatches to compiled bytecode (boxed or unboxed
//! numeric); `PureFn::call_treewalk` is the reference evaluator. For any
//! pure ring and any arguments the two must agree **bit for bit** —
//! including NaN payload propagation, `-0.0`, Text/Bool numeric coercion
//! edges, and the exact `EvalError` on failure. Random rings are
//! generated over the whole lowerable grammar (arithmetic, comparisons,
//! logic, list/text blocks) plus unbound variables, so both the numeric
//! fast path, the boxed program, and the tree-walk fallback are hit.

use proptest::prelude::*;

use snap_ast::pure::compile_cached;
use snap_ast::{BinOp, CompiledStrategy, Constant, Expr, PureFn, Ring, UnOp, Value};
use std::sync::Arc;

/// Bit-exact value equality: `Value`'s `PartialEq` uses `f64 ==`, under
/// which `NaN != NaN` and `-0.0 == 0.0` — too loose *and* too strict for
/// a differential test. Numbers compare by bits, lists recursively.
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        (Value::List(x), Value::List(y)) => {
            let (xv, yv) = (x.to_vec(), y.to_vec());
            xv.len() == yv.len() && xv.iter().zip(&yv).all(|(p, q)| bits_eq(p, q))
        }
        _ => a == b,
    }
}

/// Assert both evaluation paths of `ring` agree on `args`. Panics on
/// divergence (the generator only produces pure rings, so compilation
/// itself must succeed).
fn assert_paths_agree(ring: Arc<Ring>, args: &[Value]) {
    let f = PureFn::compile(ring).expect("generated ring must be pure");
    let fast = f.call(args);
    let slow = f.call_treewalk(args);
    match (&fast, &slow) {
        (Ok(x), Ok(y)) => assert!(
            bits_eq(x, y),
            "strategy {:?} diverged: bytecode {x:?} vs treewalk {y:?}",
            f.strategy()
        ),
        (Err(x), Err(y)) => assert_eq!(
            x,
            y,
            "strategy {:?} ring {:?} args {args:?}",
            f.strategy(),
            f.ring()
        ),
        _ => panic!(
            "strategy {:?}: one path errored: bytecode {fast:?} vs treewalk {slow:?}",
            f.strategy()
        ),
    }
}

/// Random argument values, covering every coercion edge the VM has to
/// reproduce: NaN, ±0.0, numeric text, booleans, Nothing, nested lists.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nothing),
        (-1e6f64..1e6).prop_map(Value::Number),
        Just(Value::Number(f64::NAN)),
        Just(Value::Number(-0.0)),
        Just(Value::Number(f64::INFINITY)),
        "[a-zA-Z0-9 .-]{0,8}".prop_map(Value::text),
        (-100i64..100).prop_map(|n| Value::text(format!(" {n} "))), // numeric text
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::list)
    })
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Gt),
        Just(BinOp::Le),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn unop_strategy() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Not),
        Just(UnOp::Neg),
        Just(UnOp::Abs),
        Just(UnOp::Sqrt),
        Just(UnOp::Round),
        Just(UnOp::Floor),
        Just(UnOp::Ceil),
        Just(UnOp::Sin),
        Just(UnOp::Cos),
        Just(UnOp::Ln),
        Just(UnOp::Exp),
    ]
}

/// Random pure ring bodies over the lowerable grammar. `Var("x")` is the
/// named parameter when the ring declares one, otherwise an unbound
/// variable (exercising the tree-walk fallback and the runtime error).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100f64..100.0).prop_map(|n| Expr::Literal(Constant::Number(n))),
        "[a-zA-Z0-9 .-]{0,8}".prop_map(|s| Expr::Literal(Constant::Text(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Constant::Bool(b))),
        Just(Expr::Literal(Constant::Nothing)),
        Just(Expr::EmptySlot),
        Just(Expr::Var("x".into())),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        let b = |e: Expr| Box::new(e);
        prop_oneof![
            (binop_strategy(), inner.clone(), inner.clone())
                .prop_map(move |(op, x, y)| Expr::Binary(op, Box::new(x), Box::new(y))),
            (unop_strategy(), inner.clone()).prop_map(move |(op, x)| Expr::Unary(op, Box::new(x))),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::MakeList),
            (inner.clone(), inner.clone())
                .prop_map(move |(i, l)| Expr::Item(Box::new(i), Box::new(l))),
            inner.clone().prop_map(move |l| Expr::LengthOf(b(l))),
            (inner.clone(), inner.clone())
                .prop_map(move |(l, v)| Expr::Contains(Box::new(l), Box::new(v))),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::Join),
            (inner.clone(), inner.clone())
                .prop_map(move |(t, d)| Expr::Split(Box::new(t), Box::new(d))),
            (inner.clone(), inner.clone())
                .prop_map(move |(i, t)| Expr::LetterOf(Box::new(i), Box::new(t))),
            inner.clone().prop_map(move |t| Expr::TextLength(b(t))),
            // Range arguments stay literal so a random subexpression
            // cannot demand a billion-element list.
            ((-30f64..30.0), (-30f64..30.0)).prop_map(|(lo, hi)| Expr::NumbersFromTo(
                Box::new(Expr::Literal(Constant::Number(lo))),
                Box::new(Expr::Literal(Constant::Number(hi))),
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Implicit-parameter rings: arguments feed the empty slots (one
    /// argument fills every slot). `Var("x")` is unbound here, so rings
    /// containing it must fail identically on both paths.
    #[test]
    fn implicit_rings_bytecode_matches_treewalk(
        body in expr_strategy(),
        args in prop::collection::vec(value_strategy(), 0..3),
    ) {
        assert_paths_agree(Arc::new(Ring::reporter(body)), &args);
    }

    /// Named-parameter rings: `x` binds positionally; empty slots also
    /// consume the arguments. Wrong arity must error identically.
    #[test]
    fn named_rings_bytecode_matches_treewalk(
        body in expr_strategy(),
        args in prop::collection::vec(value_strategy(), 0..3),
    ) {
        let ring = Ring::reporter_with_params(vec!["x".into()], body);
        assert_paths_agree(Arc::new(ring), &args);
    }

    /// Rings with a captured environment: `x` resolves to the capture
    /// (folded to a constant at compile time) when no parameter shadows
    /// it.
    #[test]
    fn captured_rings_bytecode_matches_treewalk(
        body in expr_strategy(),
        captured in value_strategy(),
        args in prop::collection::vec(value_strategy(), 0..2),
    ) {
        let ring = Ring {
            params: Vec::new(),
            body: snap_ast::RingBody::Reporter(body),
            captured: vec![("x".into(), captured)],
        };
        assert_paths_agree(Arc::new(ring), &args);
    }

    /// The numeric fast path never misfires: a random arithmetic-only
    /// polynomial lowers to `Numeric` and agrees bit-for-bit on the
    /// nastiest scalar inputs.
    #[test]
    fn numeric_fastpath_agrees_on_coercion_edges(
        k1 in -1e3f64..1e3,
        k2 in -1e3f64..1e3,
        arg in value_strategy(),
    ) {
        use snap_ast::builder::*;
        let ring = Arc::new(Ring::reporter(add(
            mul(empty_slot(), num(k1)),
            div(empty_slot(), num(k2)),
        )));
        let f = compile_cached(&ring).unwrap();
        prop_assert_eq!(f.strategy(), CompiledStrategy::Numeric);
        let fast = f.call1(arg.clone()).unwrap();
        let slow = f.call_treewalk(std::slice::from_ref(&arg)).unwrap();
        prop_assert!(bits_eq(&fast, &slow), "{arg:?}: {fast:?} vs {slow:?}");
    }
}
