//! Property-based tests for the value model and the pure evaluator.

use proptest::prelude::*;

use snap_ast::builder::*;
use snap_ast::pure::{eval_binop, numbers_from_to};
use snap_ast::{BinOp, Constant, Expr, List, PureFn, Ring, Value};
use std::sync::Arc;

/// A strategy for (bounded) runtime values, including nested lists.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nothing),
        (-1e9f64..1e9).prop_map(Value::Number),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::text),
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(Value::list)
    })
}

/// A strategy for serializable constants.
fn constant_strategy() -> impl Strategy<Value = Constant> {
    let leaf = prop_oneof![
        Just(Constant::Nothing),
        (-1e9f64..1e9).prop_map(Constant::Number),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Constant::Text),
        any::<bool>().prop_map(Constant::Bool),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(Constant::List)
    })
}

proptest! {
    #[test]
    fn loose_eq_is_reflexive(v in value_strategy()) {
        prop_assert!(v.loose_eq(&v));
    }

    #[test]
    fn loose_eq_is_symmetric(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(a.loose_eq(&b), b.loose_eq(&a));
    }

    #[test]
    fn deep_copy_is_loose_equal_but_disjoint(v in value_strategy()) {
        let copy = v.deep_copy();
        prop_assert!(v.loose_eq(&copy));
        if let (Value::List(a), Value::List(b)) = (&v, &copy) {
            prop_assert!(!a.same_identity(b));
        }
    }

    #[test]
    fn display_string_of_number_roundtrips(n in -1_000_000i64..1_000_000) {
        let v = Value::Number(n as f64);
        prop_assert_eq!(v.to_display_string().parse::<f64>().unwrap(), n as f64);
    }

    #[test]
    fn snap_cmp_is_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.snap_cmp(&b);
        let ba = b.snap_cmp(&a);
        match ab {
            Ordering::Less => prop_assert_eq!(ba, Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(ba, Ordering::Less),
            Ordering::Equal => prop_assert_eq!(ba, Ordering::Equal),
        }
    }

    #[test]
    fn sorting_values_never_panics_and_is_idempotent(
        items in prop::collection::vec(value_strategy(), 0..20)
    ) {
        let list = List::from_vec(items);
        list.sort();
        let once = list.to_vec();
        list.sort();
        prop_assert_eq!(list.to_vec(), once);
    }

    #[test]
    fn constant_roundtrips_through_value_and_json(c in constant_strategy()) {
        prop_assert_eq!(Constant::from_value(&c.to_value()), c.clone());
        let json = serde_json::to_string(&c).unwrap();
        prop_assert_eq!(serde_json::from_str::<Constant>(&json).unwrap(), c);
    }

    #[test]
    fn list_add_then_delete_last_is_identity(
        items in prop::collection::vec(value_strategy(), 0..10),
        extra in value_strategy()
    ) {
        let list = List::from_vec(items.clone());
        list.add(extra);
        list.delete(list.len());
        prop_assert_eq!(list.to_vec(), items);
    }

    #[test]
    fn list_insert_increases_len_and_places_item(
        items in prop::collection::vec(value_strategy(), 0..10),
        idx in 1usize..12,
        v in value_strategy()
    ) {
        let list = List::from_vec(items.clone());
        let before = list.len();
        list.insert(idx, v.clone());
        prop_assert_eq!(list.len(), before + 1);
        let where_expected = idx.min(before + 1);
        prop_assert!(list.item(where_expected).unwrap().loose_eq(&v));
    }

    #[test]
    fn addition_block_is_commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = eval_binop(BinOp::Add, &Value::Number(a), &Value::Number(b));
        let y = eval_binop(BinOp::Add, &Value::Number(b), &Value::Number(a));
        prop_assert_eq!(x, y);
    }

    #[test]
    fn mod_result_has_divisor_sign(a in -1000i64..1000, b in 1i64..1000, neg in any::<bool>()) {
        let divisor = if neg { -b } else { b } as f64;
        let v = eval_binop(BinOp::Mod, &Value::Number(a as f64), &Value::Number(divisor));
        let r = v.to_number();
        if r != 0.0 {
            prop_assert_eq!(r.signum(), divisor.signum());
        }
        prop_assert!(r.abs() < divisor.abs());
    }

    #[test]
    fn numbers_from_to_has_right_length(a in -100i64..100, b in -100i64..100) {
        let v = numbers_from_to(a as f64, b as f64);
        let len = v.as_list().unwrap().len() as i64;
        prop_assert_eq!(len, (a - b).abs() + 1);
    }

    #[test]
    fn pure_fn_times_k_matches_direct_multiplication(
        xs in prop::collection::vec(-1e6f64..1e6, 0..50),
        k in -100f64..100.0
    ) {
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(k))));
        let f = PureFn::compile(ring).unwrap();
        for &x in &xs {
            let got = f.call1(Value::Number(x)).unwrap().to_number();
            prop_assert_eq!(got, x * k);
        }
    }

    #[test]
    fn named_and_implicit_params_agree(x in -1e6f64..1e6, k in -100f64..100.0) {
        // (( ) × k) and ((n) ↦ n × k) must compute the same function.
        let implicit = PureFn::compile(Arc::new(Ring::reporter(
            mul(empty_slot(), num(k)),
        ))).unwrap();
        let named = PureFn::compile(Arc::new(Ring::reporter_with_params(
            vec!["n".into()],
            mul(var("n"), num(k)),
        ))).unwrap();
        prop_assert_eq!(
            implicit.call1(Value::Number(x)).unwrap(),
            named.call1(Value::Number(x)).unwrap()
        );
    }

    #[test]
    fn expr_serde_roundtrips(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let e = parallel_map_with_workers(
            ring_reporter(add(empty_slot(), num(a))),
            number_list([b, a + b]),
            num(4.0),
        );
        let json = serde_json::to_string(&e).unwrap();
        prop_assert_eq!(serde_json::from_str::<Expr>(&json).unwrap(), e);
    }

    #[test]
    fn block_count_is_positive_and_stable(n in 0usize..5) {
        let mut e = num(1.0);
        for _ in 0..n {
            e = add(e, num(2.0));
        }
        prop_assert_eq!(e.block_count(), 2 * n + 1);
    }
}
