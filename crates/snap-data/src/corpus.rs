//! Deterministic text corpora for the word-count experiments.
//!
//! Word count (paper §3.4, Figs. 11–12) needs word lists of controllable
//! size. The generator draws from a fixed vocabulary with a Zipf-like
//! rank distribution, so common words repeat the way natural text does —
//! which is what gives MapReduce's grouping phase real work.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use snap_ast::Value;

/// The vocabulary, most frequent first.
const VOCABULARY: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
    "are", "as", "with", "his", "they", "at", "be", "this", "have", "from", "or", "one", "had",
    "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
    "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up",
    "other", "about", "out", "many", "then", "them", "these", "so", "some", "her", "would", "make",
    "like", "him", "into", "time", "has", "look", "two", "more", "write", "go", "see", "number",
    "no", "way", "could", "people", "my", "than", "first", "water", "been", "call", "who", "oil",
    "its", "now", "find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
    "snap", "parallel", "worker", "sprite", "block",
];

/// A sentence used throughout the examples (word count's demo input).
pub const SAMPLE_SENTENCE: &str = "the quick brown fox jumps over the lazy dog while the cat naps";

/// Generate `n` words with a Zipf-like distribution (deterministic in
/// the seed).
pub fn generate_words(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute cumulative Zipf weights (1/rank).
    let weights: Vec<f64> = (1..=VOCABULARY.len()).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..total);
            let idx = cumulative.partition_point(|&c| c < x);
            VOCABULARY[idx.min(VOCABULARY.len() - 1)].to_owned()
        })
        .collect()
}

/// The same corpus as Snap! list items.
pub fn generate_word_values(n: usize, seed: u64) -> Vec<Value> {
    generate_words(n, seed)
        .into_iter()
        .map(Value::from)
        .collect()
}

/// Reference word count (sorted by word), for validating MapReduce
/// output.
pub fn reference_counts(words: &[String]) -> Vec<(String, u64)> {
    let mut counts: Vec<(String, u64)> = Vec::new();
    for w in words {
        match counts.iter_mut().find(|(k, _)| k == w) {
            Some((_, c)) => *c += 1,
            None => counts.push((w.clone(), 1)),
        }
    }
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_words(100, 7), generate_words(100, 7));
        assert_ne!(generate_words(100, 7), generate_words(100, 8));
    }

    #[test]
    fn distribution_is_zipf_like() {
        let words = generate_words(20_000, 42);
        let counts = reference_counts(&words);
        let get = |w: &str| {
            counts
                .iter()
                .find(|(k, _)| k == w)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        // "the" (rank 1) should dominate a mid-rank word by a wide margin.
        assert!(get("the") > 5 * get("number").max(1));
        // And every generated word is in the vocabulary.
        assert!(words.iter().all(|w| VOCABULARY.contains(&w.as_str())));
    }

    #[test]
    fn reference_counts_sum_to_input_length() {
        let words = generate_words(500, 1);
        let counts = reference_counts(&words);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 500);
        // Sorted by word.
        for pair in counts.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn sample_sentence_counts() {
        let words: Vec<String> = SAMPLE_SENTENCE.split(' ').map(String::from).collect();
        let counts = reference_counts(&words);
        assert_eq!(counts.iter().find(|(w, _)| w == "the").unwrap().1, 3);
    }
}
