//! Synthetic NOAA-style weather-station data.
//!
//! The paper's climate exercise (§3.4) uses "weather station data from
//! the National Ocean and Atmospheric Administration (NOAA), which
//! contain temperatures in Fahrenheit". We have no NOAA files, so this
//! generator is the documented substitution: per-station daily
//! temperatures with a latitude-dependent base, a seasonal cycle, a
//! configurable warming trend, and deterministic noise — the same
//! structure (many °F readings to convert and average) the classroom
//! exercise processes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use snap_ast::Value;

/// A simulated weather station.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Station identifier, e.g. `"ST003"`.
    pub id: String,
    /// Latitude in degrees (drives the base temperature).
    pub latitude: f64,
    /// Annual-mean temperature at this station, °F.
    pub base_temp_f: f64,
}

/// One temperature reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// The reporting station's id.
    pub station: String,
    /// Calendar year.
    pub year: u32,
    /// Day of year, 1-based.
    pub day: u16,
    /// Temperature in Fahrenheit.
    pub temp_f: f64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NoaaConfig {
    /// Number of stations.
    pub stations: usize,
    /// First year (inclusive).
    pub start_year: u32,
    /// Number of years.
    pub years: u32,
    /// Readings per station per year (365 = daily, 12 = monthly means).
    pub readings_per_year: u16,
    /// Warming trend in °F per decade, applied linearly.
    pub warming_f_per_decade: f64,
    /// Standard deviation of day-to-day noise, °F.
    pub noise_std_f: f64,
    /// RNG seed — identical configs generate identical datasets.
    pub seed: u64,
}

impl Default for NoaaConfig {
    fn default() -> Self {
        NoaaConfig {
            stations: 50,
            start_year: 1980,
            years: 40,
            readings_per_year: 365,
            warming_f_per_decade: 0.35,
            noise_std_f: 6.0,
            seed: 0xC11A7E,
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct NoaaDataset {
    /// The stations.
    pub stations: Vec<Station>,
    /// All readings, station-major then chronological.
    pub readings: Vec<Reading>,
}

/// Generate a dataset. Deterministic in the config.
pub fn generate(config: &NoaaConfig) -> NoaaDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stations = Vec::with_capacity(config.stations);
    for i in 0..config.stations {
        // Spread stations across the contiguous-US latitude band.
        let latitude = 25.0 + 24.0 * (i as f64 + 0.5) / config.stations.max(1) as f64;
        // Warmer near 25°N (~75 °F annual mean), cooler near 49°N (~45 °F).
        let base_temp_f = 75.0 - (latitude - 25.0) * 1.25 + rng.random_range(-3.0..3.0);
        stations.push(Station {
            id: format!("ST{i:03}"),
            latitude,
            base_temp_f,
        });
    }

    let per_year = config.readings_per_year.max(1);
    let mut readings =
        Vec::with_capacity(config.stations * config.years as usize * per_year as usize);
    for station in &stations {
        for y in 0..config.years {
            let year = config.start_year + y;
            let trend = config.warming_f_per_decade * (y as f64 / 10.0);
            for r in 0..per_year {
                let day = 1 + (r as f64 * 365.0 / per_year as f64) as u16;
                // Seasonal cycle peaking around day 200 (mid-July);
                // amplitude grows with latitude.
                let amplitude = 12.0 + (station.latitude - 25.0) * 0.6;
                let phase = (day as f64 - 200.0) / 365.0 * std::f64::consts::TAU;
                let seasonal = amplitude * phase.cos();
                // Uniform noise (simple, bounded, deterministic); the
                // configured std maps to a matching uniform half-width.
                let half_width = config.noise_std_f * 1.732;
                let noise = if half_width > 0.0 {
                    rng.random_range(-half_width..half_width)
                } else {
                    0.0
                };
                readings.push(Reading {
                    station: station.id.clone(),
                    year,
                    day,
                    temp_f: station.base_temp_f + seasonal + trend + noise,
                });
            }
        }
    }
    NoaaDataset { stations, readings }
}

impl NoaaDataset {
    /// Just the °F values, as Snap! list items — the input to the
    /// paper's climate MapReduce (Fig. 13).
    pub fn temps_f_values(&self) -> Vec<Value> {
        self.readings
            .iter()
            .map(|r| Value::Number(r.temp_f))
            .collect()
    }

    /// `(station id, °F)` pairs — the input to the generated OpenMP
    /// MapReduce program.
    pub fn station_temp_pairs(&self) -> Vec<(String, f64)> {
        self.readings
            .iter()
            .map(|r| (r.station.clone(), r.temp_f))
            .collect()
    }

    /// Mean temperature in Fahrenheit.
    pub fn mean_f(&self) -> f64 {
        if self.readings.is_empty() {
            return 0.0;
        }
        self.readings.iter().map(|r| r.temp_f).sum::<f64>() / self.readings.len() as f64
    }

    /// Per-year mean °F — what the students plot to "observe a mean
    /// change in the temperature of the Earth over time".
    pub fn yearly_means_f(&self) -> Vec<(u32, f64)> {
        let mut sums: Vec<(u32, f64, u64)> = Vec::new();
        for r in &self.readings {
            match sums.iter_mut().find(|(y, _, _)| *y == r.year) {
                Some((_, sum, n)) => {
                    *sum += r.temp_f;
                    *n += 1;
                }
                None => sums.push((r.year, r.temp_f, 1)),
            }
        }
        sums.sort_by_key(|(y, _, _)| *y);
        sums.into_iter()
            .map(|(y, sum, n)| (y, sum / n as f64))
            .collect()
    }
}

/// °F → °C, the mapper's arithmetic (Fig. 19).
pub fn f_to_c(f: f64) -> f64 {
    5.0 * (f - 32.0) / 9.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NoaaConfig {
        NoaaConfig {
            stations: 5,
            years: 10,
            readings_per_year: 12,
            ..NoaaConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.readings, b.readings);
        assert_eq!(a.stations, b.stations);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small());
        let b = generate(&NoaaConfig {
            seed: 99,
            ..small()
        });
        assert_ne!(a.readings, b.readings);
    }

    #[test]
    fn row_count_matches_config() {
        let d = generate(&small());
        assert_eq!(d.readings.len(), 5 * 10 * 12);
        assert_eq!(d.stations.len(), 5);
    }

    #[test]
    fn temperatures_are_plausible_for_the_us() {
        let d = generate(&small());
        let mean = d.mean_f();
        assert!(
            (20.0..90.0).contains(&mean),
            "annual US mean °F should be temperate, got {mean}"
        );
        for r in &d.readings {
            assert!((-60.0..140.0).contains(&r.temp_f), "outlier: {r:?}");
        }
    }

    #[test]
    fn southern_stations_are_warmer() {
        let d = generate(&generate_cfg_many());
        let south = &d.stations[0];
        let north = d.stations.last().unwrap();
        assert!(south.latitude < north.latitude);
        assert!(south.base_temp_f > north.base_temp_f);
    }

    fn generate_cfg_many() -> NoaaConfig {
        NoaaConfig {
            stations: 20,
            ..small()
        }
    }

    #[test]
    fn warming_trend_is_recoverable() {
        let d = generate(&NoaaConfig {
            stations: 20,
            years: 40,
            readings_per_year: 52,
            warming_f_per_decade: 1.0,
            noise_std_f: 3.0,
            ..NoaaConfig::default()
        });
        let means = d.yearly_means_f();
        let first_decade: f64 = means[..10].iter().map(|(_, m)| m).sum::<f64>() / 10.0;
        let last_decade: f64 = means[means.len() - 10..]
            .iter()
            .map(|(_, m)| m)
            .sum::<f64>()
            / 10.0;
        let observed = last_decade - first_decade;
        // 3 decades apart at 1 °F/decade → ≈ 3 °F.
        assert!(
            (2.0..4.0).contains(&observed),
            "expected ≈3 °F of warming, observed {observed}"
        );
    }

    #[test]
    fn f_to_c_fixed_points() {
        assert_eq!(f_to_c(32.0), 0.0);
        assert_eq!(f_to_c(212.0), 100.0);
        assert!((f_to_c(-40.0) + 40.0).abs() < 1e-12);
    }

    #[test]
    fn value_conversion_preserves_length() {
        let d = generate(&small());
        assert_eq!(d.temps_f_values().len(), d.readings.len());
        assert_eq!(d.station_temp_pairs().len(), d.readings.len());
    }
}
