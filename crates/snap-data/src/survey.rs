//! The Women-in-Computing-Day survey model (paper §5, experiment E9).
//!
//! The paper reports aggregate percentages from a brief written survey
//! of ~100 seventh-grade girls (four groups of 24–25) after the parallel
//! Snap! activity. We model respondents as categorical draws with the
//! paper's marginals, generate a cohort deterministically by quota (so
//! the reported table is recovered exactly at the paper's cohort size),
//! and tabulate the way the paper does.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Answer to "is computer science a potential career choice for you?"
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CareerChoice {
    /// Computer science.
    ComputerScience,
    /// Something other than computer science.
    Other,
    /// No answer / "don't know".
    NoAnswer,
}

/// Answer to "was your impression of computer science changed?"
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impression {
    /// More favorable than before.
    MoreFavorable,
    /// Less favorable.
    LessFavorable,
    /// The same / no opinion.
    Same,
}

/// One middle-schooler's survey response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Which of the four 50-minute activity groups she attended.
    pub group: u8,
    /// Career-choice answer.
    pub career: CareerChoice,
    /// Among non-CS careers: would CS benefit it? (`None` when career
    /// is CS or unanswered.)
    pub cs_benefits_career: Option<bool>,
    /// Impression shift.
    pub impression: Impression,
}

/// The aggregate table the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyTable {
    /// Respondents.
    pub n: usize,
    /// % choosing computer science as a potential career.
    pub career_cs_pct: f64,
    /// % choosing something else.
    pub career_other_pct: f64,
    /// % giving no answer.
    pub career_none_pct: f64,
    /// Of the non-CS group: % saying CS would benefit their career.
    pub benefit_pct: f64,
    /// % more favorable impression.
    pub more_favorable_pct: f64,
    /// % less favorable.
    pub less_favorable_pct: f64,
    /// % same / no opinion.
    pub same_pct: f64,
}

/// The paper's §5 numbers.
pub const PAPER_TABLE: SurveyTable = SurveyTable {
    n: 100,
    career_cs_pct: 29.0,
    career_other_pct: 54.0,
    career_none_pct: 17.0,
    benefit_pct: 57.0,
    more_favorable_pct: 86.0,
    less_favorable_pct: 9.0,
    same_pct: 6.0,
};

/// Generate a cohort whose aggregate matches the paper's marginals by
/// quota (exact at n=100 up to integer rounding), shuffled
/// deterministically and split into four groups of 24–25.
pub fn simulate_cohort(n: usize, seed: u64) -> Vec<Response> {
    let quota = |pct: f64| -> usize { ((pct / 100.0) * n as f64).round() as usize };

    let n_cs = quota(PAPER_TABLE.career_cs_pct);
    let n_other = quota(PAPER_TABLE.career_other_pct);
    let n_none = n.saturating_sub(n_cs + n_other);

    let mut careers = Vec::with_capacity(n);
    careers.extend(std::iter::repeat_n(CareerChoice::ComputerScience, n_cs));
    careers.extend(std::iter::repeat_n(CareerChoice::Other, n_other));
    careers.extend(std::iter::repeat_n(CareerChoice::NoAnswer, n_none));

    // Benefit question: asked of the "other" group only; 57% yes.
    let n_benefit_yes = ((PAPER_TABLE.benefit_pct / 100.0) * n_other as f64).round() as usize;

    // Impression: 86/9/rest.
    let n_more = quota(PAPER_TABLE.more_favorable_pct);
    let n_less = quota(PAPER_TABLE.less_favorable_pct);
    let n_same = n.saturating_sub(n_more + n_less);
    let mut impressions = Vec::with_capacity(n);
    impressions.extend(std::iter::repeat_n(Impression::MoreFavorable, n_more));
    impressions.extend(std::iter::repeat_n(Impression::LessFavorable, n_less));
    impressions.extend(std::iter::repeat_n(Impression::Same, n_same));

    let mut rng = StdRng::seed_from_u64(seed);
    careers.shuffle(&mut rng);
    impressions.shuffle(&mut rng);

    let mut other_seen = 0;
    careers
        .into_iter()
        .zip(impressions)
        .enumerate()
        .map(|(i, (career, impression))| {
            let cs_benefits_career = match career {
                CareerChoice::Other => {
                    other_seen += 1;
                    Some(other_seen <= n_benefit_yes)
                }
                _ => None,
            };
            Response {
                group: (i % 4) as u8 + 1,
                career,
                cs_benefits_career,
                impression,
            }
        })
        .collect()
}

/// Aggregate responses into the paper's table.
pub fn tabulate(responses: &[Response]) -> SurveyTable {
    let n = responses.len();
    let pct = |count: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            (count as f64 / total as f64 * 100.0).round()
        }
    };
    let count = |f: &dyn Fn(&Response) -> bool| responses.iter().filter(|r| f(r)).count();

    let cs = count(&|r| r.career == CareerChoice::ComputerScience);
    let other = count(&|r| r.career == CareerChoice::Other);
    let none = count(&|r| r.career == CareerChoice::NoAnswer);
    let benefit_yes = count(&|r| r.cs_benefits_career == Some(true));
    let more = count(&|r| r.impression == Impression::MoreFavorable);
    let less = count(&|r| r.impression == Impression::LessFavorable);
    let same = count(&|r| r.impression == Impression::Same);

    SurveyTable {
        n,
        career_cs_pct: pct(cs, n),
        career_other_pct: pct(other, n),
        career_none_pct: pct(none, n),
        benefit_pct: pct(benefit_yes, other),
        more_favorable_pct: pct(more, n),
        less_favorable_pct: pct(less, n),
        same_pct: pct(same, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_recovers_paper_percentages_exactly_at_100() {
        let cohort = simulate_cohort(100, 2016);
        let table = tabulate(&cohort);
        assert_eq!(table.career_cs_pct, 29.0);
        assert_eq!(table.career_other_pct, 54.0);
        assert_eq!(table.career_none_pct, 17.0);
        assert_eq!(table.benefit_pct, 57.0);
        assert_eq!(table.more_favorable_pct, 86.0);
        assert_eq!(table.less_favorable_pct, 9.0);
        // 86 + 9 leaves 5; the paper's 86/9/6 sums to 101 (rounding).
        assert_eq!(table.same_pct, 5.0);
    }

    #[test]
    fn groups_are_four_of_24_to_25() {
        let cohort = simulate_cohort(99, 1);
        for g in 1..=4u8 {
            let size = cohort.iter().filter(|r| r.group == g).count();
            assert!((24..=25).contains(&size), "group {g} has {size}");
        }
    }

    #[test]
    fn benefit_is_only_asked_of_other_careers() {
        let cohort = simulate_cohort(100, 3);
        for r in &cohort {
            match r.career {
                CareerChoice::Other => assert!(r.cs_benefits_career.is_some()),
                _ => assert!(r.cs_benefits_career.is_none()),
            }
        }
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        assert_eq!(simulate_cohort(100, 5), simulate_cohort(100, 5));
        assert_ne!(simulate_cohort(100, 5), simulate_cohort(100, 6));
    }

    #[test]
    fn scales_to_other_cohort_sizes() {
        let table = tabulate(&simulate_cohort(1000, 7));
        assert!((table.career_cs_pct - 29.0).abs() <= 1.0);
        assert!((table.benefit_pct - 57.0).abs() <= 1.0);
    }

    #[test]
    fn empty_cohort_tabulates_to_zeros() {
        let table = tabulate(&[]);
        assert_eq!(table.n, 0);
        assert_eq!(table.career_cs_pct, 0.0);
        assert_eq!(table.benefit_pct, 0.0);
    }
}
