//! # snap-data — workloads and substituted datasets
//!
//! Deterministic generators standing in for the data the paper used but
//! we cannot ship: NOAA weather-station files (→ [`noaa`]), natural-text
//! corpora for word count (→ [`corpus`]), and the Women in Computing Day
//! survey cohort (→ [`survey`]). Each substitution is documented in
//! `DESIGN.md`; all generators are pure functions of their seeds.

#![warn(missing_docs)]

pub mod corpus;
pub mod io;
pub mod noaa;
pub mod survey;

pub use corpus::{generate_word_values, generate_words, reference_counts, SAMPLE_SENTENCE};
pub use io::{
    parse_csv, parse_list, read_csv, read_list, read_noaa_csv, write_csv, write_list,
    write_noaa_csv,
};
pub use noaa::{f_to_c, generate as generate_noaa, NoaaConfig, NoaaDataset, Reading, Station};
pub use survey::{simulate_cohort, tabulate, Response, SurveyTable, PAPER_TABLE};
