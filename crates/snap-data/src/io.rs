//! File ingestion and export.
//!
//! §6.3: "the Snap! environment needs a way to ingest larger amounts of
//! data without having to enter them one by one into a list box. For
//! production use, it needs to have a way to consume existing data
//! files. Likewise, it needs a way to write data to files for use by
//! other programs outside of Snap!." This module is that feature: lists
//! of values ↔ text files (one item per line), tabular data ↔ CSV, and
//! the NOAA-style dataset ↔ the CSV layout a real station file would
//! use.

use std::io::{self, Write};
use std::path::Path;

use snap_ast::{List, Value};

use crate::noaa::{NoaaDataset, Reading, Station};

/// Read a text file into a Snap! list, one item per line. Numeric lines
/// become numbers (like typing them into a list box); everything else
/// stays text.
pub fn read_list(path: &Path) -> io::Result<List> {
    let content = std::fs::read_to_string(path)?;
    Ok(parse_list(&content))
}

/// The parsing half of [`read_list`], separated for tests.
pub fn parse_list(content: &str) -> List {
    content
        .lines()
        .map(|line| {
            let trimmed = line.trim_end_matches('\r');
            match trimmed.parse::<f64>() {
                Ok(n) => Value::Number(n),
                Err(_) => Value::text(trimmed),
            }
        })
        .collect()
}

/// Write a Snap! list to a text file, one item per line (nested lists
/// are rendered with their display form).
pub fn write_list(path: &Path, list: &List) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for item in list.to_vec() {
        writeln!(file, "{}", item.to_display_string())?;
    }
    Ok(())
}

/// Read a CSV file into a list of row-lists (numeric cells become
/// numbers). The first row is returned too — callers decide whether it
/// is a header. Quoting is the minimal practical subset: double quotes
/// around cells containing commas.
pub fn read_csv(path: &Path) -> io::Result<List> {
    let content = std::fs::read_to_string(path)?;
    Ok(parse_csv(&content))
}

/// The parsing half of [`read_csv`].
pub fn parse_csv(content: &str) -> List {
    content
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let cells: Vec<Value> = split_csv_line(line.trim_end_matches('\r'))
                .into_iter()
                .map(|cell| match cell.parse::<f64>() {
                    Ok(n) => Value::Number(n),
                    Err(_) => Value::Text(cell),
                })
                .collect();
            Value::list(cells)
        })
        .collect()
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                current.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    cells.push(current);
    cells
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Write a list of row-lists as CSV.
pub fn write_csv(path: &Path, rows: &List) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for row in rows.to_vec() {
        let line = match row.as_list() {
            Some(cells) => cells
                .to_vec()
                .iter()
                .map(|c| csv_escape(&c.to_display_string()))
                .collect::<Vec<_>>()
                .join(","),
            None => csv_escape(&row.to_display_string()),
        };
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// The CSV header for NOAA-style readings.
pub const NOAA_CSV_HEADER: &str = "station,latitude,year,day,temp_f";

/// Export a synthetic dataset to the CSV layout a real NOAA station file
/// would use.
pub fn write_noaa_csv(path: &Path, dataset: &NoaaDataset) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{NOAA_CSV_HEADER}")?;
    for r in &dataset.readings {
        let latitude = dataset
            .stations
            .iter()
            .find(|s| s.id == r.station)
            .map(|s| s.latitude)
            .unwrap_or(0.0);
        writeln!(
            file,
            "{},{:.4},{},{},{:.3}",
            r.station, latitude, r.year, r.day, r.temp_f
        )?;
    }
    Ok(())
}

/// Re-ingest a NOAA CSV (as written by [`write_noaa_csv`], or hand-made
/// in the same layout).
pub fn read_noaa_csv(path: &Path) -> io::Result<NoaaDataset> {
    let content = std::fs::read_to_string(path)?;
    let mut stations: Vec<Station> = Vec::new();
    let mut readings = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let cells = split_csv_line(line);
        if cells.len() != 5 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected 5 columns, got {}", i + 1, cells.len()),
            ));
        }
        let parse_num = |cell: &str, what: &str| {
            cell.parse::<f64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}: {cell:?}", i + 1),
                )
            })
        };
        let station = cells[0].clone();
        let latitude = parse_num(&cells[1], "latitude")?;
        let year = parse_num(&cells[2], "year")? as u32;
        let day = parse_num(&cells[3], "day")? as u16;
        let temp_f = parse_num(&cells[4], "temperature")?;
        if !stations.iter().any(|s| s.id == station) {
            stations.push(Station {
                id: station.clone(),
                latitude,
                base_temp_f: f64::NAN, // unknown from a file; not used downstream
            });
        }
        readings.push(Reading {
            station,
            year,
            day,
            temp_f,
        });
    }
    Ok(NoaaDataset { stations, readings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noaa::{generate, NoaaConfig};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psnap-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn list_roundtrips_through_a_file() {
        let path = tmp("list.txt");
        let list = List::from_vec(vec![1.5.into(), "hello".into(), 42.into()]);
        write_list(&path, &list).unwrap();
        let back = read_list(&path).unwrap();
        assert_eq!(back.to_vec(), list.to_vec());
    }

    #[test]
    fn parse_list_types_cells_like_a_list_box() {
        let list = parse_list("3\n7.5\nword\n");
        assert_eq!(
            list.to_vec(),
            vec![3.into(), 7.5.into(), Value::text("word")]
        );
    }

    #[test]
    fn csv_roundtrips_with_quoting() {
        let path = tmp("table.csv");
        let rows = List::from_vec(vec![
            Value::list(vec!["plain".into(), 1.into()]),
            Value::list(vec!["with, comma".into(), 2.into()]),
            Value::list(vec!["with \"quote\"".into(), 3.into()]),
        ]);
        write_csv(&path, &rows).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 3);
        let row2 = back.item(2).unwrap();
        assert_eq!(
            row2.as_list().unwrap().item(1).unwrap(),
            Value::text("with, comma")
        );
        let row3 = back.item(3).unwrap();
        assert_eq!(
            row3.as_list().unwrap().item(1).unwrap(),
            Value::text("with \"quote\"")
        );
    }

    #[test]
    fn noaa_csv_roundtrips_readings() {
        let dataset = generate(&NoaaConfig {
            stations: 3,
            years: 2,
            readings_per_year: 4,
            ..NoaaConfig::default()
        });
        let path = tmp("noaa.csv");
        write_noaa_csv(&path, &dataset).unwrap();
        let back = read_noaa_csv(&path).unwrap();
        assert_eq!(back.readings.len(), dataset.readings.len());
        assert_eq!(back.stations.len(), dataset.stations.len());
        for (a, b) in back.readings.iter().zip(&dataset.readings) {
            assert_eq!(a.station, b.station);
            assert_eq!(a.year, b.year);
            assert!(
                (a.temp_f - b.temp_f).abs() < 1e-3,
                "3-decimal CSV precision"
            );
        }
    }

    #[test]
    fn bad_noaa_rows_are_rejected_with_line_numbers() {
        let path = tmp("bad.csv");
        std::fs::write(&path, format!("{NOAA_CSV_HEADER}\nST0,37.0,oops,1,55\n")).unwrap();
        let err = read_noaa_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::write(&path, format!("{NOAA_CSV_HEADER}\nST0,37.0,1990\n")).unwrap();
        let err = read_noaa_csv(&path).unwrap_err();
        assert!(err.to_string().contains("5 columns"));
    }

    #[test]
    fn empty_file_is_an_empty_list() {
        let list = parse_list("");
        assert!(list.is_empty());
        assert!(parse_csv("").is_empty());
    }
}
