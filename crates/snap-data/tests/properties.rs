//! Property-based tests for the data generators.

use proptest::prelude::*;

use snap_data::io::{parse_csv, parse_list};
use snap_data::{
    generate_noaa, generate_words, reference_counts, simulate_cohort, tabulate, NoaaConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noaa_row_counts_follow_config(
        stations in 1usize..8,
        years in 1u32..6,
        per_year in 1u16..20,
        seed in any::<u64>()
    ) {
        let d = generate_noaa(&NoaaConfig {
            stations,
            years,
            readings_per_year: per_year,
            seed,
            ..NoaaConfig::default()
        });
        prop_assert_eq!(d.stations.len(), stations);
        prop_assert_eq!(
            d.readings.len(),
            stations * years as usize * per_year as usize
        );
    }

    #[test]
    fn noaa_temperatures_stay_physical(seed in any::<u64>()) {
        let d = generate_noaa(&NoaaConfig {
            stations: 6,
            years: 3,
            readings_per_year: 24,
            seed,
            ..NoaaConfig::default()
        });
        for r in &d.readings {
            prop_assert!((-80.0..160.0).contains(&r.temp_f), "outlier {r:?}");
        }
    }

    #[test]
    fn noaa_is_a_pure_function_of_its_config(seed in any::<u64>()) {
        let cfg = NoaaConfig {
            stations: 4,
            years: 2,
            readings_per_year: 6,
            seed,
            ..NoaaConfig::default()
        };
        prop_assert_eq!(generate_noaa(&cfg).readings, generate_noaa(&cfg).readings);
    }

    #[test]
    fn corpus_counts_sum_to_corpus_size(n in 0usize..3000, seed in any::<u64>()) {
        let words = generate_words(n, seed);
        prop_assert_eq!(words.len(), n);
        let counts = reference_counts(&words);
        prop_assert_eq!(counts.iter().map(|(_, c)| *c).sum::<u64>(), n as u64);
    }

    #[test]
    fn survey_marginals_hold_at_any_cohort_size(n in 20usize..400, seed in any::<u64>()) {
        let table = tabulate(&simulate_cohort(n, seed));
        prop_assert_eq!(table.n, n);
        // Quota sampling keeps each marginal within rounding of the paper.
        let slack = 100.0 / n as f64 + 1.0;
        prop_assert!((table.career_cs_pct - 29.0).abs() <= slack);
        prop_assert!((table.more_favorable_pct - 86.0).abs() <= slack);
        // Career categories partition the cohort.
        prop_assert!(
            (table.career_cs_pct + table.career_other_pct + table.career_none_pct
                - 100.0)
                .abs()
                <= 2.0
        );
    }

    #[test]
    fn parse_list_never_panics_and_preserves_line_count(text in "(?s).{0,400}") {
        let lines = text.lines().count();
        let list = parse_list(&text);
        prop_assert_eq!(list.len(), lines);
    }

    #[test]
    fn parse_csv_never_panics(text in "(?s).{0,400}") {
        let _ = parse_csv(&text);
    }
}
