//! # snap-core — parallel programming with pictures, in Rust
//!
//! The public facade of **psnap**, a from-scratch Rust reproduction of
//! *"Parallel Programming with Pictures is a Snap!"* (Feng, Gardner &
//! Feng): a Snap!-style block language with first-class lists and rings,
//! a cooperative sprite runtime, the paper's truly parallel
//! `parallelMap` / `parallelForEach` / `mapReduce` blocks on an
//! OS-thread Web-Worker substrate, and the block→C/OpenMP code-mapping
//! pipeline.
//!
//! ```
//! use snap_core::prelude::*;
//!
//! // Figure 5: parallelMap (( ) × 10) over [3, 7, 8]
//! let project = Project::new("quickstart").with_sprite(
//!     SpriteDef::new("Sprite").with_script(Script::on_green_flag(vec![
//!         say(parallel_map_over(
//!             ring_reporter(mul(empty_slot(), num(10.0))),
//!             number_list([3.0, 7.0, 8.0]),
//!         )),
//!     ])),
//! );
//! let mut session = Session::load(project);
//! session.run();
//! assert_eq!(session.said(), vec!["[30, 70, 80]"]);
//! ```

#![warn(missing_docs)]

pub use snap_ast as ast;
pub use snap_build as build;
pub use snap_codegen as codegen;
pub use snap_data as data;
pub use snap_parallel as parallel;
pub use snap_trace as trace;
pub use snap_vm as vm;
pub use snap_workers as workers;

use snap_ast::{Expr, Project, Stmt, Value};
use snap_vm::{Pid, Vm, VmConfig, VmError};

/// Everything a typical program needs, one import away.
pub mod prelude {
    pub use snap_ast::builder::*;
    pub use snap_ast::{
        BlockKind, Constant, CustomBlock, Expr, HatBlock, List, Project, Ring, Script, SpriteDef,
        Stmt, StopKind, Value,
    };
    pub use snap_vm::{Interference, Vm, VmConfig};
    pub use snap_workers::{Parallel, Strategy};

    pub use crate::Session;
}

/// A loaded project with the true-parallel backend installed — the
/// equivalent of opening the paper's extended Snap! in a browser with
/// Web Workers available.
pub struct Session {
    /// The underlying VM (public for advanced control).
    pub vm: Vm,
}

impl Session {
    /// Load a project with default scheduler settings.
    pub fn load(project: Project) -> Session {
        Session::load_with_config(project, VmConfig::default())
    }

    /// Load with explicit scheduler configuration.
    pub fn load_with_config(project: Project, config: VmConfig) -> Session {
        let mut vm = Vm::with_config(project, config);
        snap_parallel::install(&mut vm);
        Session { vm }
    }

    /// Load from a JSON project file.
    pub fn load_json(json: &str) -> Result<Session, serde_json::Error> {
        Ok(Session::load(Project::from_json(json)?))
    }

    /// Load from an XML project file (the format real Snap! uses).
    pub fn load_xml(xml: &str) -> Result<Session, snap_ast::project_xml::ProjectXmlError> {
        Ok(Session::load(Project::from_xml(xml)?))
    }

    /// Press the green flag and run until every script finishes.
    /// Returns the number of frames executed.
    pub fn run(&mut self) -> u64 {
        self.vm.green_flag();
        self.vm.run_until_idle()
    }

    /// Press the green flag and run at most `frames` frames (for
    /// projects with `forever` scripts).
    pub fn run_frames(&mut self, frames: u64) {
        self.vm.green_flag();
        self.vm.run_frames(frames);
    }

    /// Everything sprites have said, in order.
    pub fn said(&self) -> Vec<&str> {
        self.vm.world.said()
    }

    /// The stage timer (timesteps since last reset).
    pub fn timer(&self) -> u64 {
        self.vm.timer()
    }

    /// Evaluate a reporter in a sprite's context (`None` = stage) — the
    /// analogue of clicking a block in the editor.
    pub fn eval(&mut self, sprite: Option<&str>, expr: &Expr) -> Result<Value, VmError> {
        self.vm.eval_expr(sprite, expr)
    }

    /// Start an ad-hoc script on a sprite.
    pub fn spawn(&mut self, sprite: Option<&str>, body: Vec<Stmt>) -> Result<Pid, VmError> {
        self.vm.spawn_script(sprite, body)
    }

    /// Errors raised by scripts so far.
    pub fn errors(&self) -> &[(String, VmError)] {
        &self.vm.world.errors
    }

    /// Show a stage watcher for a variable (like checking the variable's
    /// checkbox in Snap!'s palette).
    pub fn watch(&mut self, name: impl Into<String>) {
        self.vm.world.watch(name);
    }

    /// Lint the loaded project (undefined variables, bad custom-block
    /// calls, unreachable code, …) without running it.
    pub fn lint(&self) -> Vec<snap_ast::Lint> {
        snap_ast::lint_project(&self.vm.world.project)
    }

    /// Render the stage as text: timer, watchers, say bubbles, sprites.
    pub fn stage(&self) -> String {
        snap_vm::render_stage(
            &self.vm.world,
            self.vm.timestep(),
            &snap_vm::StageView::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn session_installs_parallel_backend() {
        let session = Session::load(Project::new("t"));
        assert_eq!(session.vm.world.backend.name(), "worker-pool");
    }

    #[test]
    fn session_roundtrips_project_json() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![say(text("hello"))])),
        );
        let json = project.to_json();
        let mut session = Session::load_json(&json).unwrap();
        session.run();
        assert_eq!(session.said(), vec!["hello"]);
    }

    #[test]
    fn session_lint_finds_undefined_variables() {
        let session = Session::load(Project::new("t").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![say(var("ghost"))])),
        ));
        let lints = session.lint();
        assert_eq!(lints.len(), 1);
        assert!(lints[0].to_string().contains("ghost"));
    }

    #[test]
    fn session_stage_rendering_shows_watchers() {
        let mut session = Session::load(
            Project::new("t")
                .with_global("score", Constant::Number(3.0))
                .with_sprite(SpriteDef::new("Cat")),
        );
        session.watch("score");
        session.run();
        let stage = session.stage();
        assert!(stage.contains("score = 3"));
        assert!(stage.contains('C'));
    }

    #[test]
    fn session_loads_xml_projects() {
        let project = Project::new("x").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![say(text("from xml"))])),
        );
        let mut session = Session::load_xml(&project.to_xml()).unwrap();
        session.run();
        assert_eq!(session.said(), vec!["from xml"]);
    }

    #[test]
    fn eval_uses_true_parallel_backend() {
        let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
        let v = session
            .eval(
                Some("S"),
                &parallel_map_over(
                    ring_reporter(mul(empty_slot(), num(10.0))),
                    number_list([3.0, 7.0, 8.0]),
                ),
            )
            .unwrap();
        assert_eq!(v, Value::number_list([30.0, 70.0, 80.0]));
    }
}
