//! Processes — Snap!'s unit of concurrency.
//!
//! "When events occur …, all scripts that wait for that event are added
//! to the process queue by Snap!'s thread manager. Each process executes
//! for a short amount of time called a *time slice* before yielding to
//! the next process" (paper §2). A [`Process`] is one activated script:
//! an explicit stack of [`Task`]s (the analogue of Snap!'s `Context`
//! chain) plus its variable scopes.

use std::collections::VecDeque;
use std::sync::Arc;

use snap_ast::{Expr, Stmt, Value};

use crate::world::SpriteId;

/// Process identifier, unique for the lifetime of a VM.
pub type Pid = u64;

/// A stack of variable scope frames. Lookup walks innermost-first; the
/// sprite's variables and the globals sit *below* the stack (the VM
/// consults them when the stack misses).
#[derive(Debug, Clone, Default)]
pub struct ScopeStack {
    frames: Vec<Vec<(String, Value)>>,
}

impl ScopeStack {
    /// A stack with one empty base frame.
    pub fn new() -> ScopeStack {
        ScopeStack {
            frames: vec![Vec::new()],
        }
    }

    /// Push a new (possibly pre-populated) frame.
    pub fn push(&mut self, bindings: Vec<(String, Value)>) {
        self.frames.push(bindings);
    }

    /// Pop the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Declare a variable in the innermost frame (shadowing outer ones).
    pub fn declare(&mut self, name: &str, value: Value) {
        if let Some(frame) = self.frames.last_mut() {
            if let Some(slot) = frame.iter_mut().find(|(n, _)| n == name) {
                slot.1 = value;
            } else {
                frame.push((name.to_owned(), value));
            }
        }
    }

    /// Look up a variable, innermost frame first.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.frames
            .iter()
            .rev()
            .find_map(|frame| frame.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v))
    }

    /// Assign to an existing binding. Returns `false` when no frame binds
    /// `name` (the VM then tries sprite variables and globals).
    pub fn set(&mut self, name: &str, value: Value) -> bool {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.iter_mut().rev().find(|(n, _)| n == name) {
                slot.1 = value;
                return true;
            }
        }
        false
    }

    /// Flatten every binding (outermost first, so inner shadows outer on
    /// reverse lookup) — used to capture a ring's environment.
    pub fn flatten(&self) -> Vec<(String, Value)> {
        self.frames.iter().flatten().cloned().collect()
    }
}

/// What kind of loop a [`Task::Loop`] drives.
#[derive(Debug, Clone)]
pub enum LoopKind {
    /// `repeat <n>`.
    Repeat {
        /// Iterations left.
        remaining: u64,
    },
    /// `forever`.
    Forever,
    /// `repeat until <cond>`.
    Until {
        /// Loop exit condition, re-evaluated before each iteration.
        cond: Expr,
    },
    /// `for <var> = <from> to <to>`.
    For {
        /// Loop variable name.
        var: String,
        /// Next value to bind.
        next: f64,
        /// Inclusive end.
        end: f64,
        /// +1 or −1.
        step: f64,
    },
    /// `for each <var> in <list>` (also `parallelForEach` in sequential
    /// mode, and each clone's share of a parallel one).
    ForEach {
        /// Item variable name.
        var: String,
        /// Snapshot of the items to visit.
        items: VecDeque<Value>,
    },
}

/// The state of one in-flight loop.
#[derive(Debug, Clone)]
pub struct LoopTask {
    /// Loop flavour + progress.
    pub kind: LoopKind,
    /// Shared loop body.
    pub body: Arc<Vec<Stmt>>,
    /// `true` while an iteration's body is on the stack above us.
    pub iter_active: bool,
    /// Set when the current iteration executed a wait — the loop-bottom
    /// yield is then *absorbed* (the process is already at a frame
    /// boundary). See `DESIGN.md` on concession-stand timing.
    pub yielded_in_iter: bool,
}

/// One entry of a process's continuation stack.
#[derive(Debug, Clone)]
pub enum Task {
    /// Execute `stmts[idx..]` in order.
    Seq {
        /// Shared statement list.
        stmts: Arc<Vec<Stmt>>,
        /// Next statement to run.
        idx: usize,
    },
    /// A loop controller (owns one scope frame, pushed at entry).
    Loop(LoopTask),
    /// `wait until <cond>` — re-evaluated once per frame.
    WaitUntil {
        /// The condition.
        cond: Expr,
    },
    /// Block until every listed process has finished, then delete the
    /// listed clones (used by `broadcast and wait` and the parallel
    /// `parallelForEach`).
    Join {
        /// Processes to wait for.
        pids: Vec<Pid>,
        /// Clones to delete once they finish.
        cleanup_clones: Vec<SpriteId>,
    },
    /// Marks a custom-command / command-ring call boundary: `stop this
    /// block` and `report` unwind to here. Owns one scope frame.
    CallBoundary,
    /// Leaving a `warp` block: decrement the warp depth.
    ExitWarp,
    /// Clear the sprite's say bubble (end of `say … for …`).
    ClearSay,
}

/// One activated script.
#[derive(Debug)]
pub struct Process {
    /// Unique id.
    pub pid: Pid,
    /// The sprite (or stage) this script belongs to.
    pub sprite: SpriteId,
    /// Continuation stack; the top is the current task.
    pub tasks: Vec<Task>,
    /// Variable scopes.
    pub scopes: ScopeStack,
    /// The process sleeps until this timestep (a `wait` in progress).
    pub sleep_until: u64,
    /// Nesting depth of `warp` blocks (loop bottoms don't yield inside).
    pub warp_depth: u32,
    /// Set when the script has run to completion or was stopped.
    pub finished: bool,
}

impl Process {
    /// A process about to run `body` on `sprite`.
    pub fn new(pid: Pid, sprite: SpriteId, body: Arc<Vec<Stmt>>) -> Process {
        Process {
            pid,
            sprite,
            tasks: vec![Task::Seq {
                stmts: body,
                idx: 0,
            }],
            scopes: ScopeStack::new(),
            sleep_until: 0,
            warp_depth: 0,
            finished: false,
        }
    }

    /// A process with pre-seeded scope frames (ring launches, clone
    /// children inherit the parent's visible variables).
    pub fn with_scopes(
        pid: Pid,
        sprite: SpriteId,
        body: Arc<Vec<Stmt>>,
        scopes: ScopeStack,
    ) -> Process {
        Process {
            pid,
            sprite,
            tasks: vec![Task::Seq {
                stmts: body,
                idx: 0,
            }],
            scopes,
            sleep_until: 0,
            warp_depth: 0,
            finished: false,
        }
    }

    /// Mark the innermost loop's current iteration as having yielded
    /// (called when a `wait` executes), so its bottom yield is absorbed.
    pub fn mark_innermost_loop_yielded(&mut self) {
        for task in self.tasks.iter_mut().rev() {
            if let Task::Loop(lt) = task {
                lt.yielded_in_iter = true;
                return;
            }
        }
    }

    /// Unwind to (and including) the nearest [`Task::CallBoundary`],
    /// popping scopes owned by unwound tasks. Returns `false` if no
    /// boundary exists (the caller then stops the script).
    pub fn unwind_to_call_boundary(&mut self) -> bool {
        while let Some(task) = self.tasks.pop() {
            match task {
                Task::CallBoundary => {
                    self.scopes.pop();
                    return true;
                }
                Task::Loop(_) => self.scopes.pop(),
                Task::ExitWarp => self.warp_depth = self.warp_depth.saturating_sub(1),
                _ => {}
            }
        }
        false
    }

    /// Stop the whole script.
    pub fn stop_script(&mut self) {
        self.tasks.clear();
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_lookup_is_innermost_first() {
        let mut s = ScopeStack::new();
        s.declare("x", Value::Number(1.0));
        s.push(vec![("x".into(), Value::Number(2.0))]);
        assert_eq!(s.get("x"), Some(&Value::Number(2.0)));
        s.pop();
        assert_eq!(s.get("x"), Some(&Value::Number(1.0)));
    }

    #[test]
    fn set_updates_innermost_binding_only() {
        let mut s = ScopeStack::new();
        s.declare("x", Value::Number(1.0));
        s.push(vec![("x".into(), Value::Number(2.0))]);
        assert!(s.set("x", Value::Number(3.0)));
        assert_eq!(s.get("x"), Some(&Value::Number(3.0)));
        s.pop();
        assert_eq!(s.get("x"), Some(&Value::Number(1.0)));
        assert!(!s.set("y", Value::Number(0.0)));
    }

    #[test]
    fn declare_overwrites_in_same_frame() {
        let mut s = ScopeStack::new();
        s.declare("x", Value::Number(1.0));
        s.declare("x", Value::Number(2.0));
        assert_eq!(s.get("x"), Some(&Value::Number(2.0)));
        assert_eq!(s.flatten().len(), 1);
    }

    #[test]
    fn unwind_stops_at_boundary_and_pops_scopes() {
        let mut p = Process::new(1, 0, Arc::new(vec![]));
        p.scopes.push(vec![]); // owned by CallBoundary
        p.tasks.push(Task::CallBoundary);
        p.scopes.push(vec![]); // owned by Loop
        p.tasks.push(Task::Loop(LoopTask {
            kind: LoopKind::Forever,
            body: Arc::new(vec![]),
            iter_active: false,
            yielded_in_iter: false,
        }));
        let base_depth = 1; // ScopeStack::new starts with one frame
        assert!(p.unwind_to_call_boundary());
        assert_eq!(p.scopes.depth(), base_depth);
        // Seq base task remains.
        assert_eq!(p.tasks.len(), 1);
    }

    #[test]
    fn unwind_without_boundary_reports_false() {
        let mut p = Process::new(1, 0, Arc::new(vec![]));
        assert!(!p.unwind_to_call_boundary());
        assert!(p.tasks.is_empty());
    }

    #[test]
    fn mark_innermost_loop_only() {
        let mut p = Process::new(1, 0, Arc::new(vec![]));
        let lt = || {
            Task::Loop(LoopTask {
                kind: LoopKind::Forever,
                body: Arc::new(vec![]),
                iter_active: true,
                yielded_in_iter: false,
            })
        };
        p.tasks.push(lt());
        p.tasks.push(lt());
        p.mark_innermost_loop_yielded();
        let flags: Vec<bool> = p
            .tasks
            .iter()
            .filter_map(|t| match t {
                Task::Loop(l) => Some(l.yielded_in_iter),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![false, true]);
    }
}
