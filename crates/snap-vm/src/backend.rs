//! The hook through which the VM reaches true parallelism.
//!
//! The VM itself is single-threaded and cooperative, exactly like the
//! browser thread that hosts Snap! (paper §2). When a script evaluates a
//! `parallelMap` or `mapReduce` block, the VM hands the (ringified,
//! environment-capturing) function and the input data to a
//! [`ParallelBackend`] — the seam where the paper plugs in HTML5 Web
//! Workers via Parallel.js (§4.1).
//!
//! Two implementations exist:
//! * [`SequentialBackend`] (here) — evaluates in-thread; what Snap! does
//!   when no workers are available. Installed by default.
//! * `WorkerPoolBackend` (in `snap-parallel`) — real OS threads standing
//!   in for Web Workers.

use std::sync::Arc;

use snap_ast::{compile_cached, EvalError, Ring, Value};

/// Implementation of the truly parallel blocks.
pub trait ParallelBackend: Send + Sync {
    /// `parallelMap <ring> over <list>` with `workers` workers: apply
    /// `ring` to each item and return the results in input order.
    fn parallel_map(
        &self,
        ring: Arc<Ring>,
        items: Vec<Value>,
        workers: usize,
    ) -> Result<Vec<Value>, EvalError>;

    /// `mapReduce <mapper> <reducer> over <list>`: map each item to a
    /// `[key, value]` pair, sort/group by key, reduce each group, and
    /// return the sorted `[key, reduced]` list.
    fn map_reduce(
        &self,
        mapper: Arc<Ring>,
        reducer: Arc<Ring>,
        items: Vec<Value>,
        workers: usize,
    ) -> Result<Vec<Value>, EvalError>;

    /// Human-readable backend name (shows up in diagnostics).
    fn name(&self) -> &'static str;
}

/// In-thread fallback backend: the degradation Snap! performs when Web
/// Workers are unavailable. Semantically identical to the parallel
/// backend, so tests can compare outputs.
pub struct SequentialBackend;

impl ParallelBackend for SequentialBackend {
    fn parallel_map(
        &self,
        ring: Arc<Ring>,
        items: Vec<Value>,
        _workers: usize,
    ) -> Result<Vec<Value>, EvalError> {
        // Memoized on ring identity: a parallelMap block inside a loop
        // re-verifies purity only on its first evaluation.
        let f = compile_cached(&ring)?;
        items.into_iter().map(|item| f.call1(item)).collect()
    }

    fn map_reduce(
        &self,
        mapper: Arc<Ring>,
        reducer: Arc<Ring>,
        items: Vec<Value>,
        _workers: usize,
    ) -> Result<Vec<Value>, EvalError> {
        let map_fn = compile_cached(&mapper)?;
        let reduce_fn = compile_cached(&reducer)?;
        let pairs = items
            .into_iter()
            .map(|item| map_fn.call1(item))
            .collect::<Result<Vec<_>, _>>()?;
        reduce_groups(pairs, |values| reduce_fn.call1(Value::list(values)))
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Shared shuffle + reduce logic: sort the `[key, value]` pairs by key
/// (the sort "required by the semantics of MapReduce", paper §3.4
/// footnote 6), group equal keys, and reduce each group's value list.
///
/// `reduce_one` receives the values for one key and returns the reduced
/// value. The output is a list of `[key, reduced]` pairs in key order.
pub fn reduce_groups(
    pairs: Vec<Value>,
    mut reduce_one: impl FnMut(Vec<Value>) -> Result<Value, EvalError>,
) -> Result<Vec<Value>, EvalError> {
    // Split each mapper output into (key, value).
    let mut kv: Vec<(Value, Value)> = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let list = pair.as_list().ok_or_else(|| EvalError::TypeMismatch {
            expected: "[key, value] pair from the map function",
            got: pair.to_display_string(),
        })?;
        let key = list.item(1).unwrap_or(Value::Nothing);
        let value = list.item(2).unwrap_or(Value::Nothing);
        kv.push((key, value));
    }
    // Stable sort on keys preserves mapper output order within a key.
    kv.sort_by(|a, b| a.0.snap_cmp(&b.0));

    let mut out = Vec::new();
    let mut i = 0;
    while i < kv.len() {
        let key = kv[i].0.clone();
        let mut values = Vec::new();
        while i < kv.len() && kv[i].0.loose_eq(&key) {
            values.push(kv[i].1.clone());
            i += 1;
        }
        let reduced = reduce_one(values)?;
        out.push(Value::list(vec![key, reduced]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    #[test]
    fn sequential_parallel_map_matches_paper_fig6() {
        let backend = SequentialBackend;
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
        let out = backend
            .parallel_map(ring, vec![3.into(), 7.into(), 8.into()], 4)
            .unwrap();
        assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
    }

    #[test]
    fn reduce_groups_sorts_and_groups() {
        let pairs = vec![
            Value::list(vec!["b".into(), 1.into()]),
            Value::list(vec!["a".into(), 2.into()]),
            Value::list(vec!["b".into(), 3.into()]),
        ];
        let out = reduce_groups(pairs, |values| {
            Ok(Value::Number(
                values.iter().map(Value::to_number).sum::<f64>(),
            ))
        })
        .unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec!["a".into(), 2.into()]),
                Value::list(vec!["b".into(), 4.into()]),
            ]
        );
    }

    #[test]
    fn reduce_groups_rejects_non_pairs() {
        let err = reduce_groups(vec![Value::Number(3.0)], |_| Ok(Value::Nothing));
        assert!(err.is_err());
    }

    #[test]
    fn sequential_map_reduce_word_count_shape() {
        // mapper: word -> [word, 1]; reducer: sum of values
        let backend = SequentialBackend;
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let words: Vec<Value> = ["the", "cat", "the"].iter().map(|&w| w.into()).collect();
        let out = backend.map_reduce(mapper, reducer, words, 4).unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec!["cat".into(), 1.into()]),
                Value::list(vec!["the".into(), 2.into()]),
            ]
        );
    }
}
