//! Runtime errors.
//!
//! Snap! reports script errors as a red halo around the offending block
//! and keeps the rest of the project running. The VM does the same: a
//! [`VmError`] kills only the process that raised it and is recorded in
//! the world's error log.

use std::fmt;

use snap_ast::EvalError;

/// An error raised by a running script.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// An expression failed to evaluate.
    Eval(EvalError),
    /// `create a clone of <name>` named a sprite that doesn't exist.
    UnknownSprite(String),
    /// A block that only makes sense on a sprite ran on the stage.
    StageCannot(&'static str),
    /// A `report` block ran outside a custom reporter or reporter ring.
    ReportOutsideReporter,
    /// A custom reporter finished without reporting.
    NoReport(String),
    /// The process exceeded the configured recursion depth.
    TooMuchRecursion,
    /// The parallel backend failed.
    Backend(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Eval(e) => e.fmt(f),
            VmError::UnknownSprite(name) => write!(f, "no sprite named '{name}'"),
            VmError::StageCannot(what) => write!(f, "the stage cannot {what}"),
            VmError::ReportOutsideReporter => {
                write!(f, "'report' can only run inside a reporter")
            }
            VmError::NoReport(name) => {
                write!(f, "custom reporter '{name}' finished without reporting")
            }
            VmError::TooMuchRecursion => write!(f, "too much recursion"),
            VmError::Backend(msg) => write!(f, "parallel backend error: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<EvalError> for VmError {
    fn from(e: EvalError) -> Self {
        VmError::Eval(e)
    }
}
