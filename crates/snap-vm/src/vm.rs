//! The thread manager: a cooperative, time-sliced, round-robin scheduler.
//!
//! "Because JavaScript is single-threaded, the illusion of parallelism in
//! Snap! is achieved through multi-tasking … executing all active
//! processes one at a time in an interleaved fashion with only a single
//! thread of control" (paper §2). [`Vm::step_frame`] is one pass of that
//! interleaving: every runnable process executes until it reaches a
//! *yield point* (a `wait`, a loop bottom, an unsatisfied `wait until`/
//! join) or exhausts its statement budget, then the global timestep
//! advances.
//!
//! ## Timing model
//!
//! One frame = one *timestep* (the unit the concession-stand example's
//! timer displays). `wait n` resumes n timesteps later and **absorbs**
//! the enclosing loop's bottom yield (the process is already at a frame
//! boundary); outer loops still pay their bottom yield. `warp` suppresses
//! loop-bottom yields entirely. An optional [`Interference`] model steals
//! whole frames, reproducing the "other tasks that also execute in the
//! browser" the paper blames for the sequential concession stand taking
//! 12 timesteps instead of the expected 9 (paper §3.3, footnote 5).

use std::sync::Arc;

use snap_ast::{
    BlockKind, EvalError, Expr, HatBlock, Project, Ring, RingBody, Stmt, StopKind, Value,
};

use crate::error::VmError;
use crate::eval::{round_robin_assign, EvalCtx};
use crate::process::{LoopKind, LoopTask, Pid, Process, ScopeStack, Task};
use crate::world::{SpriteId, World};

/// Deterministic model of "other browser tasks": every frame where
/// `timestep % period == phase` is consumed by the interfering task and
/// no user process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interference {
    /// Steal one frame out of every `period`.
    pub period: u64,
    /// Which residue class is stolen.
    pub phase: u64,
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Maximum statements a process executes per frame before it is
    /// forcibly descheduled (the *time slice*).
    pub slice_ops: u32,
    /// Frame budget for [`Vm::run_until_idle`].
    pub max_frames: u64,
    /// Optional frame-stealing interference model.
    pub interference: Option<Interference>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            slice_ops: 4096,
            max_frames: 1_000_000,
            interference: None,
        }
    }
}

/// Did the statement end the process's time slice?
enum Flow {
    /// Keep executing in this frame.
    Continue,
    /// Yield: the process resumes next frame (or when its sleep ends).
    EndFrame,
}

/// A running project: world + scheduler.
pub struct Vm {
    /// The world the processes act on.
    pub world: World,
    /// Scheduler configuration.
    pub config: VmConfig,
    procs: Vec<Option<Process>>,
    next_pid: Pid,
    timestep: u64,
    stop_requested: bool,
}

impl Vm {
    /// Load a project (no scripts started yet — press the green flag).
    pub fn new(project: Project) -> Vm {
        Vm::with_config(project, VmConfig::default())
    }

    /// Load a project with explicit scheduler configuration.
    pub fn with_config(project: Project, config: VmConfig) -> Vm {
        Vm {
            world: World::new(Arc::new(project)),
            config,
            procs: Vec::new(),
            next_pid: 1,
            timestep: 0,
            stop_requested: false,
        }
    }

    /// Current global timestep.
    pub fn timestep(&self) -> u64 {
        self.timestep
    }

    /// The stage timer, in timesteps since the last `reset timer`.
    pub fn timer(&self) -> u64 {
        self.timestep.saturating_sub(self.world.timer_reset_at)
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.iter().flatten().filter(|p| !p.finished).count()
    }

    // -----------------------------------------------------------------
    // events
    // -----------------------------------------------------------------

    /// Press the green flag: stop everything, then start every
    /// `when green flag clicked` script.
    pub fn green_flag(&mut self) {
        self.procs.clear();
        self.spawn_hats(|hat| matches!(hat, HatBlock::GreenFlag));
    }

    /// Press a key: start every matching `when <key> key pressed` script.
    pub fn key_press(&mut self, key: &str) {
        self.spawn_hats(|hat| matches!(hat, HatBlock::KeyPressed(k) if k == key));
    }

    /// Broadcast a message from outside the VM.
    pub fn broadcast_message(&mut self, message: &str) -> Vec<Pid> {
        self.spawn_message_hats(message)
    }

    /// Start an ad-hoc script on a sprite (by name; `None` = the stage).
    /// This is how embedding code injects programs, standing in for
    /// clicking a script in the editor.
    pub fn spawn_script(&mut self, sprite: Option<&str>, body: Vec<Stmt>) -> Result<Pid, VmError> {
        let sprite_id = match sprite {
            None => 0,
            Some(name) => self
                .world
                .sprite_by_name(name)
                .ok_or_else(|| VmError::UnknownSprite(name.to_owned()))?,
        };
        Ok(self.spawn_process(sprite_id, Arc::new(body), ScopeStack::new()))
    }

    /// Evaluate one expression in the context of a sprite (by name;
    /// `None` = the stage) — the analogue of clicking a reporter block.
    pub fn eval_expr(&mut self, sprite: Option<&str>, expr: &Expr) -> Result<Value, VmError> {
        let sprite_id = match sprite {
            None => 0,
            Some(name) => self
                .world
                .sprite_by_name(name)
                .ok_or_else(|| VmError::UnknownSprite(name.to_owned()))?,
        };
        let mut scopes = ScopeStack::new();
        EvalCtx::new(&mut self.world, sprite_id, &mut scopes, self.timestep).eval(expr)
    }

    fn spawn_hats(&mut self, matches: impl Fn(&HatBlock) -> bool) -> Vec<Pid> {
        let matches = &matches;
        let mut pids = Vec::new();
        // Stage scripts.
        let stage_bodies: Vec<Arc<Vec<Stmt>>> = self
            .world
            .project
            .stage_scripts
            .iter()
            .filter(|s| matches(&s.hat))
            .map(|s| Arc::new(s.body.clone()))
            .collect();
        for body in stage_bodies {
            pids.push(self.spawn_process(0, body, ScopeStack::new()));
        }
        // Sprite scripts — every live instance (clones respond to events
        // too, as in Snap!).
        let targets: Vec<(SpriteId, Arc<Vec<Stmt>>)> = self
            .world
            .sprites
            .iter()
            .filter(|s| s.alive && !s.is_stage)
            .flat_map(|s| {
                let def = s.def.clone();
                let id = s.id;
                def.into_iter().flat_map(move |def| {
                    def.scripts
                        .iter()
                        .filter(|sc| matches(&sc.hat))
                        .map(|sc| (id, Arc::new(sc.body.clone())))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (sprite, body) in targets {
            pids.push(self.spawn_process(sprite, body, ScopeStack::new()));
        }
        pids
    }

    fn spawn_message_hats(&mut self, message: &str) -> Vec<Pid> {
        self.spawn_hats(
            |hat| matches!(hat, HatBlock::MessageReceived(m) if m.eq_ignore_ascii_case(message)),
        )
    }

    fn spawn_clone_start_hats(&mut self, clone: SpriteId) -> Vec<Pid> {
        let bodies: Vec<Arc<Vec<Stmt>>> = self.world.sprites[clone]
            .def
            .iter()
            .flat_map(|def| {
                def.scripts
                    .iter()
                    .filter(|s| matches!(s.hat, HatBlock::StartAsClone))
                    .map(|s| Arc::new(s.body.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        bodies
            .into_iter()
            .map(|body| self.spawn_process(clone, body, ScopeStack::new()))
            .collect()
    }

    fn spawn_process(&mut self, sprite: SpriteId, body: Arc<Vec<Stmt>>, scopes: ScopeStack) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        snap_trace::well_known::VM_PROCESSES_SPAWNED.incr();
        self.procs
            .push(Some(Process::with_scopes(pid, sprite, body, scopes)));
        pid
    }

    // -----------------------------------------------------------------
    // scheduling
    // -----------------------------------------------------------------

    /// Is this frame stolen by the interference model?
    fn frame_stolen(&self) -> bool {
        match self.config.interference {
            Some(i) if i.period > 0 => self.timestep % i.period == i.phase,
            _ => false,
        }
    }

    /// Run one frame: every runnable process gets a time slice, then the
    /// timestep advances. Returns `true` while any process remains.
    pub fn step_frame(&mut self) -> bool {
        snap_trace::well_known::VM_FRAMES.incr();
        // Frame duration feeds the windowed `vm.frame_ns` histogram, so a
        // live /metrics scrape shows frame-time percentiles even when span
        // recording is off.
        let frame_started = std::time::Instant::now();
        // One span per frame makes timestep-granular runs (the
        // concession stand's 12-vs-3) readable on a trace timeline.
        let _span = snap_trace::span!("vm.frame", "timestep" => self.timestep);
        let stolen = self.frame_stolen();
        if stolen {
            snap_trace::well_known::VM_FRAMES_STOLEN.incr();
        }
        if !stolen {
            let mut i = 0;
            while i < self.procs.len() {
                let Some(mut p) = self.procs[i].take() else {
                    i += 1;
                    continue;
                };
                if p.sleep_until > self.timestep {
                    self.procs[i] = Some(p);
                    i += 1;
                    continue;
                }
                self.run_slice(&mut p);
                if !p.finished {
                    self.procs[i] = Some(p);
                }
                if self.stop_requested {
                    break;
                }
                i += 1;
            }
            if self.stop_requested {
                self.procs.clear();
                self.stop_requested = false;
            }
            self.procs.retain(Option::is_some);
        }
        self.timestep += 1;
        snap_trace::well_known::VM_LIVE_PROCESSES.set(self.procs.len() as i64);
        snap_trace::well_known::VM_FRAME_NS.record(frame_started.elapsed().as_nanos() as u64);
        !self.procs.is_empty()
    }

    /// Run frames until every process finishes or the frame budget is
    /// exhausted. Returns the number of frames executed.
    pub fn run_until_idle(&mut self) -> u64 {
        let procs = self.process_count();
        let _span = snap_trace::span!("vm.run_until_idle", procs);
        let mut frames = 0;
        while frames < self.config.max_frames {
            frames += 1;
            if !self.step_frame() {
                break;
            }
        }
        frames
    }

    /// Run exactly `n` frames (for projects with `forever` scripts).
    pub fn run_frames(&mut self, n: u64) {
        for _ in 0..n {
            self.step_frame();
        }
    }

    /// Is this process id still alive?
    fn pid_alive(&self, pid: Pid) -> bool {
        self.procs
            .iter()
            .flatten()
            .any(|p| p.pid == pid && !p.finished)
    }

    /// Kill every process belonging to a sprite (deleted clone).
    fn kill_sprite_procs(&mut self, sprite: SpriteId) {
        for slot in &mut self.procs {
            if slot.as_ref().is_some_and(|p| p.sprite == sprite) {
                *slot = None;
            }
        }
    }

    /// Execute one time slice of a process.
    fn run_slice(&mut self, p: &mut Process) {
        let mut ops = self.config.slice_ops;
        loop {
            if ops == 0 {
                return; // slice exhausted: forcible deschedule
            }
            // Inspect (and update) the top task, extracting what the
            // action needs so the borrow ends before we act.
            enum Top {
                Done,
                RunStmt(Arc<Vec<Stmt>>, usize),
                LoopBottomYield,
                LoopNext,
                CheckWaitUntil(Expr),
                CheckJoin(Vec<Pid>, Vec<SpriteId>),
                PopBoundary,
                PopWarp,
                PopClearSay,
            }
            let top = match p.tasks.last_mut() {
                None => Top::Done,
                Some(Task::Seq { stmts, idx }) => {
                    if *idx >= stmts.len() {
                        p.tasks.pop();
                        continue;
                    }
                    let i = *idx;
                    *idx += 1;
                    Top::RunStmt(stmts.clone(), i)
                }
                Some(Task::Loop(lt)) => {
                    if lt.iter_active {
                        lt.iter_active = false;
                        if !lt.yielded_in_iter && p.warp_depth == 0 {
                            Top::LoopBottomYield
                        } else {
                            Top::LoopNext
                        }
                    } else {
                        Top::LoopNext
                    }
                }
                Some(Task::WaitUntil { cond }) => Top::CheckWaitUntil(cond.clone()),
                Some(Task::Join {
                    pids,
                    cleanup_clones,
                }) => Top::CheckJoin(pids.clone(), cleanup_clones.clone()),
                Some(Task::CallBoundary) => Top::PopBoundary,
                Some(Task::ExitWarp) => Top::PopWarp,
                Some(Task::ClearSay) => Top::PopClearSay,
            };

            match top {
                Top::Done => {
                    p.finished = true;
                    return;
                }
                Top::RunStmt(stmts, i) => {
                    ops -= 1;
                    match self.exec_stmt(p, &stmts[i]) {
                        Ok(Flow::Continue) => {}
                        Ok(Flow::EndFrame) => return,
                        Err(e) => {
                            let name = self.world.sprites[p.sprite].name.clone();
                            self.world.errors.push((name, e));
                            p.stop_script();
                            return;
                        }
                    }
                }
                Top::LoopBottomYield => return, // iter_active already cleared
                Top::LoopNext => {
                    ops -= 1;
                    match self.loop_next(p) {
                        Ok(()) => {}
                        Err(e) => {
                            let name = self.world.sprites[p.sprite].name.clone();
                            self.world.errors.push((name, e));
                            p.stop_script();
                            return;
                        }
                    }
                }
                Top::CheckWaitUntil(cond) => {
                    let satisfied = self.eval_in(p, &cond).map(|v| v.to_bool());
                    match satisfied {
                        Ok(true) => {
                            p.tasks.pop();
                        }
                        Ok(false) => {
                            p.mark_innermost_loop_yielded();
                            return;
                        }
                        Err(e) => {
                            let name = self.world.sprites[p.sprite].name.clone();
                            self.world.errors.push((name, e));
                            p.stop_script();
                            return;
                        }
                    }
                }
                Top::CheckJoin(pids, cleanup) => {
                    if pids.iter().any(|&pid| self.pid_alive(pid)) {
                        p.mark_innermost_loop_yielded();
                        return;
                    }
                    for clone in cleanup {
                        self.world.delete_clone(clone);
                        self.kill_sprite_procs(clone);
                    }
                    p.tasks.pop();
                }
                Top::PopBoundary => {
                    p.tasks.pop();
                    p.scopes.pop();
                }
                Top::PopWarp => {
                    p.tasks.pop();
                    p.warp_depth = p.warp_depth.saturating_sub(1);
                }
                Top::PopClearSay => {
                    self.world.sprites[p.sprite].saying = None;
                    p.tasks.pop();
                }
            }
        }
    }

    /// Start the next loop iteration (or finish the loop).
    fn loop_next(&mut self, p: &mut Process) -> Result<(), VmError> {
        enum Decision {
            Push(Arc<Vec<Stmt>>),
            PushBind(Arc<Vec<Stmt>>, String, Value),
            NeedCond(Expr, Arc<Vec<Stmt>>),
            Pop,
        }
        let decision = {
            let Some(Task::Loop(lt)) = p.tasks.last_mut() else {
                unreachable!("loop_next called without a loop on top");
            };
            lt.yielded_in_iter = false;
            match &mut lt.kind {
                LoopKind::Repeat { remaining } => {
                    if *remaining > 0 {
                        *remaining -= 1;
                        Decision::Push(lt.body.clone())
                    } else {
                        Decision::Pop
                    }
                }
                LoopKind::Forever => Decision::Push(lt.body.clone()),
                LoopKind::Until { cond } => Decision::NeedCond(cond.clone(), lt.body.clone()),
                LoopKind::For {
                    var,
                    next,
                    end,
                    step,
                } => {
                    let more = if *step > 0.0 {
                        *next <= *end
                    } else {
                        *next >= *end
                    };
                    if more {
                        let v = *next;
                        *next += *step;
                        Decision::PushBind(lt.body.clone(), var.clone(), Value::Number(v))
                    } else {
                        Decision::Pop
                    }
                }
                LoopKind::ForEach { var, items } => match items.pop_front() {
                    Some(item) => Decision::PushBind(lt.body.clone(), var.clone(), item),
                    None => Decision::Pop,
                },
            }
        };
        match decision {
            Decision::Push(body) => self.begin_iteration(p, body),
            Decision::PushBind(body, var, value) => {
                p.scopes.declare(&var, value);
                self.begin_iteration(p, body);
            }
            Decision::NeedCond(cond, body) => {
                if self.eval_in(p, &cond)?.to_bool() {
                    p.tasks.pop();
                    p.scopes.pop();
                } else {
                    self.begin_iteration(p, body);
                }
            }
            Decision::Pop => {
                p.tasks.pop();
                p.scopes.pop();
            }
        }
        Ok(())
    }

    fn begin_iteration(&mut self, p: &mut Process, body: Arc<Vec<Stmt>>) {
        if let Some(Task::Loop(lt)) = p.tasks.last_mut() {
            lt.iter_active = true;
        }
        p.tasks.push(Task::Seq {
            stmts: body,
            idx: 0,
        });
    }

    /// Evaluate an expression in a process's context.
    fn eval_in(&mut self, p: &mut Process, expr: &Expr) -> Result<Value, VmError> {
        EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep).eval(expr)
    }

    /// Push a loop task (owning one fresh scope frame).
    fn push_loop(&mut self, p: &mut Process, kind: LoopKind, body: &[Stmt]) {
        p.scopes.push(Vec::new());
        p.tasks.push(Task::Loop(LoopTask {
            kind,
            body: Arc::new(body.to_vec()),
            iter_active: false,
            yielded_in_iter: false,
        }));
    }

    /// Execute one statement. Returns whether the slice continues.
    fn exec_stmt(&mut self, p: &mut Process, stmt: &Stmt) -> Result<Flow, VmError> {
        match stmt {
            Stmt::Say(e) | Stmt::Think(e) => {
                let text = self.eval_in(p, e)?.to_display_string();
                self.world.say(self.timestep, p.sprite, text);
                Ok(Flow::Continue)
            }
            Stmt::SayFor(e, duration) => {
                let text = self.eval_in(p, e)?.to_display_string();
                self.world.say(self.timestep, p.sprite, text);
                let n = self.eval_in(p, duration)?.to_number().max(0.0) as u64;
                p.tasks.push(Task::ClearSay);
                p.sleep_until = self.timestep + n.max(1);
                p.mark_innermost_loop_yielded();
                Ok(Flow::EndFrame)
            }
            Stmt::SetVar(name, e) => {
                let v = self.eval_in(p, e)?;
                EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep)
                    .assign(name, v);
                Ok(Flow::Continue)
            }
            Stmt::ChangeVar(name, e) => {
                let delta = self.eval_in(p, e)?.to_number();
                let mut ctx = EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep);
                let current = ctx.lookup(name).map(|v| v.to_number()).unwrap_or(0.0);
                ctx.assign(name, Value::Number(current + delta));
                Ok(Flow::Continue)
            }
            Stmt::DeclareLocals(names) => {
                for name in names {
                    p.scopes.declare(name, Value::Nothing);
                }
                Ok(Flow::Continue)
            }
            Stmt::AddToList { item, list } => {
                let v = self.eval_in(p, item)?;
                self.eval_list_in(p, list)?.add(v);
                Ok(Flow::Continue)
            }
            Stmt::DeleteOfList { index, list } => {
                let i = self.eval_in(p, index)?.to_number() as usize;
                self.eval_list_in(p, list)?.delete(i);
                Ok(Flow::Continue)
            }
            Stmt::InsertAtList { item, index, list } => {
                let v = self.eval_in(p, item)?;
                let i = self.eval_in(p, index)?.to_number() as usize;
                self.eval_list_in(p, list)?.insert(i, v);
                Ok(Flow::Continue)
            }
            Stmt::ReplaceItemOfList { index, list, item } => {
                let i = self.eval_in(p, index)?.to_number() as usize;
                let v = self.eval_in(p, item)?;
                self.eval_list_in(p, list)?.set_item(i, v);
                Ok(Flow::Continue)
            }
            Stmt::If(cond, then) => {
                if self.eval_in(p, cond)?.to_bool() {
                    p.tasks.push(Task::Seq {
                        stmts: Arc::new(then.clone()),
                        idx: 0,
                    });
                }
                Ok(Flow::Continue)
            }
            Stmt::IfElse(cond, then, otherwise) => {
                let branch = if self.eval_in(p, cond)?.to_bool() {
                    then
                } else {
                    otherwise
                };
                p.tasks.push(Task::Seq {
                    stmts: Arc::new(branch.clone()),
                    idx: 0,
                });
                Ok(Flow::Continue)
            }
            Stmt::Repeat(times, body) => {
                let n = self.eval_in(p, times)?.to_number().max(0.0) as u64;
                self.push_loop(p, LoopKind::Repeat { remaining: n }, body);
                Ok(Flow::Continue)
            }
            Stmt::Forever(body) => {
                self.push_loop(p, LoopKind::Forever, body);
                Ok(Flow::Continue)
            }
            Stmt::RepeatUntil(cond, body) => {
                self.push_loop(p, LoopKind::Until { cond: cond.clone() }, body);
                Ok(Flow::Continue)
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let from = self.eval_in(p, from)?.to_number();
                let to = self.eval_in(p, to)?.to_number();
                let step = if from <= to { 1.0 } else { -1.0 };
                self.push_loop(
                    p,
                    LoopKind::For {
                        var: var.clone(),
                        next: from,
                        end: to,
                        step,
                    },
                    body,
                );
                Ok(Flow::Continue)
            }
            Stmt::ForEach { var, list, body } => {
                let items = self.eval_list_in(p, list)?.to_vec();
                self.push_loop(
                    p,
                    LoopKind::ForEach {
                        var: var.clone(),
                        items: items.into(),
                    },
                    body,
                );
                Ok(Flow::Continue)
            }
            Stmt::ParallelForEach {
                var,
                list,
                body,
                parallelism,
                parallel,
            } => {
                if !parallel {
                    // Sequential mode: a plain forEach (paper Fig. 8b).
                    let items = self.eval_list_in(p, list)?.to_vec();
                    self.push_loop(
                        p,
                        LoopKind::ForEach {
                            var: var.clone(),
                            items: items.into(),
                        },
                        body,
                    );
                    return Ok(Flow::Continue);
                }
                self.exec_parallel_for_each(p, var, list, body, parallelism.as_ref())
            }
            Stmt::Wait(e) => {
                let n = self.eval_in(p, e)?.to_number().max(0.0) as u64;
                p.sleep_until = self.timestep + n;
                p.mark_innermost_loop_yielded();
                Ok(Flow::EndFrame)
            }
            Stmt::WaitUntil(cond) => {
                p.tasks.push(Task::WaitUntil { cond: cond.clone() });
                Ok(Flow::Continue)
            }
            Stmt::Broadcast(e) => {
                let message = self.eval_in(p, e)?.to_display_string();
                self.spawn_message_hats(&message);
                Ok(Flow::Continue)
            }
            Stmt::BroadcastAndWait(e) => {
                let message = self.eval_in(p, e)?.to_display_string();
                let pids = self.spawn_message_hats(&message);
                p.tasks.push(Task::Join {
                    pids,
                    cleanup_clones: Vec::new(),
                });
                Ok(Flow::Continue)
            }
            Stmt::CreateCloneOf(e) => {
                let target = self.eval_in(p, e)?;
                let source = self.world.resolve_clone_target(p.sprite, &target)?;
                let clone = self.world.clone_sprite(source)?;
                self.spawn_clone_start_hats(clone);
                Ok(Flow::Continue)
            }
            Stmt::DeleteThisClone => {
                if self.world.sprites[p.sprite].is_clone {
                    self.world.delete_clone(p.sprite);
                    self.kill_sprite_procs(p.sprite);
                    p.stop_script();
                    return Ok(Flow::EndFrame);
                }
                Ok(Flow::Continue)
            }
            Stmt::RunRing(ring_expr, args) => {
                let (ring, values) = self.eval_ring_call(p, ring_expr, args)?;
                match &ring.body {
                    RingBody::Command(body) => {
                        let frame = Self::ring_frame(&ring, &values)?;
                        p.scopes.push(frame);
                        p.tasks.push(Task::CallBoundary);
                        p.tasks.push(Task::Seq {
                            stmts: Arc::new(body.clone()),
                            idx: 0,
                        });
                        Ok(Flow::Continue)
                    }
                    _ => {
                        // Running a reporter ring evaluates and discards.
                        let mut ctx =
                            EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep);
                        ctx.apply_ring(&ring, &values)?;
                        Ok(Flow::Continue)
                    }
                }
            }
            Stmt::LaunchRing(ring_expr, args) => {
                let (ring, values) = self.eval_ring_call(p, ring_expr, args)?;
                match &ring.body {
                    RingBody::Command(body) => {
                        let frame = Self::ring_frame(&ring, &values)?;
                        let mut scopes = ScopeStack::new();
                        scopes.push(frame);
                        let pid = self.next_pid;
                        self.next_pid += 1;
                        self.procs.push(Some(Process::with_scopes(
                            pid,
                            p.sprite,
                            Arc::new(body.clone()),
                            scopes,
                        )));
                        Ok(Flow::Continue)
                    }
                    _ => Err(EvalError::TypeMismatch {
                        expected: "command ring",
                        got: "reporter ring".into(),
                    }
                    .into()),
                }
            }
            Stmt::CallCustom(name, args) => {
                let block = self
                    .world
                    .find_custom_block(p.sprite, name)
                    .ok_or_else(|| EvalError::UnknownCustomBlock(name.clone()))?;
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval_in(p, arg)?);
                }
                match block.kind {
                    BlockKind::Command => {
                        if block.params.len() != values.len() {
                            return Err(EvalError::ArityMismatch {
                                expected: block.params.len(),
                                got: values.len(),
                            }
                            .into());
                        }
                        let frame: Vec<(String, Value)> =
                            block.params.iter().cloned().zip(values).collect();
                        p.scopes.push(frame);
                        p.tasks.push(Task::CallBoundary);
                        p.tasks.push(Task::Seq {
                            stmts: Arc::new(block.body.clone()),
                            idx: 0,
                        });
                        Ok(Flow::Continue)
                    }
                    _ => {
                        let mut ctx =
                            EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep);
                        ctx.call_custom_reporter(name, values)?;
                        Ok(Flow::Continue)
                    }
                }
            }
            Stmt::Report(e) => {
                self.eval_in(p, e)?; // evaluated for effect; value unused in command context
                if !p.unwind_to_call_boundary() {
                    p.stop_script();
                    return Ok(Flow::EndFrame);
                }
                Ok(Flow::Continue)
            }
            Stmt::Stop(StopKind::All) => {
                self.stop_requested = true;
                p.stop_script();
                Ok(Flow::EndFrame)
            }
            Stmt::Stop(StopKind::ThisScript) => {
                p.stop_script();
                Ok(Flow::EndFrame)
            }
            Stmt::Stop(StopKind::ThisBlock) => {
                if !p.unwind_to_call_boundary() {
                    p.stop_script();
                    return Ok(Flow::EndFrame);
                }
                Ok(Flow::Continue)
            }
            Stmt::Warp(body) => {
                p.warp_depth += 1;
                p.tasks.push(Task::ExitWarp);
                p.tasks.push(Task::Seq {
                    stmts: Arc::new(body.clone()),
                    idx: 0,
                });
                Ok(Flow::Continue)
            }
            Stmt::Move(e) => {
                let steps = self.eval_in(p, e)?.to_number();
                self.require_sprite(p)?;
                self.world.sprites[p.sprite].move_steps(steps);
                Ok(Flow::Continue)
            }
            Stmt::TurnRight(e) => {
                let deg = self.eval_in(p, e)?.to_number();
                self.require_sprite(p)?;
                self.world.sprites[p.sprite].heading += deg;
                Ok(Flow::Continue)
            }
            Stmt::TurnLeft(e) => {
                let deg = self.eval_in(p, e)?.to_number();
                self.require_sprite(p)?;
                self.world.sprites[p.sprite].heading -= deg;
                Ok(Flow::Continue)
            }
            Stmt::GoToXY(x, y) => {
                let x = self.eval_in(p, x)?.to_number();
                let y = self.eval_in(p, y)?.to_number();
                self.require_sprite(p)?;
                let s = &mut self.world.sprites[p.sprite];
                s.x = x;
                s.y = y;
                Ok(Flow::Continue)
            }
            Stmt::PointInDirection(e) => {
                let deg = self.eval_in(p, e)?.to_number();
                self.require_sprite(p)?;
                self.world.sprites[p.sprite].heading = deg;
                Ok(Flow::Continue)
            }
            Stmt::Show => {
                self.world.sprites[p.sprite].visible = true;
                Ok(Flow::Continue)
            }
            Stmt::Hide => {
                self.world.sprites[p.sprite].visible = false;
                Ok(Flow::Continue)
            }
            Stmt::SwitchCostume(e) => {
                let n = self.eval_in(p, e)?.to_number().max(0.0) as usize;
                let s = &mut self.world.sprites[p.sprite];
                if !s.costumes.is_empty() {
                    s.costume = n.clamp(1, s.costumes.len());
                }
                Ok(Flow::Continue)
            }
            Stmt::NextCostume => {
                let s = &mut self.world.sprites[p.sprite];
                if !s.costumes.is_empty() {
                    s.costume = s.costume % s.costumes.len() + 1;
                }
                Ok(Flow::Continue)
            }
            Stmt::ResetTimer => {
                self.world.timer_reset_at = self.timestep;
                Ok(Flow::Continue)
            }
            Stmt::Comment(_) => Ok(Flow::Continue),
        }
    }

    fn require_sprite(&self, p: &Process) -> Result<(), VmError> {
        if self.world.sprites[p.sprite].is_stage {
            Err(VmError::StageCannot("move"))
        } else {
            Ok(())
        }
    }

    fn eval_list_in(&mut self, p: &mut Process, expr: &Expr) -> Result<snap_ast::List, VmError> {
        EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep).eval_list(expr)
    }

    fn eval_ring_call(
        &mut self,
        p: &mut Process,
        ring_expr: &Expr,
        args: &[Expr],
    ) -> Result<(Arc<Ring>, Vec<Value>), VmError> {
        let ring = EvalCtx::new(&mut self.world, p.sprite, &mut p.scopes, self.timestep)
            .eval_ring(ring_expr)?;
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(self.eval_in(p, arg)?);
        }
        Ok((ring, values))
    }

    /// Build the scope frame for entering a command ring: captured
    /// environment plus bound parameters.
    fn ring_frame(ring: &Ring, args: &[Value]) -> Result<Vec<(String, Value)>, VmError> {
        let mut frame = ring.captured.clone();
        if !ring.params.is_empty() {
            if ring.params.len() != args.len() {
                return Err(EvalError::ArityMismatch {
                    expected: ring.params.len(),
                    got: args.len(),
                }
                .into());
            }
            for (name, value) in ring.params.iter().zip(args) {
                frame.push((name.clone(), value.clone()));
            }
        }
        Ok(frame)
    }

    /// The parallel `parallelForEach`: spawn clones of the acting sprite
    /// (one per unit of parallelism, default = list length), give each a
    /// round-robin share of the items, and join (paper §3.3).
    fn exec_parallel_for_each(
        &mut self,
        p: &mut Process,
        var: &str,
        list: &Expr,
        body: &[Stmt],
        parallelism: Option<&Expr>,
    ) -> Result<Flow, VmError> {
        let items = self.eval_list_in(p, list)?.to_vec();
        if items.is_empty() {
            return Ok(Flow::Continue);
        }
        let k = match parallelism {
            Some(e) => {
                let n = self.eval_in(p, e)?.to_number();
                if n >= 1.0 {
                    (n as usize).min(items.len())
                } else {
                    items.len()
                }
            }
            None => items.len(),
        };
        let body = Arc::new(body.to_vec());
        let on_stage = self.world.sprites[p.sprite].is_stage;
        let mut pids = Vec::with_capacity(k);
        let mut clones = Vec::new();
        for chunk in round_robin_assign(items, k) {
            // Each unit of parallelism is a fresh clone of the acting
            // sprite (the paper's Pitcher clones); on the stage, plain
            // processes are used since the stage cannot be cloned.
            let sprite = if on_stage {
                p.sprite
            } else {
                let clone = self.world.clone_sprite(p.sprite)?;
                self.spawn_clone_start_hats(clone);
                clones.push(clone);
                clone
            };
            let mut scopes = p.scopes.clone();
            scopes.push(Vec::new()); // the child's loop scope
            let pid = self.next_pid;
            self.next_pid += 1;
            let mut child = Process::with_scopes(pid, sprite, Arc::new(Vec::new()), scopes);
            child.tasks = vec![Task::Loop(LoopTask {
                kind: LoopKind::ForEach {
                    var: var.to_owned(),
                    items: chunk,
                },
                body: body.clone(),
                iter_active: false,
                yielded_in_iter: false,
            })];
            self.procs.push(Some(child));
            pids.push(pid);
        }
        p.tasks.push(Task::Join {
            pids,
            cleanup_clones: clones,
        });
        Ok(Flow::Continue)
    }
}
