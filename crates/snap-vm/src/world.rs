//! The world: sprite instances, global state, and the stage.
//!
//! A [`World`] is the mutable half of a running project — everything a
//! block can observe or change. The scheduler (in [`crate::vm`]) owns the
//! processes; the world owns the data.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use snap_ast::{Project, Ring, SpriteDef, Value};

use crate::backend::{ParallelBackend, SequentialBackend};
use crate::error::VmError;

/// Identifies a sprite instance. Id 0 is always the stage.
pub type SpriteId = usize;

/// A live sprite (or the stage, which is instance 0).
#[derive(Debug, Clone)]
pub struct SpriteInstance {
    /// Instance id.
    pub id: SpriteId,
    /// The static definition this instance was built from (`None` for the
    /// stage).
    pub def: Option<Arc<SpriteDef>>,
    /// Display name. Clones share the original's name.
    pub name: String,
    /// `true` for the stage pseudo-sprite.
    pub is_stage: bool,
    /// `true` when created by `create a clone of`.
    pub is_clone: bool,
    /// The instance this was cloned from, if any.
    pub cloned_from: Option<SpriteId>,
    /// `true` until deleted (`delete this clone` / project reset).
    pub alive: bool,
    /// x position.
    pub x: f64,
    /// y position.
    pub y: f64,
    /// Heading in degrees (90 = right).
    pub heading: f64,
    /// Visibility.
    pub visible: bool,
    /// 1-based current costume number (0 = no costume).
    pub costume: usize,
    /// Costume names.
    pub costumes: Vec<String>,
    /// Current say-bubble contents, if any.
    pub saying: Option<String>,
    /// Sprite-local variables.
    pub vars: HashMap<String, Value>,
}

impl SpriteInstance {
    fn stage() -> SpriteInstance {
        SpriteInstance {
            id: 0,
            def: None,
            name: "Stage".to_owned(),
            is_stage: true,
            is_clone: false,
            cloned_from: None,
            alive: true,
            x: 0.0,
            y: 0.0,
            heading: 90.0,
            visible: true,
            costume: 0,
            costumes: Vec::new(),
            saying: None,
            vars: HashMap::new(),
        }
    }

    fn from_def(id: SpriteId, def: Arc<SpriteDef>) -> SpriteInstance {
        let vars = def
            .variables
            .iter()
            .map(|(name, value)| (name.clone(), value.to_value()))
            .collect();
        SpriteInstance {
            id,
            name: def.name.clone(),
            is_stage: false,
            is_clone: false,
            cloned_from: None,
            alive: true,
            x: def.x,
            y: def.y,
            heading: def.heading,
            visible: def.visible,
            costume: if def.costumes.is_empty() { 0 } else { 1 },
            costumes: def.costumes.clone(),
            saying: None,
            vars,
            def: Some(def),
        }
    }

    /// Move `steps` in the direction of the current heading (Snap!
    /// convention: heading 90 = +x, 0 = +y).
    pub fn move_steps(&mut self, steps: f64) {
        let radians = (90.0 - self.heading).to_radians();
        self.x += steps * radians.cos();
        self.y += steps * radians.sin();
    }
}

/// One `say` event, as recorded in the world's output log.
#[derive(Debug, Clone, PartialEq)]
pub struct SayEvent {
    /// Timestep at which the bubble appeared.
    pub timestep: u64,
    /// Name of the sprite that spoke.
    pub sprite: String,
    /// The text.
    pub text: String,
}

/// The mutable state of a running project.
pub struct World {
    /// The project being run (shared, immutable).
    pub project: Arc<Project>,
    /// Live sprite instances; index = [`SpriteId`]. Instance 0 is the
    /// stage. Deleted clones stay in the vector with `alive = false` so
    /// ids remain stable.
    pub sprites: Vec<SpriteInstance>,
    /// Global variables.
    pub globals: HashMap<String, Value>,
    /// Everything any sprite has said, in order — the headless analogue
    /// of watching the stage.
    pub say_log: Vec<SayEvent>,
    /// Errors raised by processes (each also killed its process).
    pub errors: Vec<(String, VmError)>,
    /// Timestep at which the timer was last reset.
    pub timer_reset_at: u64,
    /// Deterministic RNG for `pick random`.
    pub rng: StdRng,
    /// Implementation of `parallelMap`/`mapReduce`. Defaults to the
    /// in-thread sequential backend; `snap-parallel` installs the real
    /// worker-pool one.
    pub backend: Arc<dyn ParallelBackend>,
    /// Worker count used when a `parallelMap` has no explicit input —
    /// the paper's `navigator.hardwareConcurrency || 4`.
    pub default_workers: usize,
    /// Variable names with a stage watcher (shown by the renderer, like
    /// the checked-checkbox watchers in the paper's screenshots).
    pub watched: Vec<String>,
}

impl World {
    /// Instantiate a project: the stage plus one instance per sprite.
    pub fn new(project: Arc<Project>) -> World {
        let mut sprites = vec![SpriteInstance::stage()];
        for def in &project.sprites {
            let id = sprites.len();
            sprites.push(SpriteInstance::from_def(id, Arc::new(def.clone())));
        }
        let globals = project
            .globals
            .iter()
            .map(|(name, value)| (name.clone(), value.to_value()))
            .collect();
        World {
            project,
            sprites,
            globals,
            say_log: Vec::new(),
            errors: Vec::new(),
            timer_reset_at: 0,
            rng: StdRng::seed_from_u64(0x5EED),
            backend: Arc::new(SequentialBackend),
            default_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            watched: Vec::new(),
        }
    }

    /// Show a stage watcher for a variable (global, or any sprite's).
    pub fn watch(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.watched.contains(&name) {
            self.watched.push(name);
        }
    }

    /// The current value a watcher displays.
    pub fn watched_value(&self, name: &str) -> Option<Value> {
        if let Some(v) = self.globals.get(name) {
            return Some(v.clone());
        }
        self.sprites.iter().find_map(|s| s.vars.get(name).cloned())
    }

    /// Install a parallel backend (done by `snap-parallel`).
    pub fn set_backend(&mut self, backend: Arc<dyn ParallelBackend>) {
        self.backend = backend;
    }

    /// Reseed the deterministic RNG.
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The first live sprite instance with this name (original instances
    /// take priority over clones because they were created first).
    pub fn sprite_by_name(&self, name: &str) -> Option<SpriteId> {
        self.sprites
            .iter()
            .find(|s| s.alive && s.name == name)
            .map(|s| s.id)
    }

    /// Create a clone of the given instance. Returns the new instance's
    /// id. The caller is responsible for starting its `StartAsClone`
    /// scripts.
    pub fn clone_sprite(&mut self, source: SpriteId) -> Result<SpriteId, VmError> {
        if self.sprites[source].is_stage {
            return Err(VmError::StageCannot("be cloned"));
        }
        let id = self.sprites.len();
        let mut clone = self.sprites[source].clone();
        clone.id = id;
        clone.is_clone = true;
        clone.cloned_from = Some(source);
        clone.saying = None;
        // Sprite-local variables are copied by value, but lists keep
        // reference semantics (same as Snap!, where clones share list
        // contents unless reassigned).
        self.sprites.push(clone);
        Ok(id)
    }

    /// Mark a clone as deleted. Original sprites cannot be deleted.
    pub fn delete_clone(&mut self, id: SpriteId) {
        if self.sprites[id].is_clone {
            self.sprites[id].alive = false;
        }
    }

    /// Record a say event.
    pub fn say(&mut self, timestep: u64, sprite: SpriteId, text: String) {
        self.sprites[sprite].saying = Some(text.clone());
        self.say_log.push(SayEvent {
            timestep,
            sprite: self.sprites[sprite].name.clone(),
            text,
        });
    }

    /// All say-log texts, for assertions in tests.
    pub fn said(&self) -> Vec<&str> {
        self.say_log.iter().map(|e| e.text.as_str()).collect()
    }

    /// Look up a global variable.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Number of live clones (excluding originals).
    pub fn live_clone_count(&self) -> usize {
        self.sprites
            .iter()
            .filter(|s| s.alive && s.is_clone)
            .count()
    }

    /// Find a custom block definition visible to `sprite`: sprite-local
    /// blocks shadow global ones.
    pub fn find_custom_block(&self, sprite: SpriteId, name: &str) -> Option<snap_ast::CustomBlock> {
        if let Some(def) = &self.sprites[sprite].def {
            if let Some(b) = def.custom_blocks.iter().find(|b| b.name == name) {
                return Some(b.clone());
            }
        }
        self.project
            .global_blocks
            .iter()
            .find(|b| b.name == name)
            .cloned()
    }

    /// Resolve a `create a clone of <target>` input: `"myself"` (or an
    /// empty string) means the acting sprite.
    pub fn resolve_clone_target(
        &self,
        acting: SpriteId,
        target: &Value,
    ) -> Result<SpriteId, VmError> {
        let name = target.to_display_string();
        if name.is_empty() || name.eq_ignore_ascii_case("myself") {
            return Ok(acting);
        }
        self.sprite_by_name(&name)
            .ok_or(VmError::UnknownSprite(name))
    }
}

/// The ring + captured environment handed to a parallel backend.
#[derive(Clone)]
pub struct RingValue(pub Arc<Ring>);

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::Constant;

    fn world_with_sprite() -> World {
        let project = Project::new("t")
            .with_global("score", Constant::Number(0.0))
            .with_sprite(SpriteDef::new("Cat").with_variable("lives", Constant::Number(9.0)));
        World::new(Arc::new(project))
    }

    #[test]
    fn stage_is_instance_zero() {
        let w = world_with_sprite();
        assert!(w.sprites[0].is_stage);
        assert_eq!(w.sprites[1].name, "Cat");
    }

    #[test]
    fn globals_and_sprite_vars_initialized() {
        let w = world_with_sprite();
        assert_eq!(w.global("score"), Some(&Value::Number(0.0)));
        assert_eq!(w.sprites[1].vars.get("lives"), Some(&Value::Number(9.0)));
    }

    #[test]
    fn cloning_copies_state_and_marks_clone() {
        let mut w = world_with_sprite();
        w.sprites[1].x = 42.0;
        let id = w.clone_sprite(1).unwrap();
        assert_eq!(w.sprites[id].x, 42.0);
        assert!(w.sprites[id].is_clone);
        assert_eq!(w.sprites[id].cloned_from, Some(1));
        assert_eq!(w.live_clone_count(), 1);
    }

    #[test]
    fn stage_cannot_be_cloned() {
        let mut w = world_with_sprite();
        assert_eq!(w.clone_sprite(0), Err(VmError::StageCannot("be cloned")));
    }

    #[test]
    fn deleting_a_clone_keeps_ids_stable() {
        let mut w = world_with_sprite();
        let id = w.clone_sprite(1).unwrap();
        w.delete_clone(id);
        assert!(!w.sprites[id].alive);
        assert_eq!(w.live_clone_count(), 0);
        // Originals can't be deleted.
        w.delete_clone(1);
        assert!(w.sprites[1].alive);
    }

    #[test]
    fn move_steps_follows_snap_heading_convention() {
        let mut s = SpriteInstance::stage();
        s.heading = 90.0; // right
        s.move_steps(10.0);
        assert!((s.x - 10.0).abs() < 1e-9 && s.y.abs() < 1e-9);
        s.heading = 0.0; // up
        s.move_steps(10.0);
        assert!((s.y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_clone_target_handles_myself() {
        let w = world_with_sprite();
        assert_eq!(
            w.resolve_clone_target(1, &Value::text("myself")).unwrap(),
            1
        );
        assert_eq!(w.resolve_clone_target(1, &Value::text("Cat")).unwrap(), 1);
        assert!(w.resolve_clone_target(1, &Value::text("Dog")).is_err());
    }
}
