//! The full expression evaluator — reporter blocks with world access.
//!
//! Unlike the pure evaluator in `snap-ast` (which is what worker threads
//! run), this evaluator sees the whole [`World`]: variables in every
//! scope, sprite attributes, the timer, the RNG, and custom reporter
//! blocks. Expressions evaluate synchronously and never yield — Snap!'s
//! scheduler switches processes between *statements*, and so does ours.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::RngExt;

use snap_ast::pure::{eval_binop, eval_unop, numbers_from_to};
use snap_ast::{
    Attr, BlockKind, EvalError, Expr, List, PureFn, Ring, RingBody, RingExprBody, Stmt, Value,
};

use crate::error::VmError;
use crate::process::ScopeStack;
use crate::world::{SpriteId, World};

/// Recursion limit for ring application and custom-block calls.
const MAX_DEPTH: u32 = 64;
/// Statement budget for synchronous (reporter-body) execution.
const SYNC_OP_BUDGET: u64 = 50_000_000;

/// Everything an expression can see while evaluating.
pub struct EvalCtx<'a> {
    /// The world (mutable: `pick random` advances the RNG, reporters may
    /// `say`).
    pub world: &'a mut World,
    /// The sprite whose script is evaluating.
    pub sprite: SpriteId,
    /// The running process's scope stack.
    pub scopes: &'a mut ScopeStack,
    /// Current scheduler timestep (for the `timer` reporter).
    pub timestep: u64,
    /// Recursion depth.
    pub depth: u32,
    /// Remaining synchronous statement budget.
    pub ops_left: u64,
}

impl<'a> EvalCtx<'a> {
    /// Build a context with fresh depth/budget counters.
    pub fn new(
        world: &'a mut World,
        sprite: SpriteId,
        scopes: &'a mut ScopeStack,
        timestep: u64,
    ) -> EvalCtx<'a> {
        EvalCtx {
            world,
            sprite,
            scopes,
            timestep,
            depth: 0,
            ops_left: SYNC_OP_BUDGET,
        }
    }

    /// Look up a variable: process scopes, then sprite variables, then
    /// globals.
    pub fn lookup(&self, name: &str) -> Result<Value, VmError> {
        if let Some(v) = self.scopes.get(name) {
            return Ok(v.clone());
        }
        if let Some(v) = self.world.sprites[self.sprite].vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(v) = self.world.globals.get(name) {
            return Ok(v.clone());
        }
        Err(EvalError::UnboundVariable(name.to_owned()).into())
    }

    /// Assign a variable: innermost scope binding, else sprite variable,
    /// else existing global, else *create* a global (a deliberate,
    /// forgiving deviation from Snap!, which raises an error — it keeps
    /// programmatic project construction pleasant).
    pub fn assign(&mut self, name: &str, value: Value) {
        if self.scopes.set(name, value.clone()) {
            return;
        }
        if let Some(slot) = self.world.sprites[self.sprite].vars.get_mut(name) {
            *slot = value;
            return;
        }
        self.world.globals.insert(name.to_owned(), value);
    }

    /// Evaluate a reporter block.
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, VmError> {
        match expr {
            Expr::Literal(c) => Ok(c.to_value()),
            Expr::MakeList(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::list(out))
            }
            Expr::Var(name) => self.lookup(name),
            Expr::EmptySlot => Ok(Value::Nothing),
            Expr::Binary(op, a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                Ok(eval_binop(*op, &a, &b))
            }
            Expr::Unary(op, a) => {
                let a = self.eval(a)?;
                Ok(eval_unop(*op, &a))
            }
            Expr::Item(index, list) => {
                let i = self.eval(index)?.to_number() as usize;
                let list = self.eval_list(list)?;
                list.item(i).ok_or_else(|| {
                    EvalError::IndexOutOfRange {
                        index: i,
                        len: list.len(),
                    }
                    .into()
                })
            }
            Expr::LengthOf(list) => Ok(Value::Number(self.eval_list(list)?.len() as f64)),
            Expr::Contains(list, value) => {
                let list = self.eval_list(list)?;
                let value = self.eval(value)?;
                Ok(Value::Bool(list.contains(&value)))
            }
            Expr::Join(parts) => {
                let mut out = String::new();
                for part in parts {
                    out.push_str(&self.eval(part)?.to_display_string());
                }
                Ok(Value::Text(out))
            }
            Expr::Split(text, delim) => {
                let text = self.eval(text)?.to_display_string();
                let delim = self.eval(delim)?.to_display_string();
                let items: Vec<Value> = if delim.is_empty() {
                    text.chars().map(|c| Value::Text(c.to_string())).collect()
                } else {
                    text.split(&delim)
                        .filter(|s| !s.is_empty())
                        .map(|s| Value::Text(s.to_owned()))
                        .collect()
                };
                Ok(Value::list(items))
            }
            Expr::LetterOf(index, text) => {
                let i = self.eval(index)?.to_number() as usize;
                let text = self.eval(text)?.to_display_string();
                Ok(Value::Text(
                    text.chars()
                        .nth(i.saturating_sub(1))
                        .map(|c| c.to_string())
                        .unwrap_or_default(),
                ))
            }
            Expr::TextLength(text) => {
                let text = self.eval(text)?.to_display_string();
                Ok(Value::Number(text.chars().count() as f64))
            }
            Expr::PickRandom(a, b) => {
                let a = self.eval(a)?.to_number();
                let b = self.eval(b)?.to_number();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let v = if lo.fract() == 0.0 && hi.fract() == 0.0 {
                    self.world.rng.random_range(lo as i64..=hi as i64) as f64
                } else {
                    self.world.rng.random_range(lo..=hi)
                };
                Ok(Value::Number(v))
            }
            Expr::NumbersFromTo(a, b) => {
                let a = self.eval(a)?.to_number();
                let b = self.eval(b)?.to_number();
                Ok(numbers_from_to(a, b))
            }
            Expr::Attribute(attr) => Ok(self.eval_attribute(*attr)),
            Expr::Ring(ring_expr) => Ok(Value::Ring(Arc::new(self.ringify(ring_expr)))),
            Expr::CallRing(ring, args) => {
                let ring = self.eval_ring(ring)?;
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg)?);
                }
                self.apply_ring(&ring, &values)
            }
            Expr::CallCustom(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg)?);
                }
                self.call_custom_reporter(name, values)
            }
            Expr::Map { ring, list } => {
                let f = self.eval_ring(ring)?;
                let items = self.eval_list(list)?.to_vec();
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.apply_ring(&f, &[item])?);
                }
                Ok(Value::list(out))
            }
            Expr::Keep { pred, list } => {
                let f = self.eval_ring(pred)?;
                let items = self.eval_list(list)?.to_vec();
                let mut out = Vec::new();
                for item in items {
                    if self.apply_ring(&f, std::slice::from_ref(&item))?.to_bool() {
                        out.push(item);
                    }
                }
                Ok(Value::list(out))
            }
            Expr::Combine { list, ring } => {
                let f = self.eval_ring(ring)?;
                let items = self.eval_list(list)?.to_vec();
                match items.split_first() {
                    None => Ok(Value::Number(0.0)),
                    Some((first, rest)) => {
                        let mut acc = first.clone();
                        for item in rest {
                            acc = self.apply_ring(&f, &[acc, item.clone()])?;
                        }
                        Ok(acc)
                    }
                }
            }
            Expr::ParallelMap {
                ring,
                list,
                workers,
            } => {
                let ring = self.eval_ring(ring)?;
                let items = self.eval_list(list)?.to_vec();
                let workers = self.worker_count(workers.as_deref())?;
                // Pure rings go to the parallel backend — the paper's Web
                // Worker path. Impure rings degrade to in-thread
                // application, as browser Snap! degrades when the ring
                // can't be shipped to a worker.
                if PureFn::compile(ring.clone()).is_ok() {
                    let out = self
                        .world
                        .backend
                        .parallel_map(ring, items, workers)
                        .map_err(VmError::Eval)?;
                    Ok(Value::list(out))
                } else {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        out.push(self.apply_ring(&ring, &[item])?);
                    }
                    Ok(Value::list(out))
                }
            }
            Expr::MapReduce {
                mapper,
                reducer,
                list,
            } => {
                let mapper = self.eval_ring(mapper)?;
                let reducer = self.eval_ring(reducer)?;
                let items = self.eval_list(list)?.to_vec();
                let workers = self.world.default_workers;
                if PureFn::compile(mapper.clone()).is_ok()
                    && PureFn::compile(reducer.clone()).is_ok()
                {
                    let out = self
                        .world
                        .backend
                        .map_reduce(mapper, reducer, items, workers)
                        .map_err(VmError::Eval)?;
                    Ok(Value::list(out))
                } else {
                    // In-thread MapReduce with full-evaluator rings.
                    let mut pairs = Vec::with_capacity(items.len());
                    for item in items {
                        pairs.push(self.apply_ring(&mapper, &[item])?);
                    }
                    let mut result: Result<Vec<Value>, VmError> = Ok(Vec::new());
                    let groups = crate::backend::reduce_groups(pairs, |values| {
                        match self.apply_ring(&reducer, &[Value::list(values)]) {
                            Ok(v) => Ok(v),
                            Err(e) => {
                                result = Err(e);
                                Err(EvalError::Other("reduce failed".into()))
                            }
                        }
                    });
                    match groups {
                        Ok(g) => Ok(Value::list(g)),
                        Err(e) => match result {
                            Err(vm) => Err(vm),
                            Ok(_) => Err(VmError::Eval(e)),
                        },
                    }
                }
            }
        }
    }

    /// Evaluate an expression that must report a list.
    pub fn eval_list(&mut self, expr: &Expr) -> Result<List, VmError> {
        let v = self.eval(expr)?;
        match v {
            Value::List(l) => Ok(l),
            other => Err(EvalError::TypeMismatch {
                expected: "list",
                got: other.to_display_string(),
            }
            .into()),
        }
    }

    /// Evaluate an expression that must report a ring.
    pub fn eval_ring(&mut self, expr: &Expr) -> Result<Arc<Ring>, VmError> {
        let v = self.eval(expr)?;
        match v {
            Value::Ring(r) => Ok(r),
            other => Err(EvalError::TypeMismatch {
                expected: "ring",
                got: other.to_display_string(),
            }
            .into()),
        }
    }

    /// The worker count for a `parallelMap`: the explicit input if given,
    /// else the world default (`hardwareConcurrency || 4` in the paper).
    fn worker_count(&mut self, workers: Option<&Expr>) -> Result<usize, VmError> {
        match workers {
            Some(expr) => {
                let n = self.eval(expr)?.to_number();
                Ok(if n >= 1.0 {
                    n as usize
                } else {
                    self.world.default_workers
                })
            }
            None => Ok(self.world.default_workers),
        }
    }

    fn eval_attribute(&self, attr: Attr) -> Value {
        let sprite = &self.world.sprites[self.sprite];
        match attr {
            Attr::Timer => {
                Value::Number(self.timestep.saturating_sub(self.world.timer_reset_at) as f64)
            }
            Attr::XPosition => Value::Number(sprite.x),
            Attr::YPosition => Value::Number(sprite.y),
            Attr::Direction => Value::Number(sprite.heading),
            Attr::CostumeNumber => Value::Number(sprite.costume as f64),
            Attr::SpriteName => Value::Text(sprite.name.clone()),
            Attr::IsClone => Value::Bool(sprite.is_clone),
        }
    }

    /// Turn a ring literal into a runtime [`Ring`], capturing the
    /// environment visible at this point: globals, then sprite variables,
    /// then the process scopes (innermost last, so they shadow on
    /// lookup). This is the VM's analogue of "ringification".
    pub fn ringify(&self, ring_expr: &snap_ast::RingExpr) -> Ring {
        let mut captured: Vec<(String, Value)> = Vec::new();
        for (name, value) in &self.world.globals {
            captured.push((name.clone(), value.clone()));
        }
        for (name, value) in &self.world.sprites[self.sprite].vars {
            captured.push((name.clone(), value.clone()));
        }
        captured.extend(self.scopes.flatten());
        let body = match &ring_expr.body {
            RingExprBody::Reporter(e) => RingBody::Reporter((**e).clone()),
            RingExprBody::Predicate(e) => RingBody::Predicate((**e).clone()),
            RingExprBody::Command(s) => RingBody::Command(s.clone()),
        };
        Ring {
            params: ring_expr.params.clone(),
            body,
            captured,
        }
    }

    /// Apply a reporter ring with the *full* evaluator (the ring may use
    /// impure blocks like `pick random`). Command rings are rejected —
    /// they run via `run`/`launch` statements.
    pub fn apply_ring(&mut self, ring: &Arc<Ring>, args: &[Value]) -> Result<Value, VmError> {
        if self.depth >= MAX_DEPTH {
            return Err(VmError::TooMuchRecursion);
        }
        let body_expr = match &ring.body {
            RingBody::Reporter(e) | RingBody::Predicate(e) => e,
            RingBody::Command(_) => return Err(EvalError::NotAReporter.into()),
        };

        let mut frame: Vec<(String, Value)> = ring.captured.clone();
        let expr_owned;
        let expr: &Expr = if ring.params.is_empty() {
            // Implicit parameters: substitute empty slots with synthetic
            // argument variables. A single argument fills every slot.
            expr_owned = body_expr.map_own_empty_slots(&mut |i| {
                let idx = if args.len() <= 1 { 0 } else { i };
                Expr::Var(format!("%arg{idx}"))
            });
            if args.len() <= 1 {
                frame.push((
                    "%arg0".to_owned(),
                    args.first().cloned().unwrap_or(Value::Nothing),
                ));
            } else {
                for (i, arg) in args.iter().enumerate() {
                    frame.push((format!("%arg{i}"), arg.clone()));
                }
            }
            &expr_owned
        } else {
            if ring.params.len() != args.len() {
                return Err(EvalError::ArityMismatch {
                    expected: ring.params.len(),
                    got: args.len(),
                }
                .into());
            }
            for (name, value) in ring.params.iter().zip(args) {
                frame.push((name.clone(), value.clone()));
            }
            body_expr
        };

        self.scopes.push(frame);
        self.depth += 1;
        let result = self.eval(expr);
        self.depth -= 1;
        self.scopes.pop();
        result
    }

    /// Call a custom reporter/predicate block synchronously.
    pub fn call_custom_reporter(&mut self, name: &str, args: Vec<Value>) -> Result<Value, VmError> {
        if self.depth >= MAX_DEPTH {
            return Err(VmError::TooMuchRecursion);
        }
        let block = self
            .world
            .find_custom_block(self.sprite, name)
            .ok_or_else(|| EvalError::UnknownCustomBlock(name.to_owned()))?;
        if block.kind == BlockKind::Command {
            return Err(EvalError::NotAReporter.into());
        }
        if block.params.len() != args.len() {
            return Err(EvalError::ArityMismatch {
                expected: block.params.len(),
                got: args.len(),
            }
            .into());
        }
        let frame: Vec<(String, Value)> = block.params.iter().cloned().zip(args).collect();
        self.scopes.push(frame);
        self.depth += 1;
        let result = self.run_sync(&block.body);
        self.depth -= 1;
        self.scopes.pop();
        match result? {
            Some(value) => Ok(value),
            None => Err(VmError::NoReport(name.to_owned())),
        }
    }

    /// Synchronously execute a reporter body: the statement subset that
    /// makes sense without the scheduler. `wait` is treated as zero
    /// (reporters evaluate within one time slice); blocks that *require*
    /// the scheduler (broadcast, clone) are errors.
    ///
    /// Returns `Some(value)` when a `report` ran.
    pub fn run_sync(&mut self, stmts: &[Stmt]) -> Result<Option<Value>, VmError> {
        for stmt in stmts {
            if self.ops_left == 0 {
                return Err(VmError::Eval(EvalError::Other(
                    "reporter ran too long".into(),
                )));
            }
            self.ops_left -= 1;
            match stmt {
                Stmt::Report(e) => return Ok(Some(self.eval(e)?)),
                Stmt::Say(e) | Stmt::Think(e) => {
                    let text = self.eval(e)?.to_display_string();
                    self.world.say(self.timestep, self.sprite, text);
                }
                Stmt::SayFor(e, _) => {
                    let text = self.eval(e)?.to_display_string();
                    self.world.say(self.timestep, self.sprite, text);
                }
                Stmt::SetVar(name, e) => {
                    let v = self.eval(e)?;
                    self.assign(name, v);
                }
                Stmt::ChangeVar(name, e) => {
                    let delta = self.eval(e)?.to_number();
                    let current = self.lookup(name).map(|v| v.to_number()).unwrap_or(0.0);
                    self.assign(name, Value::Number(current + delta));
                }
                Stmt::DeclareLocals(names) => {
                    for name in names {
                        self.scopes.declare(name, Value::Nothing);
                    }
                }
                Stmt::AddToList { item, list } => {
                    let v = self.eval(item)?;
                    self.eval_list(list)?.add(v);
                }
                Stmt::DeleteOfList { index, list } => {
                    let i = self.eval(index)?.to_number() as usize;
                    self.eval_list(list)?.delete(i);
                }
                Stmt::InsertAtList { item, index, list } => {
                    let v = self.eval(item)?;
                    let i = self.eval(index)?.to_number() as usize;
                    self.eval_list(list)?.insert(i, v);
                }
                Stmt::ReplaceItemOfList { index, list, item } => {
                    let i = self.eval(index)?.to_number() as usize;
                    let v = self.eval(item)?;
                    self.eval_list(list)?.set_item(i, v);
                }
                Stmt::If(cond, then) => {
                    if self.eval(cond)?.to_bool() {
                        if let Some(v) = self.run_sync(then)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::IfElse(cond, then, otherwise) => {
                    let branch = if self.eval(cond)?.to_bool() {
                        then
                    } else {
                        otherwise
                    };
                    if let Some(v) = self.run_sync(branch)? {
                        return Ok(Some(v));
                    }
                }
                Stmt::Repeat(times, body) => {
                    let n = self.eval(times)?.to_number().max(0.0) as u64;
                    for _ in 0..n {
                        if let Some(v) = self.run_sync(body)? {
                            return Ok(Some(v));
                        }
                    }
                }
                Stmt::RepeatUntil(cond, body) => loop {
                    if self.eval(cond)?.to_bool() {
                        break;
                    }
                    if self.ops_left == 0 {
                        return Err(VmError::Eval(EvalError::Other(
                            "reporter ran too long".into(),
                        )));
                    }
                    self.ops_left -= 1;
                    if let Some(v) = self.run_sync(body)? {
                        return Ok(Some(v));
                    }
                },
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let from = self.eval(from)?.to_number();
                    let to = self.eval(to)?.to_number();
                    let step = if from <= to { 1.0 } else { -1.0 };
                    let mut x = from;
                    self.scopes.push(vec![(var.clone(), Value::Number(x))]);
                    loop {
                        let more = if step > 0.0 { x <= to } else { x >= to };
                        if !more {
                            break;
                        }
                        self.scopes.set(var, Value::Number(x));
                        match self.run_sync(body) {
                            Ok(Some(v)) => {
                                self.scopes.pop();
                                return Ok(Some(v));
                            }
                            Ok(None) => {}
                            Err(e) => {
                                self.scopes.pop();
                                return Err(e);
                            }
                        }
                        x += step;
                    }
                    self.scopes.pop();
                }
                Stmt::ForEach { var, list, body } => {
                    let items = self.eval_list(list)?.to_vec();
                    self.scopes.push(vec![(var.clone(), Value::Nothing)]);
                    for item in items {
                        self.scopes.set(var, item);
                        match self.run_sync(body) {
                            Ok(Some(v)) => {
                                self.scopes.pop();
                                return Ok(Some(v));
                            }
                            Ok(None) => {}
                            Err(e) => {
                                self.scopes.pop();
                                return Err(e);
                            }
                        }
                    }
                    self.scopes.pop();
                }
                Stmt::Warp(body) => {
                    if let Some(v) = self.run_sync(body)? {
                        return Ok(Some(v));
                    }
                }
                Stmt::Wait(_) | Stmt::WaitUntil(_) => {
                    // Reporters run within one time slice: waits are
                    // no-ops here (documented deviation).
                }
                Stmt::Stop(_) => return Ok(None),
                Stmt::Comment(_) => {}
                other => {
                    return Err(VmError::Eval(EvalError::NotPure(stmt_name(other))));
                }
            }
        }
        Ok(None)
    }
}

/// Human-readable block name for error messages.
pub fn stmt_name(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Broadcast(_) => "broadcast",
        Stmt::BroadcastAndWait(_) => "broadcast and wait",
        Stmt::CreateCloneOf(_) => "create a clone",
        Stmt::DeleteThisClone => "delete this clone",
        Stmt::ParallelForEach { .. } => "parallelForEach",
        Stmt::RunRing(_, _) => "run",
        Stmt::LaunchRing(_, _) => "launch",
        Stmt::CallCustom(_, _) => "custom block call",
        Stmt::Move(_) => "move",
        Stmt::TurnRight(_) => "turn right",
        Stmt::TurnLeft(_) => "turn left",
        Stmt::GoToXY(_, _) => "go to",
        Stmt::PointInDirection(_) => "point in direction",
        Stmt::Show => "show",
        Stmt::Hide => "hide",
        Stmt::SwitchCostume(_) => "switch costume",
        Stmt::NextCostume => "next costume",
        Stmt::ResetTimer => "reset timer",
        _ => "statement",
    }
}

/// Build the per-child item assignments for a parallel `parallelForEach`:
/// `k` clones round-robin over the items ("if fewer workers are created
/// than there are list elements, the workers systematically process the
/// remaining elements", paper §4.2).
pub fn round_robin_assign(items: Vec<Value>, k: usize) -> Vec<VecDeque<Value>> {
    let k = k.max(1);
    let mut out: Vec<VecDeque<Value>> = (0..k).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % k].push_back(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;
    use snap_ast::{Constant, CustomBlock, Project, SpriteDef};

    fn ctx_fixture() -> (World, ScopeStack) {
        let project = Project::new("t")
            .with_global("g", Constant::Number(7.0))
            .with_global_block(CustomBlock::reporter_expr(
                "double",
                vec!["n".into()],
                add(var("n"), var("n")),
            ))
            .with_sprite(SpriteDef::new("Cat").with_variable("lives", Constant::Number(9.0)));
        (World::new(Arc::new(project)), ScopeStack::new())
    }

    fn eval_on_cat(world: &mut World, scopes: &mut ScopeStack, e: &Expr) -> Value {
        EvalCtx::new(world, 1, scopes, 0).eval(e).unwrap()
    }

    #[test]
    fn variable_lookup_order() {
        let (mut world, mut scopes) = ctx_fixture();
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &var("g")),
            Value::Number(7.0)
        );
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &var("lives")),
            Value::Number(9.0)
        );
        scopes.declare("lives", Value::Number(1.0));
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &var("lives")),
            Value::Number(1.0)
        );
    }

    #[test]
    fn map_block_matches_paper_fig4() {
        let (mut world, mut scopes) = ctx_fixture();
        let e = map_over(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([3.0, 7.0, 8.0]),
        );
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &e),
            Value::number_list([30.0, 70.0, 80.0])
        );
    }

    #[test]
    fn parallel_map_with_sequential_backend_matches_map() {
        let (mut world, mut scopes) = ctx_fixture();
        let e = parallel_map_with_workers(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([3.0, 7.0, 8.0]),
            num(2.0),
        );
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &e),
            Value::number_list([30.0, 70.0, 80.0])
        );
    }

    #[test]
    fn rings_capture_globals_and_locals() {
        let (mut world, mut scopes) = ctx_fixture();
        scopes.declare("offset", Value::Number(100.0));
        // call (ring: () + offset + g) with 1
        let e = call_ring(
            ring_reporter(add(empty_slot(), add(var("offset"), var("g")))),
            vec![num(1.0)],
        );
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &e),
            Value::Number(108.0)
        );
    }

    #[test]
    fn custom_reporter_is_callable() {
        let (mut world, mut scopes) = ctx_fixture();
        let e = call_custom("double", vec![num(21.0)]);
        assert_eq!(
            eval_on_cat(&mut world, &mut scopes, &e),
            Value::Number(42.0)
        );
    }

    #[test]
    fn recursive_custom_reporter_factorial() {
        let project = Project::new("t").with_global_block(CustomBlock::reporter(
            "fact",
            vec!["n".into()],
            vec![if_else(
                le(var("n"), num(1.0)),
                vec![report(num(1.0))],
                vec![report(mul(
                    var("n"),
                    call_custom("fact", vec![sub(var("n"), num(1.0))]),
                ))],
            )],
        ));
        let mut world = World::new(Arc::new(project));
        let mut scopes = ScopeStack::new();
        let v = EvalCtx::new(&mut world, 0, &mut scopes, 0)
            .eval(&call_custom("fact", vec![num(10.0)]))
            .unwrap();
        assert_eq!(v, Value::Number(3628800.0));
    }

    #[test]
    fn infinite_recursion_is_caught() {
        let project = Project::new("t").with_global_block(CustomBlock::reporter_expr(
            "loop",
            vec![],
            call_custom("loop", vec![]),
        ));
        let mut world = World::new(Arc::new(project));
        let mut scopes = ScopeStack::new();
        let err = EvalCtx::new(&mut world, 0, &mut scopes, 0)
            .eval(&call_custom("loop", vec![]))
            .unwrap_err();
        assert_eq!(err, VmError::TooMuchRecursion);
    }

    #[test]
    fn pick_random_is_deterministic_and_in_range() {
        let (mut world, mut scopes) = ctx_fixture();
        world.seed_rng(42);
        for _ in 0..100 {
            let v =
                eval_on_cat(&mut world, &mut scopes, &pick_random(num(1.0), num(6.0))).to_number();
            assert!((1.0..=6.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn timer_attribute_reflects_reset() {
        let (mut world, mut scopes) = ctx_fixture();
        world.timer_reset_at = 10;
        let v = EvalCtx::new(&mut world, 1, &mut scopes, 25)
            .eval(&timer())
            .unwrap();
        assert_eq!(v, Value::Number(15.0));
    }

    #[test]
    fn map_with_impure_ring_uses_full_evaluator() {
        let (mut world, mut scopes) = ctx_fixture();
        world.seed_rng(1);
        // map (pick random 1 to ()) over [1,1,1] — impure ring, still works.
        let e = map_over(
            ring_reporter(pick_random(num(1.0), empty_slot())),
            number_list([1.0, 1.0, 1.0]),
        );
        let v = eval_on_cat(&mut world, &mut scopes, &e);
        assert_eq!(v.as_list().unwrap().len(), 3);
    }

    #[test]
    fn round_robin_assignment_covers_all_items() {
        let items: Vec<Value> = (0..7).map(|i| Value::Number(i as f64)).collect();
        let chunks = round_robin_assign(items, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 3); // 0, 3, 6
        assert_eq!(chunks[1].len(), 2);
        assert_eq!(chunks[2].len(), 2);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn map_reduce_via_eval_word_count() {
        let (mut world, mut scopes) = ctx_fixture();
        let e = map_reduce(
            ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
            ring_reporter_with(
                vec!["vals"],
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            ),
            split(text("a b a"), text(" ")),
        );
        let v = eval_on_cat(&mut world, &mut scopes, &e);
        assert_eq!(
            v,
            Value::list(vec![
                Value::list(vec!["a".into(), 2.into()]),
                Value::list(vec!["b".into(), 1.into()]),
            ])
        );
    }
}
