//! # snap-vm — the cooperative Snap! runtime
//!
//! A faithful, headless reimplementation of the execution model the
//! paper builds on (§2, §4): an event-driven world of sprites whose
//! scripts run as *processes* under a single-threaded, time-sliced,
//! round-robin scheduler — concurrency, not parallelism. True
//! parallelism enters only through the [`backend::ParallelBackend`] seam
//! (the paper's HTML5 Web Workers), implemented by `snap-parallel`.
//!
//! ```
//! use snap_ast::builder::*;
//! use snap_ast::{Project, SpriteDef, Script, Value};
//! use snap_vm::Vm;
//!
//! let project = Project::new("hello").with_sprite(
//!     SpriteDef::new("Cat").with_script(Script::on_green_flag(vec![
//!         say(map_over(
//!             ring_reporter(mul(empty_slot(), num(10.0))),
//!             number_list([3.0, 7.0, 8.0]),
//!         )),
//!     ])),
//! );
//! let mut vm = Vm::new(project);
//! vm.green_flag();
//! vm.run_until_idle();
//! assert_eq!(vm.world.said(), vec!["[30, 70, 80]"]);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod eval;
pub mod process;
pub mod stage;
pub mod vm;
pub mod world;

pub use backend::{ParallelBackend, SequentialBackend};
pub use error::VmError;
pub use eval::EvalCtx;
pub use process::{Pid, Process, ScopeStack};
pub use stage::{render_stage, StageView};
pub use vm::{Interference, Vm, VmConfig};
pub use world::{SayEvent, SpriteId, SpriteInstance, World};

#[cfg(test)]
mod tests {
    use snap_ast::builder::*;
    use snap_ast::{Constant, Project, Script, SpriteDef, Stmt, StopKind, Value};

    use crate::vm::{Interference, Vm, VmConfig};

    fn run_script(body: Vec<Stmt>) -> Vm {
        let project = Project::new("t")
            .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(body)));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        vm
    }

    #[test]
    fn say_logs_output() {
        let vm = run_script(vec![say(text("hello")), say(num(42.0))]);
        assert_eq!(vm.world.said(), vec!["hello", "42"]);
        assert!(vm.world.errors.is_empty());
    }

    #[test]
    fn set_and_change_variables() {
        let vm = run_script(vec![
            set_var("x", num(10.0)),
            change_var("x", num(5.0)),
            say(var("x")),
        ]);
        assert_eq!(vm.world.said(), vec!["15"]);
    }

    #[test]
    fn repeat_loop_counts() {
        let vm = run_script(vec![
            set_var("n", num(0.0)),
            repeat(num(5.0), vec![change_var("n", num(1.0))]),
            say(var("n")),
        ]);
        assert_eq!(vm.world.said(), vec!["5"]);
    }

    #[test]
    fn for_loop_binds_variable() {
        let vm = run_script(vec![
            set_var("sum", num(0.0)),
            for_loop("i", num(1.0), num(10.0), vec![change_var("sum", var("i"))]),
            say(var("sum")),
        ]);
        assert_eq!(vm.world.said(), vec!["55"]);
    }

    #[test]
    fn for_each_iterates_in_order() {
        let vm = run_script(vec![for_each(
            "w",
            make_list(vec![text("a"), text("b"), text("c")]),
            vec![say(var("w"))],
        )]);
        assert_eq!(vm.world.said(), vec!["a", "b", "c"]);
    }

    #[test]
    fn repeat_until_exits() {
        let vm = run_script(vec![
            set_var("n", num(0.0)),
            repeat_until(ge(var("n"), num(3.0)), vec![change_var("n", num(1.0))]),
            say(var("n")),
        ]);
        assert_eq!(vm.world.said(), vec!["3"]);
    }

    #[test]
    fn wait_takes_timesteps() {
        // say at t0, wait 5, say again — second say is at timestep 5.
        let vm = run_script(vec![say(text("a")), wait(num(5.0)), say(text("b"))]);
        assert_eq!(vm.world.say_log[0].timestep, 0);
        assert_eq!(vm.world.say_log[1].timestep, 5);
    }

    #[test]
    fn repeat_with_wait_absorbs_loop_bottom() {
        // repeat 3 { wait 1 } finishes as the timer shows 3: the wait
        // absorbs the loop-bottom yield (see module docs).
        let vm = run_script(vec![repeat(num(3.0), vec![wait(num(1.0))]), say(timer())]);
        assert_eq!(vm.world.said(), vec!["3"]);
    }

    #[test]
    fn bare_loop_pays_one_frame_per_iteration() {
        let vm = run_script(vec![
            repeat(num(4.0), vec![set_var("x", num(0.0))]),
            say(timer()),
        ]);
        // 4 loop-bottom yields → timer 4.
        assert_eq!(vm.world.said(), vec!["4"]);
    }

    #[test]
    fn warp_suppresses_loop_yields() {
        let vm = run_script(vec![
            warp(vec![repeat(num(100.0), vec![set_var("x", num(0.0))])]),
            say(timer()),
        ]);
        assert_eq!(vm.world.said(), vec!["0"]);
    }

    #[test]
    fn scripts_interleave_round_robin() {
        // Two green-flag scripts on one sprite: their outputs interleave
        // because each loop iteration yields.
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_script(Script::on_green_flag(vec![repeat(
                    num(2.0),
                    vec![say(text("A"))],
                )]))
                .with_script(Script::on_green_flag(vec![repeat(
                    num(2.0),
                    vec![say(text("B"))],
                )])),
        );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["A", "B", "A", "B"]);
    }

    #[test]
    fn key_press_scripts_run() {
        let project = Project::new("t").with_sprite(SpriteDef::new("Dragon").with_script(
            Script::on_key("right arrow", vec![Stmt::TurnRight(num(15.0))]),
        ));
        let mut vm = Vm::new(project);
        vm.key_press("right arrow");
        vm.run_until_idle();
        assert_eq!(vm.world.sprites[1].heading, 105.0);
        vm.key_press("x");
        vm.run_until_idle();
        assert_eq!(vm.world.sprites[1].heading, 105.0);
    }

    #[test]
    fn broadcast_activates_receivers() {
        let project = Project::new("t")
            .with_sprite(SpriteDef::new("A").with_script(Script::on_green_flag(vec![
                broadcast("go"),
                say(text("sent")),
            ])))
            .with_sprite(
                SpriteDef::new("B")
                    .with_script(Script::on_message("go", vec![say(text("got it"))])),
            );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        let said = vm.world.said();
        assert!(said.contains(&"sent"));
        assert!(said.contains(&"got it"));
    }

    #[test]
    fn broadcast_and_wait_blocks_until_receivers_finish() {
        let project = Project::new("t")
            .with_sprite(SpriteDef::new("A").with_script(Script::on_green_flag(vec![
                broadcast_and_wait("work"),
                say(text("after")),
            ])))
            .with_sprite(SpriteDef::new("B").with_script(Script::on_message(
                "work",
                vec![wait(num(3.0)), say(text("worked"))],
            )));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["worked", "after"]);
    }

    #[test]
    fn clones_run_start_as_clone_scripts() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_script(Script::on_green_flag(vec![clone_myself(), clone_myself()]))
                .with_script(Script::on_clone_start(vec![say(text("cloned"))])),
        );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["cloned", "cloned"]);
        assert_eq!(vm.world.live_clone_count(), 2);
    }

    #[test]
    fn delete_this_clone_stops_its_scripts() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_script(Script::on_green_flag(vec![clone_myself()]))
                .with_script(Script::on_clone_start(vec![
                    Stmt::DeleteThisClone,
                    say(text("unreachable")),
                ])),
        );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert!(vm.world.said().is_empty());
        assert_eq!(vm.world.live_clone_count(), 0);
    }

    #[test]
    fn stop_all_halts_everything() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_script(Script::on_green_flag(vec![
                    wait(num(2.0)),
                    Stmt::Stop(StopKind::All),
                ]))
                .with_script(Script::on_green_flag(vec![forever(vec![say(text(
                    "tick",
                ))])])),
        );
        let mut vm = Vm::new(project);
        vm.green_flag();
        let frames = vm.run_until_idle();
        assert!(frames < 100, "stop all must terminate the forever loop");
        assert!(vm.world.said().len() <= 3);
    }

    #[test]
    fn forever_never_idles() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S").with_script(
            Script::on_green_flag(vec![forever(vec![change_var("n", num(1.0))])]),
        ));
        let mut vm = Vm::with_config(
            project,
            VmConfig {
                max_frames: 50,
                ..VmConfig::default()
            },
        );
        vm.green_flag();
        let frames = vm.run_until_idle();
        assert_eq!(frames, 50);
        assert_eq!(vm.process_count(), 1);
    }

    #[test]
    fn errors_kill_only_the_raising_process() {
        let project = Project::new("t").with_sprite(
            SpriteDef::new("S")
                .with_script(Script::on_green_flag(vec![say(var("missing"))]))
                .with_script(Script::on_green_flag(vec![say(text("fine"))])),
        );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["fine"]);
        assert_eq!(vm.world.errors.len(), 1);
    }

    #[test]
    fn run_ring_is_synchronous_launch_is_not() {
        let vm = run_script(vec![
            Stmt::RunRing(ring_command(vec![say(text("ran"))]), vec![]),
            say(text("after-run")),
            Stmt::LaunchRing(
                ring_command(vec![wait(num(1.0)), say(text("launched"))]),
                vec![],
            ),
            say(text("after-launch")),
        ]);
        assert_eq!(
            vm.world.said(),
            vec!["ran", "after-run", "after-launch", "launched"]
        );
    }

    #[test]
    fn custom_command_blocks_execute_with_params() {
        let project = Project::new("t")
            .with_global_block(snap_ast::CustomBlock::command(
                "greet",
                vec!["who".into()],
                vec![say(join(vec![text("hi "), var("who")]))],
            ))
            .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                Stmt::CallCustom("greet".into(), vec![text("world")]),
            ])));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["hi world"]);
    }

    #[test]
    fn stop_this_block_returns_from_custom_command() {
        let project = Project::new("t")
            .with_global_block(snap_ast::CustomBlock::command(
                "partial",
                vec![],
                vec![
                    say(text("one")),
                    Stmt::Stop(StopKind::ThisBlock),
                    say(text("two")),
                ],
            ))
            .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                Stmt::CallCustom("partial".into(), vec![]),
                say(text("back")),
            ])));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["one", "back"]);
    }

    #[test]
    fn wait_until_resumes_on_condition() {
        let project = Project::new("t")
            .with_global("flag", Constant::Number(0.0))
            .with_sprite(
                SpriteDef::new("S")
                    .with_script(Script::on_green_flag(vec![
                        wait_until(eq(var("flag"), num(1.0))),
                        say(text("released")),
                    ]))
                    .with_script(Script::on_green_flag(vec![
                        wait(num(4.0)),
                        set_var("flag", num(1.0)),
                    ])),
            );
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["released"]);
        assert!(vm.world.say_log[0].timestep >= 4);
    }

    // -----------------------------------------------------------------
    // The concession stand (paper §3.3, Figs. 7–10) — experiment E3
    // -----------------------------------------------------------------

    /// Build the concession-stand project. One Pitcher sprite fills the
    /// three cups; filling a glass takes three timesteps (three waits).
    fn concession_project(parallel: bool) -> Project {
        let fill = vec![
            // walk to the cup and pour: 3 timesteps of pouring
            repeat(num(3.0), vec![wait(num(1.0))]),
            say(join(vec![text("filled "), var("cup")])),
        ];
        let body = if parallel {
            parallel_for_each("cup", var("cups"), fill)
        } else {
            parallel_for_each_sequential("cup", var("cups"), fill)
        };
        Project::new("concession")
            .with_global(
                "cups",
                Constant::List(vec!["Cup1".into(), "Cup2".into(), "Cup3".into()]),
            )
            .with_sprite(
                SpriteDef::new("Pitcher").with_script(Script::on_green_flag(vec![
                    Stmt::ResetTimer,
                    body,
                    say(join(vec![text("total "), timer()])),
                ])),
            )
    }

    #[test]
    fn concession_stand_sequential_takes_12_timesteps() {
        let mut vm = Vm::new(concession_project(false));
        vm.green_flag();
        vm.run_until_idle();
        // Per glass: 3 waits + 1 outer loop-bottom yield = 4 timesteps.
        // Fills land at t=3, 7, 11; the script completes at t=12 — the
        // paper's observed 12 (expected 9 + browser overhead).
        let fills: Vec<u64> = vm
            .world
            .say_log
            .iter()
            .filter(|e| e.text.starts_with("filled"))
            .map(|e| e.timestep)
            .collect();
        assert_eq!(fills, vec![3, 7, 11]);
        assert_eq!(*vm.world.said().last().unwrap(), "total 12");
    }

    #[test]
    fn concession_stand_parallel_takes_3_timesteps() {
        let mut vm = Vm::new(concession_project(true));
        vm.green_flag();
        vm.run_until_idle();
        let fills: Vec<u64> = vm
            .world
            .say_log
            .iter()
            .filter(|e| e.text.starts_with("filled"))
            .map(|e| e.timestep)
            .collect();
        // Three clones pour simultaneously: all cups filled at t=3, the
        // paper's parallel result.
        assert_eq!(fills, vec![3, 3, 3]);
        // All three cups served, each exactly once.
        let mut texts: Vec<&str> = vm
            .world
            .said()
            .into_iter()
            .filter(|t| t.starts_with("filled"))
            .collect();
        texts.sort();
        assert_eq!(texts, vec!["filled Cup1", "filled Cup2", "filled Cup3"]);
        // Clones are cleaned up after the join.
        assert_eq!(vm.world.live_clone_count(), 0);
    }

    #[test]
    fn concession_stand_ideal_sequential_is_9_with_warp() {
        // Inside warp, the outer loop bottoms don't yield: the "expected"
        // 9 timesteps of the paper's footnote 5 (3 glasses × 3 waits).
        let fill = vec![repeat(num(3.0), vec![wait(num(1.0))])];
        let project = Project::new("t")
            .with_global(
                "cups",
                Constant::List(vec!["a".into(), "b".into(), "c".into()]),
            )
            .with_sprite(SpriteDef::new("P").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                warp(vec![for_each("cup", var("cups"), fill)]),
                say(timer()),
            ])));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["9"]);
    }

    #[test]
    fn parallel_for_each_bounded_parallelism_round_robins() {
        // 6 items, parallelism 2 → each clone serves 3 items; total time
        // = 3 fills × 3 waits (+ absorbed bottoms) = 9-ish, but crucially
        // every item is served exactly once.
        let project = Project::new("t")
            .with_global(
                "items",
                Constant::List(vec![
                    "a".into(),
                    "b".into(),
                    "c".into(),
                    "d".into(),
                    "e".into(),
                    "f".into(),
                ]),
            )
            .with_sprite(SpriteDef::new("W").with_script(Script::on_green_flag(vec![
                parallel_for_each_n("it", var("items"), num(2.0), vec![say(var("it"))]),
                say(text("done")),
            ])));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.run_until_idle();
        let mut served: Vec<&str> = vm
            .world
            .said()
            .into_iter()
            .filter(|t| *t != "done")
            .collect();
        served.sort();
        assert_eq!(served, vec!["a", "b", "c", "d", "e", "f"]);
        assert_eq!(*vm.world.said().last().unwrap(), "done");
    }

    #[test]
    fn interference_steals_frames() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S").with_script(
            Script::on_green_flag(vec![
                Stmt::ResetTimer,
                repeat(num(3.0), vec![wait(num(1.0))]),
                say(timer()),
            ]),
        ));
        let mut vm = Vm::with_config(
            project,
            VmConfig {
                interference: Some(Interference {
                    period: 2,
                    phase: 1,
                }),
                ..VmConfig::default()
            },
        );
        vm.green_flag();
        vm.run_until_idle();
        // Every other frame stolen → roughly double the time.
        let t: u64 = vm.world.said()[0].parse().unwrap();
        assert!(t >= 5, "interference should slow the script (got {t})");
    }

    #[test]
    fn parallel_map_block_inside_script() {
        let vm = run_script(vec![say(parallel_map_over(
            ring_reporter(mul(empty_slot(), num(10.0))),
            number_list([3.0, 7.0, 8.0]),
        ))]);
        assert_eq!(vm.world.said(), vec!["[30, 70, 80]"]);
    }

    #[test]
    fn eval_expr_entry_point() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S"));
        let mut vm = Vm::new(project);
        let v = vm.eval_expr(Some("S"), &add(num(2.0), num(3.0))).unwrap();
        assert_eq!(v, Value::Number(5.0));
        assert!(vm.eval_expr(Some("Nope"), &num(1.0)).is_err());
    }

    #[test]
    fn say_for_clears_bubble() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S").with_script(
            Script::on_green_flag(vec![Stmt::SayFor(text("hi"), num(2.0)), say(text("done"))]),
        ));
        let mut vm = Vm::new(project);
        vm.green_flag();
        vm.step_frame();
        assert_eq!(vm.world.sprites[1].saying.as_deref(), Some("hi"));
        vm.run_until_idle();
        assert_eq!(vm.world.sprites[1].saying.as_deref(), Some("done"));
    }
}
