//! Headless stage rendering.
//!
//! The paper demonstrates everything visually — the stage screenshots of
//! Figs. 2 and 7–10 are its "output device". This module renders the
//! world's stage as text: sprites plotted on a character grid by
//! position (first letter of their name; `*` marks overlaps), with say
//! bubbles and the timer in a header, so examples and tests can show
//! and assert "what the stage looks like" at a timestep.

use std::fmt::Write as _;

use crate::world::World;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct StageView {
    /// Grid columns.
    pub columns: usize,
    /// Grid rows.
    pub rows: usize,
    /// Stage x range: `-half_width ..= half_width` maps onto the grid.
    pub half_width: f64,
    /// Stage y range.
    pub half_height: f64,
}

impl Default for StageView {
    fn default() -> Self {
        // Snap!'s stage is 480×360; a character cell is ~8×12 of it.
        StageView {
            columns: 60,
            rows: 30,
            half_width: 240.0,
            half_height: 180.0,
        }
    }
}

impl StageView {
    /// Map stage coordinates to a grid cell, if on stage.
    fn cell(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        if x < -self.half_width
            || x > self.half_width
            || y < -self.half_height
            || y > self.half_height
        {
            return None;
        }
        let col = ((x + self.half_width) / (2.0 * self.half_width)
            * (self.columns.saturating_sub(1)) as f64)
            .round() as usize;
        let row = ((self.half_height - y) / (2.0 * self.half_height)
            * (self.rows.saturating_sub(1)) as f64)
            .round() as usize;
        Some((col.min(self.columns - 1), row.min(self.rows - 1)))
    }
}

/// Render the stage: a header with the timer and the say bubbles, then
/// the sprite grid.
pub fn render_stage(world: &World, timestep: u64, view: &StageView) -> String {
    let mut grid = vec![vec![' '; view.columns]; view.rows];
    for sprite in &world.sprites {
        if sprite.is_stage || !sprite.alive || !sprite.visible {
            continue;
        }
        if let Some((col, row)) = view.cell(sprite.x, sprite.y) {
            let mark = sprite.name.chars().next().unwrap_or('?');
            grid[row][col] = if grid[row][col] == ' ' { mark } else { '*' };
        }
    }

    let mut out = String::new();
    let timer = timestep.saturating_sub(world.timer_reset_at);
    let _ = writeln!(out, "timer: {timer}");
    for name in &world.watched {
        let value = world
            .watched_value(name)
            .map(|v| v.to_display_string())
            .unwrap_or_else(|| "?".to_owned());
        let _ = writeln!(out, "{name} = {value}");
    }
    for sprite in &world.sprites {
        if let Some(text) = &sprite.saying {
            if sprite.alive {
                let _ = writeln!(out, "{}: \"{}\"", sprite.name, text);
            }
        }
    }
    let _ = writeln!(out, "+{}+", "-".repeat(view.columns));
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}|");
    }
    let _ = writeln!(out, "+{}+", "-".repeat(view.columns));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::{Project, SpriteDef};
    use std::sync::Arc;

    fn world_with(positions: &[(&str, f64, f64)]) -> World {
        let mut project = Project::new("t");
        for (name, x, y) in positions {
            project = project.with_sprite(SpriteDef::new(*name).at(*x, *y));
        }
        World::new(Arc::new(project))
    }

    #[test]
    fn sprites_appear_at_mapped_cells() {
        let world = world_with(&[("Pitcher", 0.0, 0.0)]);
        let rendered = render_stage(&world, 0, &StageView::default());
        assert!(rendered.contains('P'), "{rendered}");
        // Centered: the P is in the middle row.
        let rows: Vec<&str> = rendered.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 30);
        assert!(rows[14].contains('P') || rows[15].contains('P'));
    }

    #[test]
    fn overlapping_sprites_render_a_star() {
        let world = world_with(&[("A", 10.0, 10.0), ("B", 10.0, 10.0)]);
        let rendered = render_stage(&world, 0, &StageView::default());
        assert!(rendered.contains('*'));
        assert!(!rendered.contains('A'));
    }

    #[test]
    fn hidden_and_offstage_sprites_are_not_drawn() {
        let mut world = world_with(&[("Ghost", 0.0, 0.0), ("Far", 9999.0, 0.0)]);
        world.sprites[1].visible = false;
        let rendered = render_stage(&world, 0, &StageView::default());
        assert!(!rendered.contains('G'));
        assert!(!rendered.contains('F'));
    }

    #[test]
    fn say_bubbles_and_timer_appear_in_header() {
        let mut world = world_with(&[("Cat", 0.0, 0.0)]);
        world.timer_reset_at = 2;
        world.say(5, 1, "hello!".to_owned());
        let rendered = render_stage(&world, 5, &StageView::default());
        assert!(rendered.starts_with("timer: 3\n"));
        assert!(rendered.contains("Cat: \"hello!\""));
    }

    #[test]
    fn watchers_show_current_values() {
        let mut world = world_with(&[("Cat", 0.0, 0.0)]);
        world
            .globals
            .insert("score".into(), snap_ast::Value::Number(7.0));
        world.watch("score");
        world.watch("missing");
        world.watch("score"); // duplicates collapse
        let rendered = render_stage(&world, 0, &StageView::default());
        assert!(rendered.contains("score = 7"));
        assert!(rendered.contains("missing = ?"));
        assert_eq!(rendered.matches("score = ").count(), 1);
    }

    #[test]
    fn corner_positions_stay_inside_the_border() {
        let world = world_with(&[("A", -240.0, 180.0), ("B", 240.0, -180.0)]);
        let rendered = render_stage(&world, 0, &StageView::default());
        let rows: Vec<&str> = rendered.lines().filter(|l| l.starts_with('|')).collect();
        assert!(rows.first().unwrap().contains('A'));
        assert!(rows.last().unwrap().contains('B'));
    }
}
