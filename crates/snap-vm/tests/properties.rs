//! Property-based tests of the cooperative scheduler's invariants.

use proptest::prelude::*;

use snap_ast::builder::*;
use snap_ast::{Constant, Project, Script, SpriteDef, Stmt, Value};
use snap_vm::{Interference, Vm, VmConfig};

fn run(project: Project) -> Vm {
    let mut vm = Vm::new(project);
    vm.green_flag();
    vm.run_until_idle();
    vm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repeat_wait_takes_exactly_n_timesteps(n in 0u64..25) {
        // repeat n { wait 1 } then read the timer: the wait absorbs the
        // loop-bottom yield, so elapsed == n.
        let project = Project::new("p").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                repeat(num(n as f64), vec![wait(num(1.0))]),
                say(timer()),
            ])),
        );
        let vm = run(project);
        let expected = n.to_string();
        prop_assert_eq!(vm.world.said(), vec![expected.as_str()]);
    }

    #[test]
    fn for_loop_sums_correctly(n in 0i64..200) {
        let project = Project::new("p").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                set_var("sum", num(0.0)),
                for_loop("i", num(1.0), num(n as f64), vec![change_var("sum", var("i"))]),
                say(var("sum")),
            ])),
        );
        let vm = run(project);
        // Snap!'s `for` counts down when to < from: `for i = 1 to 0`
        // visits 1 then 0 (sum 1); for n ≥ 1 it's the triangular number.
        let expected = if n >= 1 { (n * (n + 1)) / 2 } else { 1 }.to_string();
        prop_assert_eq!(vm.world.said(), vec![expected.as_str()]);
    }

    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), reps in 1u64..10) {
        let build = || Project::new("p").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                repeat(num(reps as f64), vec![
                    say(pick_random(num(1.0), num(1000.0))),
                    wait(num(1.0)),
                ]),
            ])),
        );
        let mut a = Vm::new(build());
        a.world.seed_rng(seed);
        a.green_flag();
        a.run_until_idle();
        let mut b = Vm::new(build());
        b.world.seed_rng(seed);
        b.green_flag();
        b.run_until_idle();
        prop_assert_eq!(a.world.said(), b.world.said());
        prop_assert_eq!(a.timestep(), b.timestep());
    }

    #[test]
    fn time_slice_never_changes_results(slice in 1u32..512) {
        // The slice length affects frame boundaries, never outcomes.
        let project = || Project::new("p").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                set_var("acc", num(0.0)),
                repeat(num(50.0), vec![change_var("acc", num(3.0))]),
                say(var("acc")),
            ])),
        );
        let mut vm = Vm::with_config(project(), VmConfig { slice_ops: slice, ..VmConfig::default() });
        vm.green_flag();
        vm.run_until_idle();
        prop_assert_eq!(vm.world.said(), vec!["150"]);
    }

    #[test]
    fn interference_slows_but_never_corrupts(period in 2u64..8, phase in 0u64..8) {
        let phase = phase % period;
        let project = || Project::new("p").with_sprite(
            SpriteDef::new("S").with_script(Script::on_green_flag(vec![
                Stmt::ResetTimer,
                repeat(num(5.0), vec![wait(num(1.0))]),
                say(text("done")),
                say(timer()),
            ])),
        );
        let mut clean = Vm::new(project());
        clean.green_flag();
        clean.run_until_idle();
        let mut noisy = Vm::with_config(project(), VmConfig {
            interference: Some(Interference { period, phase }),
            ..VmConfig::default()
        });
        noisy.green_flag();
        noisy.run_until_idle();
        prop_assert_eq!(clean.world.said()[0], "done");
        prop_assert_eq!(noisy.world.said()[0], "done");
        let clean_t: u64 = clean.world.said()[1].parse().unwrap();
        let noisy_t: u64 = noisy.world.said()[1].parse().unwrap();
        prop_assert!(noisy_t >= clean_t, "interference can only delay");
    }

    #[test]
    fn parallel_for_each_serves_every_item_once(
        n in 1usize..30,
        parallelism in 1usize..8
    ) {
        let items: Vec<Constant> =
            (0..n).map(|i| Constant::Text(format!("item{i}"))).collect();
        let project = Project::new("p")
            .with_global("items", Constant::List(items))
            .with_sprite(SpriteDef::new("W").with_script(Script::on_green_flag(vec![
                parallel_for_each_n(
                    "it",
                    var("items"),
                    num(parallelism as f64),
                    vec![say(var("it"))],
                ),
                say(text("done")),
            ])));
        let vm = run(project);
        let mut served: Vec<&str> = vm
            .world
            .said()
            .into_iter()
            .filter(|s| *s != "done")
            .collect();
        served.sort();
        let mut expected: Vec<String> = (0..n).map(|i| format!("item{i}")).collect();
        expected.sort();
        prop_assert_eq!(served, expected.iter().map(String::as_str).collect::<Vec<_>>());
        // And the join cleaned up every clone.
        prop_assert_eq!(vm.world.live_clone_count(), 0);
    }

    #[test]
    fn map_block_equals_native_map(xs in prop::collection::vec(-1e6f64..1e6, 0..40)) {
        let items: Vec<snap_ast::Expr> = xs.iter().map(|&x| num(x)).collect();
        let mut vm = Vm::new(Project::new("p").with_sprite(SpriteDef::new("S")));
        let out = vm
            .eval_expr(
                Some("S"),
                &map_over(ring_reporter(mul(empty_slot(), num(10.0))), make_list(items)),
            )
            .unwrap();
        let expected: Vec<Value> = xs.iter().map(|&x| Value::Number(x * 10.0)).collect();
        prop_assert_eq!(out, Value::list(expected));
    }
}
