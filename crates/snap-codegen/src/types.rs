//! Dynamic-to-static type mapping.
//!
//! "Another aspect … encompasses the conversion of Snap! programs to
//! textual source code, and in particular, how to map the dynamic types
//! of variables in Snap! to the static types in languages such as C"
//! (paper §6.3 — listed as future work; implemented here). A single
//! forward pass infers a static type for every variable from the
//! expressions assigned to it, with a join lattice
//! `Int ⊑ Double` and everything else meeting at `Unknown`.

use std::collections::HashMap;

use snap_ast::{BinOp, Constant, Expr, Stmt, UnOp};

/// A static C-family type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `int`
    Int,
    /// `double`
    Double,
    /// `int` used as a boolean
    Bool,
    /// `char *`
    Text,
    /// An array/list of a known element type.
    List(Box<CType>),
    /// No information yet (the lattice's bottom: joining with anything
    /// yields the other type).
    Unknown,
    /// Conflicting assignments (the lattice's top: joining with anything
    /// stays `Any`) — the variable is dynamically typed.
    Any,
}

impl CType {
    /// The C spelling of this type.
    pub fn c_name(&self) -> String {
        match self {
            CType::Int => "int".to_owned(),
            CType::Double => "double".to_owned(),
            CType::Bool => "int".to_owned(),
            CType::Text => "char *".to_owned(),
            CType::List(elem) => format!("{} *", elem.c_name()),
            // Dynamic / undetermined variables fall back to the safest
            // numeric spelling.
            CType::Unknown | CType::Any => "double".to_owned(),
        }
    }

    /// Least upper bound of two inferred types.
    pub fn join(&self, other: &CType) -> CType {
        use CType::*;
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Any, _) | (_, Any) => Any,
            (Unknown, x) | (x, Unknown) => x.clone(),
            // Numeric chain: Bool ⊑ Int ⊑ Double.
            (Int, Double) | (Double, Int) => Double,
            (Int, Bool) | (Bool, Int) => Int,
            (Bool, Double) | (Double, Bool) => Double,
            (List(a), List(b)) => List(Box::new(a.join(b))),
            _ => Any,
        }
    }
}

/// Inferred types for the variables of one script.
#[derive(Debug, Default)]
pub struct TypeEnv {
    vars: HashMap<String, CType>,
}

impl TypeEnv {
    /// Infer variable types from a script (single forward pass; each
    /// assignment joins into the variable's running type).
    pub fn infer_script(stmts: &[Stmt]) -> TypeEnv {
        let mut env = TypeEnv::default();
        env.walk(stmts);
        env
    }

    /// The inferred type of a variable ([`CType::Unknown`] if unseen).
    pub fn var_type(&self, name: &str) -> CType {
        self.vars.get(name).cloned().unwrap_or(CType::Unknown)
    }

    /// All inferred variables (sorted by name, for deterministic output).
    pub fn variables(&self) -> Vec<(String, CType)> {
        let mut v: Vec<_> = self
            .vars
            .iter()
            .map(|(k, t)| (k.clone(), t.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn record(&mut self, name: &str, ty: CType) {
        let joined = match self.vars.get(name) {
            Some(existing) => existing.join(&ty),
            None => ty,
        };
        self.vars.insert(name.to_owned(), joined);
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::SetVar(name, e) => {
                    let ty = self.infer_expr(e);
                    self.record(name, ty);
                }
                Stmt::ChangeVar(name, e) => {
                    // Accumulators get Snap!'s numeric semantics (f64):
                    // inferring `int` would silently overflow where the
                    // blocks cannot (found by experiment E13).
                    let ty = self.infer_expr(e).join(&CType::Double);
                    self.record(name, ty);
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let ty = self.infer_expr(from).join(&self.infer_expr(to));
                    self.record(var, ty);
                    self.walk(body);
                }
                Stmt::ForEach { var, list, body }
                | Stmt::ParallelForEach {
                    var, list, body, ..
                } => {
                    if let CType::List(elem) = self.infer_expr(list) {
                        self.record(var, *elem);
                    } else {
                        self.record(var, CType::Unknown);
                    }
                    self.walk(body);
                }
                Stmt::If(_, b) | Stmt::Repeat(_, b) | Stmt::RepeatUntil(_, b) => self.walk(b),
                Stmt::IfElse(_, t, e) => {
                    self.walk(t);
                    self.walk(e);
                }
                Stmt::Forever(b) | Stmt::Warp(b) => self.walk(b),
                _ => {}
            }
        }
    }

    /// Infer the static type of an expression under the current env.
    pub fn infer_expr(&self, expr: &Expr) -> CType {
        match expr {
            Expr::Literal(c) => infer_constant(c),
            Expr::MakeList(items) => {
                let elem = items
                    .iter()
                    .map(|e| self.infer_expr(e))
                    .reduce(|a, b| a.join(&b))
                    .unwrap_or(CType::Unknown);
                CType::List(Box::new(elem))
            }
            Expr::Var(name) => self.var_type(name),
            Expr::Binary(op, a, b) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Mod => self
                    .infer_expr(a)
                    .join(&self.infer_expr(b))
                    .join(&CType::Int),
                BinOp::Div | BinOp::Pow => CType::Double,
                _ => CType::Bool,
            },
            Expr::Unary(op, a) => match op {
                UnOp::Not => CType::Bool,
                UnOp::Round | UnOp::Floor | UnOp::Ceil => CType::Int,
                UnOp::Neg | UnOp::Abs => self.infer_expr(a),
                _ => CType::Double,
            },
            Expr::LengthOf(_) | Expr::TextLength(_) => CType::Int,
            Expr::Join(_) | Expr::LetterOf(_, _) => CType::Text,
            Expr::Split(_, _) => CType::List(Box::new(CType::Text)),
            Expr::Item(_, list) => match self.infer_expr(list) {
                CType::List(elem) => *elem,
                _ => CType::Unknown,
            },
            Expr::Contains(_, _) => CType::Bool,
            Expr::PickRandom(a, b) => self.infer_expr(a).join(&self.infer_expr(b)),
            Expr::NumbersFromTo(_, _) => CType::List(Box::new(CType::Int)),
            Expr::Map { list, .. } | Expr::ParallelMap { list, .. } => {
                // Result element type depends on the ring; default to the
                // input element type joined with Double.
                match self.infer_expr(list) {
                    CType::List(elem) => CType::List(Box::new(elem.join(&CType::Double))),
                    _ => CType::List(Box::new(CType::Unknown)),
                }
            }
            Expr::Keep { list, .. } => self.infer_expr(list),
            _ => CType::Unknown,
        }
    }
}

fn infer_constant(c: &Constant) -> CType {
    match c {
        Constant::Number(n) if n.fract() == 0.0 => CType::Int,
        Constant::Number(_) => CType::Double,
        Constant::Text(_) => CType::Text,
        Constant::Bool(_) => CType::Bool,
        Constant::List(items) => {
            let elem = items
                .iter()
                .map(infer_constant)
                .reduce(|a, b| a.join(&b))
                .unwrap_or(CType::Unknown);
            CType::List(Box::new(elem))
        }
        Constant::Nothing => CType::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    #[test]
    fn integer_literals_infer_int() {
        let env = TypeEnv::infer_script(&[set_var("x", num(3.0))]);
        assert_eq!(env.var_type("x"), CType::Int);
    }

    #[test]
    fn division_promotes_to_double() {
        let env = TypeEnv::infer_script(&[set_var("x", div(num(1.0), num(2.0)))]);
        assert_eq!(env.var_type("x"), CType::Double);
    }

    #[test]
    fn joins_across_assignments() {
        let env = TypeEnv::infer_script(&[set_var("x", num(3.0)), set_var("x", num(1.5))]);
        assert_eq!(env.var_type("x"), CType::Double);
    }

    #[test]
    fn list_literal_element_types() {
        let env = TypeEnv::infer_script(&[set_var("a", number_list([3.0, 7.0, 8.0]))]);
        assert_eq!(env.var_type("a"), CType::List(Box::new(CType::Int)));
        assert_eq!(env.var_type("a").c_name(), "int *");
    }

    #[test]
    fn for_each_binds_element_type() {
        let env = TypeEnv::infer_script(&[for_each(
            "w",
            split(text("a b"), text(" ")),
            vec![say(var("w"))],
        )]);
        assert_eq!(env.var_type("w"), CType::Text);
    }

    #[test]
    fn text_and_number_join_to_any() {
        let env = TypeEnv::infer_script(&[set_var("x", text("hi")), set_var("x", num(1.0))]);
        assert_eq!(env.var_type("x"), CType::Any);
        // Unknown still has a usable C spelling.
        assert_eq!(env.var_type("x").c_name(), "double");
    }

    #[test]
    fn loop_variable_type_comes_from_bounds() {
        let env = TypeEnv::infer_script(&[for_loop(
            "i",
            num(1.0),
            num(10.0),
            vec![change_var("sum", var("i"))],
        )]);
        assert_eq!(env.var_type("i"), CType::Int);
        // Accumulators take the safe numeric type (see ChangeVar above).
        assert_eq!(env.var_type("sum"), CType::Double);
    }
}
