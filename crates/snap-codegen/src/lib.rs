//! # snap-codegen — the code-mapping feature
//!
//! Snap!'s experimental block→text translation (paper §6): per-language
//! mapping tables of `<#N>` templates ([`CodeMapping`], [`Template`]),
//! a generator that walks scripts and fills the templates ([`Generator`]),
//! a dynamic→static type-inference pass ([`types::TypeEnv`], the paper's
//! §6.3 future work), and whole-program emitters reproducing the paper's
//! listings: the map example in C (Listing 5) and the MapReduce OpenMP
//! program (`kvp.h`, Listings 6–7).

#![warn(missing_docs)]

pub mod c_program;
pub mod gen;
pub mod harness;
pub mod mapping;
pub mod openmp;
pub mod programs;
pub mod template;
pub mod types;
pub mod worker;

pub use c_program::{emit_c_program, emit_listing5, emit_listing5_runnable, map_example_script};
pub use gen::{CodegenError, Generator};
pub use harness::{
    detect_toolchain, oracle_map_tiers, CompiledProgram, Harness, HarnessError, Scenario,
    ScenarioKind, Toolchain, MAPREDUCE_REL_TOL,
};
pub use mapping::{CodeMapping, Target};
pub use openmp::{
    emit_map_openmp, emit_mapreduce_openmp, emit_mapreduce_openmp_protocol, OpenMpProgram,
};
pub use programs::{emit_js_program, emit_python_program, emit_smalltalk_chunk};
pub use template::Template;
pub use worker::{
    native_pool, native_program_for, register_native_map, register_native_program,
    unregister_native, NativePool, NativeProgram, NativeWorker, WorkerKind, NATIVE_IDLE_REAP,
    POISON_FRAME,
};

use snap_ast::Stmt;

/// Human-readable label for a statement (used in error messages).
pub fn stmt_label(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Say(_) | Stmt::SayFor(_, _) | Stmt::Think(_) => "say",
        Stmt::SetVar(_, _) => "set",
        Stmt::ChangeVar(_, _) => "change",
        Stmt::Broadcast(_) => "broadcast",
        Stmt::BroadcastAndWait(_) => "broadcast and wait",
        Stmt::Wait(_) => "wait",
        Stmt::WaitUntil(_) => "wait until",
        Stmt::CreateCloneOf(_) => "create a clone",
        Stmt::DeleteThisClone => "delete this clone",
        Stmt::RunRing(_, _) => "run",
        Stmt::LaunchRing(_, _) => "launch",
        Stmt::CallCustom(_, _) => "custom block",
        Stmt::Stop(_) => "stop",
        Stmt::Move(_) => "move",
        Stmt::TurnRight(_) | Stmt::TurnLeft(_) => "turn",
        Stmt::GoToXY(_, _) => "go to",
        Stmt::PointInDirection(_) => "point in direction",
        Stmt::Show => "show",
        Stmt::Hide => "hide",
        Stmt::SwitchCostume(_) | Stmt::NextCostume => "costume",
        Stmt::ResetTimer => "reset timer",
        _ => "block",
    }
}
