//! The block→text generator.
//!
//! Walks scripts and reporters against a [`CodeMapping`], filling each
//! block's template with the translations of its inputs — "because Snap!
//! programs consist of nested blocks, the value substituted for a
//! particular placeholder may itself have resulted from the translation
//! of a nested block" (paper §6.2). This is the engine behind the
//! paper's "code of \<script\>" block.

use std::collections::{HashMap, HashSet};
use std::fmt;

use snap_ast::{BinOp, Constant, Expr, RingExprBody, Stmt, UnOp};

use crate::mapping::{CodeMapping, Target};
use crate::types::{CType, TypeEnv};

/// A block that has no mapping (or no sensible translation) in the
/// target language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// What went wrong.
    pub message: String,
}

impl CodegenError {
    fn unsupported(what: impl fmt::Display, target: Target) -> CodegenError {
        CodegenError {
            message: format!("no {} mapping for {what}", target.name()),
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CodegenError {}

/// Result of generating a whole C program: the text plus which runtime
/// helpers it needs.
#[derive(Debug, Clone)]
pub struct GeneratedC {
    /// The body of `main`, indented one level.
    pub main_body: String,
    /// Whether the linked-list runtime (`node_t`, `append`) is required.
    pub needs_list_runtime: bool,
    /// Whether `<math.h>` is required.
    pub needs_math: bool,
}

/// Translates blocks to text using one mapping table.
pub struct Generator<'a> {
    mapping: &'a CodeMapping,
    /// Variable renames applied during translation (e.g. a ring's formal
    /// parameter → `in->val` in the OpenMP emitter).
    pub subst: HashMap<String, String>,
    /// Replacement text for empty slots (set while translating a ring
    /// body, e.g. `__x` inside a generated `map` callback).
    pub slot_name: Option<String>,
    /// Emit number literals as C *double* literals (`5e0`, not `5`), so
    /// constant-only subexpressions like `5 / 9` don't silently become
    /// integer arithmetic inside a double-typed map function.
    pub float_literals: bool,
    types: TypeEnv,
    declared: HashSet<String>,
    needs_list_runtime: bool,
    needs_math: bool,
    fresh: u32,
}

impl<'a> Generator<'a> {
    /// A generator over a mapping table.
    pub fn new(mapping: &'a CodeMapping) -> Generator<'a> {
        Generator {
            mapping,
            subst: HashMap::new(),
            slot_name: None,
            float_literals: false,
            types: TypeEnv::default(),
            declared: HashSet::new(),
            needs_list_runtime: false,
            needs_math: false,
            fresh: 0,
        }
    }

    /// Whether translation used the C linked-list runtime.
    pub fn needs_list_runtime(&self) -> bool {
        self.needs_list_runtime
    }

    /// Whether translation used `<math.h>` functions.
    pub fn needs_math(&self) -> bool {
        self.needs_math
    }

    fn target(&self) -> Target {
        self.mapping.target
    }

    fn fill(&self, key: &str, fills: &[String]) -> Result<String, CodegenError> {
        self.mapping
            .get(key)
            .map(|t| t.fill_indented(fills))
            .ok_or_else(|| CodegenError::unsupported(format!("'{key}' block"), self.target()))
    }

    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("{base}{}", self.fresh)
    }

    /// Translate a literal.
    pub fn constant(&self, c: &Constant) -> Result<String, CodegenError> {
        Ok(match c {
            Constant::Nothing => "0".to_owned(),
            Constant::Number(n) if self.float_literals => float_literal(*n),
            Constant::Number(n) => snap_ast::Value::format_number(*n),
            Constant::Text(s) => format!("{:?}", s),
            Constant::Bool(b) => match self.target() {
                Target::Python => {
                    if *b {
                        "True".to_owned()
                    } else {
                        "False".to_owned()
                    }
                }
                _ => b.to_string(),
            },
            Constant::List(items) => {
                let parts: Result<Vec<String>, _> =
                    items.iter().map(|i| self.constant(i)).collect();
                let joined = parts?.join(", ");
                match self.target() {
                    Target::C => format!("{{{joined}}}"),
                    _ => format!("[{joined}]"),
                }
            }
        })
    }

    /// Translate a reporter block to an expression string.
    pub fn expr(&mut self, e: &Expr) -> Result<String, CodegenError> {
        match e {
            Expr::Literal(c) => self.constant(c),
            Expr::Var(name) => Ok(self
                .subst
                .get(name)
                .cloned()
                .unwrap_or_else(|| sanitize_identifier(name))),
            Expr::EmptySlot => self.slot_name.clone().ok_or_else(|| {
                CodegenError::unsupported("empty slot outside a ring", self.target())
            }),
            Expr::Binary(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                if matches!(op, BinOp::Pow) {
                    self.needs_math = true;
                }
                self.fill(binop_key(*op), &[a, b])
            }
            Expr::Unary(op, a) => {
                let a = self.expr(a)?;
                if !matches!(op, UnOp::Not | UnOp::Neg) {
                    self.needs_math = true;
                }
                self.fill(unop_key(*op), &[a])
            }
            Expr::MakeList(items) => {
                let parts: Result<Vec<String>, _> = items.iter().map(|i| self.expr(i)).collect();
                self.fill("makelist", &[parts?.join(", ")])
            }
            Expr::Item(index, list) => {
                let i = self.expr(index)?;
                let l = self.expr(list)?;
                self.fill("item", &[i, l])
            }
            Expr::LengthOf(list) => {
                let l = self.expr(list)?;
                self.fill("lengthof", &[l])
            }
            Expr::Join(parts) => {
                let mut out: Option<String> = None;
                for part in parts {
                    let p = self.expr(part)?;
                    out = Some(match out {
                        None => p,
                        Some(acc) => self.fill("join", &[acc, p])?,
                    });
                }
                Ok(out.unwrap_or_default())
            }
            Expr::TextLength(t) => {
                let t = self.expr(t)?;
                self.fill("lengthof", &[t])
            }
            Expr::Map { ring, list } => {
                let body = self.ring_body_code(ring, "__x")?;
                let list = self.expr(list)?;
                self.fill("map", &[body, list])
            }
            Expr::ParallelMap {
                ring,
                list,
                workers,
            } => {
                let body = self.ring_body_code(ring, "__x")?;
                let list = self.expr(list)?;
                let workers = match workers {
                    Some(w) => self.expr(w)?,
                    None => "4".to_owned(), // the paper's default
                };
                self.fill("parallelmap", &[body, list, workers])
            }
            other => Err(CodegenError::unsupported(
                format!("{other:?}"),
                self.target(),
            )),
        }
    }

    /// Translate a ring's reporter body with empty slots renamed to
    /// `slot`, for splicing into a callback.
    pub fn ring_body_code(&mut self, ring: &Expr, slot: &str) -> Result<String, CodegenError> {
        let Expr::Ring(ring_expr) = ring else {
            return Err(CodegenError::unsupported(
                "non-ring function input",
                self.target(),
            ));
        };
        let (body, params): (&Expr, &[String]) = match &ring_expr.body {
            RingExprBody::Reporter(e) | RingExprBody::Predicate(e) => (e, &ring_expr.params),
            RingExprBody::Command(_) => {
                return Err(CodegenError::unsupported(
                    "command ring as function",
                    self.target(),
                ))
            }
        };
        let saved_slot = self.slot_name.replace(slot.to_owned());
        let saved_subst = params
            .first()
            .map(|p| (p.clone(), self.subst.insert(p.clone(), slot.to_owned())));
        let code = self.expr(body);
        self.slot_name = saved_slot;
        if let Some((p, old)) = saved_subst {
            match old {
                Some(v) => {
                    self.subst.insert(p, v);
                }
                None => {
                    self.subst.remove(&p);
                }
            }
        }
        code
    }

    /// Translate a script to statements (one string, newline-separated).
    pub fn script(&mut self, stmts: &[Stmt]) -> Result<String, CodegenError> {
        // Infer variable types up front so C declarations are typed.
        self.types = TypeEnv::infer_script(stmts);
        self.script_inner(stmts)
    }

    fn script_inner(&mut self, stmts: &[Stmt]) -> Result<String, CodegenError> {
        let mut lines = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            lines.push(self.stmt(stmt)?);
        }
        Ok(lines.join("\n"))
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<String, CodegenError> {
        match stmt {
            Stmt::Say(e) | Stmt::Think(e) => {
                let is_text = matches!(self.types.infer_expr(e), CType::Text);
                let code = self.expr(e)?;
                let key = if is_text { "say_text" } else { "say" };
                self.fill(key, &[code])
            }
            Stmt::SetVar(name, value) => self.set_var(name, value),
            Stmt::ChangeVar(name, delta) => {
                let name = sanitize_identifier(name);
                let delta = self.expr(delta)?;
                self.fill("changevar", &[name, delta])
            }
            Stmt::Comment(text) => self.fill("comment", std::slice::from_ref(text)),
            Stmt::DeclareLocals(_) => Ok(String::new()),
            Stmt::AddToList { item, list } => {
                let item = self.expr(item)?;
                let list = self.expr(list)?;
                self.needs_list_runtime |= self.target() == Target::C;
                self.fill("addtolist", &[item, list])
            }
            Stmt::If(cond, then) => {
                let cond = self.expr(cond)?;
                let body = self.script_inner(then)?;
                self.fill("if", &[cond, body])
            }
            Stmt::IfElse(cond, then, otherwise) => {
                let cond = self.expr(cond)?;
                let t = self.script_inner(then)?;
                let e = self.script_inner(otherwise)?;
                self.fill("ifelse", &[cond, t, e])
            }
            Stmt::Repeat(times, body) => {
                let times = self.expr(times)?;
                let body = self.script_inner(body)?;
                let counter = self.fresh_name("__r");
                self.fill("repeat", &[times, body, counter])
            }
            Stmt::RepeatUntil(cond, body) => {
                let cond = self.expr(cond)?;
                let body = self.script_inner(body)?;
                self.fill("repeatuntil", &[cond, body])
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let from = self.expr(from)?;
                let to = self.expr(to)?;
                let var_name = sanitize_identifier(var);
                self.declared.insert(var_name.clone());
                let body = self.script_inner(body)?;
                self.fill("for", &[var_name, from, to, body])
            }
            Stmt::ForEach { var, list, body }
            | Stmt::ParallelForEach {
                var, list, body, ..
            } => {
                let list = self.expr(list)?;
                let var_name = sanitize_identifier(var);
                self.declared.insert(var_name.clone());
                let body = self.script_inner(body)?;
                self.fill("foreach", &[var_name, list, body])
            }
            Stmt::Report(e) => {
                let code = self.expr(e)?;
                self.fill("report", &[code])
            }
            Stmt::Warp(body) => self.script_inner(body),
            other => Err(CodegenError::unsupported(
                crate::stmt_label(other),
                self.target(),
            )),
        }
    }

    /// `set <var> to <value>` with C declaration handling: the first
    /// assignment declares the variable with its inferred static type;
    /// list literals become arrays (non-empty) or `node_t` linked lists
    /// (empty, ready for `append`) — exactly the shapes of Listing 5.
    fn set_var(&mut self, name: &str, value: &Expr) -> Result<String, CodegenError> {
        let name_s = sanitize_identifier(name);
        if self.target() == Target::C {
            if let Expr::MakeList(items) = value {
                if items.is_empty() {
                    self.needs_list_runtime = true;
                    self.declared.insert(name_s.clone());
                    return Ok(format!(
                        "node_t *{name_s} = (node_t *) malloc(sizeof(node_t));"
                    ));
                }
                let all_literals = items.iter().all(|i| matches!(i, Expr::Literal(_)));
                if all_literals {
                    let elem = match self.types.infer_expr(value) {
                        CType::List(elem) => *elem,
                        _ => CType::Unknown,
                    };
                    let parts: Result<Vec<String>, _> =
                        items.iter().map(|i| self.expr(i)).collect();
                    self.declared.insert(name_s.clone());
                    return Ok(format!(
                        "{} {name_s}[] = {{{}}};",
                        elem.c_name(),
                        parts?.join(", ")
                    ));
                }
            }
        }
        let value_code = self.expr(value)?;
        if self.target() == Target::C && !self.declared.contains(&name_s) {
            self.declared.insert(name_s.clone());
            let ty = self.types.var_type(name).c_name();
            return self.fill("declvar", &[ty, name_s, value_code]);
        }
        if self.target() == Target::JavaScript && !self.declared.contains(&name_s) {
            self.declared.insert(name_s.clone());
            return self.fill("declvar", &["let".into(), name_s, value_code]);
        }
        self.fill("setvar", &[name_s, value_code])
    }
}

/// Render `n` as a C double literal. `{:e}` is Rust's shortest
/// round-trip exponential form, which C also reads back to the
/// identical bits; non-finite values become the standard expression
/// spellings (`1.0 / 0.0`, `0.0 / 0.0`).
fn float_literal(n: f64) -> String {
    if n.is_nan() {
        "(0.0 / 0.0)".to_owned()
    } else if n == f64::INFINITY {
        "(1.0 / 0.0)".to_owned()
    } else if n == f64::NEG_INFINITY {
        "(-1.0 / 0.0)".to_owned()
    } else {
        format!("{n:e}")
    }
}

/// Map a variable name to a legal C/JS/Python identifier.
pub fn sanitize_identifier(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn binop_key(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::Pow => "pow",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Gt => "gt",
        BinOp::Le => "le",
        BinOp::Ge => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn unop_key(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "not",
        UnOp::Neg => "neg",
        UnOp::Abs => "abs",
        UnOp::Sqrt => "sqrt",
        UnOp::Round => "round",
        UnOp::Floor => "floor",
        UnOp::Ceil => "ceil",
        UnOp::Sin => "sin",
        UnOp::Cos => "cos",
        UnOp::Ln => "ln",
        UnOp::Exp => "exp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    fn c_gen_expr(e: &Expr) -> String {
        let mapping = CodeMapping::preset(Target::C);
        Generator::new(&mapping).expr(e).unwrap()
    }

    #[test]
    fn nested_operators_translate() {
        // (5 × (t − 32)) / 9 — the paper's Fahrenheit→Celsius mapper.
        let e = div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0));
        assert_eq!(c_gen_expr(&e), "((5 * (t - 32)) / 9)");
    }

    #[test]
    fn item_of_list_is_one_based_in_c() {
        let e = item(var("i"), var("a"));
        assert_eq!(c_gen_expr(&e), "a[i - 1]");
    }

    #[test]
    fn length_of_matches_listing5() {
        let e = length_of(var("a"));
        assert_eq!(c_gen_expr(&e), "(sizeof(a)/sizeof(a[0]))");
    }

    #[test]
    fn set_var_declares_typed_array() {
        let mapping = CodeMapping::preset(Target::C);
        let mut g = Generator::new(&mapping);
        let code = g
            .script(&[set_var("a", number_list([3.0, 7.0, 8.0]))])
            .unwrap();
        assert_eq!(code, "int a[] = {3, 7, 8};");
    }

    #[test]
    fn empty_list_becomes_linked_list() {
        let mapping = CodeMapping::preset(Target::C);
        let mut g = Generator::new(&mapping);
        let code = g.script(&[set_var("b", make_list(vec![]))]).unwrap();
        assert!(code.contains("node_t *b = (node_t *) malloc(sizeof(node_t));"));
        assert!(g.needs_list_runtime());
    }

    #[test]
    fn first_assignment_declares_then_reassigns() {
        let mapping = CodeMapping::preset(Target::C);
        let mut g = Generator::new(&mapping);
        let code = g
            .script(&[set_var("x", num(1.0)), set_var("x", num(2.0))])
            .unwrap();
        assert_eq!(code, "int x = 1;\nx = 2;");
    }

    #[test]
    fn for_loop_matches_listing5_shape() {
        let mapping = CodeMapping::preset(Target::C);
        let mut g = Generator::new(&mapping);
        let code = g
            .script(&[for_loop(
                "i",
                num(1.0),
                var("len"),
                vec![add_to_list(
                    mul(item(var("i"), var("a")), num(10.0)),
                    var("b"),
                )],
            )])
            .unwrap();
        assert!(code.contains("int i; for (i = 1; i <= len; i++){"));
        assert!(code.contains("append((a[i - 1] * 10), b);"));
    }

    #[test]
    fn js_map_emits_arrow_callback() {
        let mapping = CodeMapping::preset(Target::JavaScript);
        let mut g = Generator::new(&mapping);
        let e = map_over(ring_reporter(mul(empty_slot(), num(10.0))), var("data"));
        assert_eq!(g.expr(&e).unwrap(), "(data).map((__x) => ((__x * 10)))");
    }

    #[test]
    fn js_parallel_map_emits_paralleljs() {
        let mapping = CodeMapping::preset(Target::JavaScript);
        let mut g = Generator::new(&mapping);
        let e = parallel_map_with_workers(
            ring_reporter(mul(empty_slot(), num(10.0))),
            var("data"),
            num(2.0),
        );
        let code = g.expr(&e).unwrap();
        assert!(code.starts_with("new Parallel(data, {maxWorkers: 2})"));
        assert!(code.contains("return ((__x * 10));"));
    }

    #[test]
    fn python_script_indents_bodies() {
        let mapping = CodeMapping::preset(Target::Python);
        let mut g = Generator::new(&mapping);
        let code = g
            .script(&[if_then(
                gt(var("x"), num(0.0)),
                vec![say(var("x")), say(text("positive"))],
            )])
            .unwrap();
        assert_eq!(code, "if (x > 0):\n    print(x)\n    print(\"positive\")");
    }

    #[test]
    fn named_ring_params_substitute() {
        let mapping = CodeMapping::preset(Target::JavaScript);
        let mut g = Generator::new(&mapping);
        let e = map_over(
            ring_reporter_with(vec!["n"], mul(var("n"), var("n"))),
            var("xs"),
        );
        assert_eq!(g.expr(&e).unwrap(), "(xs).map((__x) => ((__x * __x)))");
    }

    #[test]
    fn unsupported_blocks_error_cleanly() {
        let mapping = CodeMapping::preset(Target::C);
        let mut g = Generator::new(&mapping);
        let err = g.script(&[broadcast("go")]).unwrap_err();
        assert!(err.message.contains("broadcast"));
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(sanitize_identifier("my var"), "my_var");
        assert_eq!(sanitize_identifier("2fast"), "_2fast");
        assert_eq!(sanitize_identifier(""), "_");
    }
}
