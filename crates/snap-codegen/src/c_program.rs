//! Whole-program C emission — the paper's Listing 5.
//!
//! Figure 16 shows the map example written out explicitly (so the
//! translation is easy to follow); executing the "code of" block under
//! the C mapping produces Listing 5: a complete C program with a
//! linked-list runtime (`node_t`, `append`) standing in for Snap!'s
//! dynamic lists.

use snap_ast::builder::*;
use snap_ast::Stmt;

use crate::gen::{CodegenError, Generator};
use crate::mapping::{CodeMapping, Target};

/// The linked-list runtime of Listing 5, verbatim in shape.
pub const C_LIST_RUNTIME: &str = r#"typedef struct node {
    int data;
    struct node *next;
} node_t;

void append(int d, node_t *p) {
    while (p->next != NULL)
        p = p->next;
    p->next = (node_t *) malloc(sizeof(node_t));
    p = p->next;
    p->data = d;
    p->next = NULL;
}
"#;

/// Assemble a full C program around a translated script body.
pub fn emit_c_program(stmts: &[Stmt]) -> Result<String, CodegenError> {
    let mapping = CodeMapping::preset(Target::C);
    let mut gen = Generator::new(&mapping);
    let body = gen.script(stmts)?;

    let mut out = String::new();
    out.push_str("#include <stdio.h>\n#include <stdlib.h>\n");
    if gen.needs_math() {
        out.push_str("#include <math.h>\n");
    }
    out.push('\n');
    if gen.needs_list_runtime() {
        out.push_str(C_LIST_RUNTIME);
        out.push('\n');
    }
    out.push_str("int main()\n{\n");
    for line in body.lines() {
        if line.is_empty() {
            out.push('\n');
        } else {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("    return (0);\n}\n");
    Ok(out)
}

/// The Figure 16 script: the map example written out explicitly.
///
/// ```text
/// set a to (list 3 7 8)
/// set b to (list)
/// set len to (length of a)
/// for i = 1 to len { add ((item i of a) × 10) to b }
/// ```
pub fn map_example_script() -> Vec<Stmt> {
    vec![
        set_var("a", number_list([3.0, 7.0, 8.0])),
        set_var("b", make_list(vec![])),
        set_var("len", length_of(var("a"))),
        for_loop(
            "i",
            num(1.0),
            var("len"),
            vec![add_to_list(
                mul(item(var("i"), var("a")), num(10.0)),
                var("b"),
            )],
        ),
    ]
}

/// Generate Listing 5: the map example as a complete C program.
pub fn emit_listing5() -> String {
    emit_c_program(&map_example_script()).expect("the map example always translates")
}

/// Listing 5 made actually runnable: the paper's `malloc` list heads
/// leave `next` uninitialized, so `append`'s `while (p->next != NULL)`
/// walks garbage. Zeroing the allocations (`calloc`) preserves the
/// listing's shape while giving every fresh node a NULL `next`.
pub fn emit_listing5_runnable() -> String {
    emit_listing5().replace("malloc(sizeof(node_t))", "calloc(1, sizeof(node_t))")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing5_contains_the_papers_fragments() {
        let code = emit_listing5();
        // Key fragments of the paper's Listing 5, byte-for-byte.
        for fragment in [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "typedef struct node {",
            "struct node *next;",
            "} node_t;",
            "void append(int d, node_t *p) {",
            "while (p->next != NULL)",
            "p->next = (node_t *) malloc(sizeof(node_t));",
            "int main()",
            "int a[] = {3, 7, 8};",
            "node_t *b = (node_t *) malloc(sizeof(node_t));",
            "len = (sizeof(a)/sizeof(a[0]));",
            "int i; for (i = 1; i <= len; i++){",
            "append((a[i - 1] * 10), b);",
            "return (0);",
        ] {
            assert!(
                code.contains(fragment),
                "missing fragment: {fragment}\n{code}"
            );
        }
    }

    #[test]
    fn listing5_is_deterministic() {
        assert_eq!(emit_listing5(), emit_listing5());
    }
}
