//! The placeholder-substitution engine.
//!
//! Snap!'s code-mapping feature lets the user define, per block, a text
//! template in which `<#1>`, `<#2>`, … "signify the mapping of the first
//! location in the block to be filled in, the second, and so forth. The
//! remainder of the characters are copied to the output verbatim"
//! (paper §6.2, Fig. 15).

use serde::{Deserialize, Serialize};

/// A per-block code template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    text: String,
}

impl Template {
    /// Wrap template text.
    pub fn new(text: impl Into<String>) -> Template {
        Template { text: text.into() }
    }

    /// The raw template text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The highest placeholder number mentioned (0 when there are none).
    pub fn max_placeholder(&self) -> usize {
        let mut max = 0;
        let mut rest = self.text.as_str();
        while let Some(start) = rest.find("<#") {
            rest = &rest[start + 2..];
            if let Some(end) = rest.find('>') {
                if let Ok(n) = rest[..end].parse::<usize>() {
                    max = max.max(n);
                }
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
        max
    }

    /// Replace each `<#N>` with `fills[N-1]` (missing fills become empty
    /// text, matching Snap!'s forgiving behaviour with empty slots).
    pub fn fill(&self, fills: &[String]) -> String {
        let mut out = String::with_capacity(self.text.len());
        let mut rest = self.text.as_str();
        while let Some(start) = rest.find("<#") {
            out.push_str(&rest[..start]);
            let after = &rest[start + 2..];
            match after.find('>').and_then(|end| {
                after[..end]
                    .parse::<usize>()
                    .ok()
                    .map(|n| (n, &after[end + 1..]))
            }) {
                Some((n, remainder)) => {
                    if n >= 1 {
                        if let Some(fill) = fills.get(n - 1) {
                            out.push_str(fill);
                        }
                    }
                    rest = remainder;
                }
                None => {
                    // Not a well-formed placeholder: copy verbatim.
                    out.push_str("<#");
                    rest = after;
                }
            }
        }
        out.push_str(rest);
        out
    }

    /// Fill with automatic multi-line indentation: every line of a fill
    /// after its first is indented to the column where the placeholder
    /// appeared (so nested script bodies line up like C blocks).
    pub fn fill_indented(&self, fills: &[String]) -> String {
        let mut indented: Vec<String> = Vec::with_capacity(fills.len());
        for (i, fill) in fills.iter().enumerate() {
            // Find the column of <#i+1> in the template.
            let marker = format!("<#{}>", i + 1);
            let column = self.text.find(&marker).map(|pos| {
                let line_start = self.text[..pos].rfind('\n').map(|p| p + 1).unwrap_or(0);
                pos - line_start
            });
            match column {
                Some(col) if fill.contains('\n') => {
                    let pad = " ".repeat(col);
                    let mut lines = fill.lines();
                    let mut s = lines.next().unwrap_or("").to_owned();
                    for line in lines {
                        s.push('\n');
                        s.push_str(&pad);
                        s.push_str(line);
                    }
                    indented.push(s);
                }
                _ => indented.push(fill.clone()),
            }
        }
        self.fill(&indented)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fills(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn substitutes_in_order() {
        let t = Template::new("printf(\"%d\", <#1> + <#2>);");
        assert_eq!(t.fill(&fills(&["a", "b"])), "printf(\"%d\", a + b);");
    }

    #[test]
    fn placeholders_can_repeat_and_skip() {
        let t = Template::new("<#2> <#1> <#2>");
        assert_eq!(t.fill(&fills(&["x", "y"])), "y x y");
    }

    #[test]
    fn missing_fills_become_empty() {
        let t = Template::new("f(<#1>, <#3>)");
        assert_eq!(t.fill(&fills(&["a"])), "f(a, )");
    }

    #[test]
    fn malformed_placeholders_copy_verbatim() {
        let t = Template::new("a <# b <#x> c");
        assert_eq!(t.fill(&fills(&["z"])), "a <# b <#x> c");
    }

    #[test]
    fn max_placeholder_found() {
        assert_eq!(Template::new("<#1> <#7> <#3>").max_placeholder(), 7);
        assert_eq!(Template::new("no holes").max_placeholder(), 0);
    }

    #[test]
    fn indented_fill_aligns_nested_lines() {
        let t = Template::new("while (1) {\n    <#1>\n}");
        let body = "a();\nb();".to_string();
        assert_eq!(
            t.fill_indented(&[body]),
            "while (1) {\n    a();\n    b();\n}"
        );
    }
}
